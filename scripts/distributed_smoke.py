#!/usr/bin/env python
"""Distributed-sweep smoke test: broker + two workers, one SIGKILLed.

End-to-end acceptance check for ``repro.runtime.distributed`` (run by
the CI ``distributed-smoke`` job, and runnable locally):

1. Run a quick design-matrix grid serially - the ground truth.
2. Serve the same grid from a ``SweepBroker`` (with cache, checkpoint
   manifest, and a span tracer attached) to two ``repro worker``
   subprocesses. Worker A carries a ``REPRO_FAULT_PLAN`` that makes it
   hang on every cell it leases; once worker B has drained the rest of
   the grid, A - holding the one unfinished lease - is SIGKILLed.
3. Require: the sweep completes; results are bit-identical
   (``run_result_to_dict`` equality) to the serial run; at least one
   lease was reclaimed; the checkpoint manifest holds no duplicate
   cell keys; and the cross-host span stream is schema-valid with
   worker-side spans correctly parented under the broker's cell spans.

Exit status 0 = all checks passed.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.trace_io import run_result_to_dict  # noqa: E402
from repro.config import small_config  # noqa: E402
from repro.obs.trace import Tracer  # noqa: E402
from repro.runtime.cache import ResultCache  # noqa: E402
from repro.runtime.checkpoint import SweepCheckpoint  # noqa: E402
from repro.runtime.distributed import SweepBroker  # noqa: E402
from repro.runtime.executor import SweepExecutor, SweepTask  # noqa: E402
from repro.runtime.faults import FaultPlan, FaultSpec  # noqa: E402
from repro.telemetry.schema import validate_record  # noqa: E402

WORKLOADS = ("dgemm", "hacc", "quickS")
DESIGNS = ("CRISP", "PCSTALL")


def quick_grid():
    cfg = small_config()
    return [
        SweepTask(workload=w, design=d, config=cfg, scale=0.2, max_epochs=40)
        for w in WORKLOADS
        for d in DESIGNS
    ]


def spawn_worker(port: int, name: str, fault_plan=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan.to_json()
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"127.0.0.1:{port}", "--name", name],
        env=env, cwd=str(REPO),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def main() -> int:
    tasks = quick_grid()
    n = len(tasks)
    checks = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append(ok)
        print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f": {detail}" if detail else ""))

    print(f"== serial baseline ({n} cells)")
    serial = SweepExecutor(max_workers=1, cache=None).run(tasks)
    truth = [run_result_to_dict(r) for r in serial]

    print("== remote sweep: broker + 2 workers, worker A SIGKILLed")
    with tempfile.TemporaryDirectory(prefix="repro-dsmoke-") as tmp:
        cache_dir = pathlib.Path(tmp) / "cache"
        manifest = pathlib.Path(tmp) / "sweep.manifest.jsonl"
        tracer = Tracer(ring_size=0)
        broker = SweepBroker(port=0, lease_s=4.0)
        checkpoint = SweepCheckpoint(manifest, sweep="distributed-smoke")
        ex = SweepExecutor(
            cache=ResultCache(cache_dir),
            checkpoint=checkpoint,
            tracer=tracer,
            backend="remote",
            broker=broker,
        )
        remote: list = [None]
        errors: list = []

        def run_sweep() -> None:
            try:
                remote[0] = ex.run(tasks)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        sweep = threading.Thread(target=run_sweep, name="sweep")
        sweep.start()
        deadline = time.monotonic() + 30
        while broker.bound_port is None and time.monotonic() < deadline:
            time.sleep(0.05)
        assert broker.bound_port is not None, "broker never bound"
        port = broker.bound_port

        # Worker A hangs (far beyond any timeout) on every cell it
        # leases; start it alone so it is guaranteed to hold a lease.
        hang = FaultPlan(specs=(
            FaultSpec(cell="*", mode="hang", attempts=None, hang_s=600.0),
        ))
        worker_a = spawn_worker(port, "worker-a", fault_plan=hang)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            with broker._lock:
                if broker._leases:
                    break
            time.sleep(0.05)
        else:
            raise AssertionError("worker A never leased a cell")

        worker_b = spawn_worker(port, "worker-b")

        # Wait until only worker A's hung cell remains, then kill A
        # mid-computation - the broker must reclaim and reassign it.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if len(ex.progress.cells) >= n - 1:
                break
            if not sweep.is_alive():
                break
            time.sleep(0.1)
        worker_a.send_signal(signal.SIGKILL)
        print(f"  killed worker A (pid {worker_a.pid}) with SIGKILL")

        sweep.join(timeout=300)
        hung = sweep.is_alive()
        worker_a.wait(timeout=30)
        try:
            b_out = worker_b.communicate(timeout=60)[0]
        except subprocess.TimeoutExpired:
            worker_b.kill()
            b_out = worker_b.communicate()[0]
        if errors:
            raise errors[0]
        check("sweep completed (no hang)", not hung)
        if hung:
            return 1
        print("  worker B output:", (b_out or "").strip().splitlines()[-1:])

        results = remote[0]
        check(
            "results bit-identical to serial",
            results is not None
            and [run_result_to_dict(r) for r in results] == truth,
        )

        reclaimed = ex.progress.registry.counter_values().get(
            "sweep_cells_reclaimed", 0
        )
        check("sweep_cells_reclaimed >= 1", reclaimed >= 1, f"got {int(reclaimed)}")

        keys = [
            json.loads(line)["key"]
            for line in manifest.read_text().splitlines()
            if line.strip() and "key" in json.loads(line)
        ]
        check(
            "checkpoint manifest keys unique",
            len(keys) == len(set(keys)) and len(keys) == n,
            f"{len(keys)} entries, {len(set(keys))} unique",
        )
        checkpoint.close()

        records = tracer.collect()
        bad = [r for r in records if not _valid(r)]
        spans = [r for r in records if r.get("type") == "span"]
        check("span stream schema-valid", not bad and len(spans) > 0,
              f"{len(records)} records, {len(spans)} spans")
        by_id = {s["span_id"]: s for s in spans}
        cells = [s for s in spans if s.get("name") == "cell"]
        runs = [s for s in spans if s.get("name") == "run"]
        nested = all(
            r["parent_id"] in by_id and by_id[r["parent_id"]]["name"] == "cell"
            and r["trace_id"] == by_id[r["parent_id"]]["trace_id"]
            for r in runs
        )
        check(
            "worker spans nest under broker cell spans",
            nested and len(runs) == n and len(cells) >= n,
            f"{len(cells)} cell spans, {len(runs)} run spans",
        )
        workers_seen = {c["attrs"].get("worker") for c in cells}
        check("both workers appear in cell spans", len(workers_seen) >= 2,
              f"peers: {sorted(str(w) for w in workers_seen)}")

    ok = all(checks)
    print("== distributed smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _valid(record) -> bool:
    try:
        validate_record(record)
        return True
    except Exception:  # noqa: BLE001 - any validation error fails the check
        return False


if __name__ == "__main__":
    sys.exit(main())
