"""Ablations of PCSTALL's design choices (DESIGN.md Section 6).

Sweeps the knobs Section 4.4 tunes: PC-table size (the paper picks 128
entries for a 95%+ hit ratio), table sharing across CUs (Figure 10 says
sharing costs little), the last-value update policy, and the age
normalisation of the wavefront STALL estimator.
"""

from repro.analysis.report import format_table
from repro.core import EDnPObjective
from repro.core.estimators import WavefrontStallModel
from repro.core.pc_table import PCTableConfig
from repro.dvfs.designs import make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.workloads import build_workload, workload

from harness import record, run_once


def _run_pcstall(setup, wl="comd", table_config=None, cus_per_table=1, age_kappa=None):
    cfg = setup.config
    kernels = build_workload(workload(wl), scale=setup.scale)
    ctrl = make_controller(
        "PCSTALL", cfg, EDnPObjective(2),
        table_config=table_config, cus_per_table=cus_per_table,
    )
    if age_kappa is not None:
        ctrl.predictor.estimator = WavefrontStallModel(age_kappa=age_kappa)
    return DvfsSimulation(
        kernels, ctrl, cfg, design_name="PCSTALL", max_epochs=setup.max_epochs,
        collect_accuracy=True, oracle_sample_freqs=setup.oracle_sample_freqs,
    ).run()


def test_ablation_table_size(benchmark, tiny_setup):
    def sweep():
        out = {}
        for entries in (8, 32, 128):
            tbl = PCTableConfig(n_entries=entries)
            r = _run_pcstall(tiny_setup, table_config=tbl)
            out[entries] = (r.pc_hit_ratio, r.prediction_accuracy)
        return out

    result = run_once(benchmark, sweep)
    rows = [[e, h, a] for e, (h, a) in result.items()]
    record(
        "ablation_table_size",
        format_table(["entries", "hit ratio", "accuracy"], rows,
                     title="Ablation: PC-table size (paper picks 128 for 95%+ hits)"),
    )
    # Bigger tables hit more; 128 entries covers the loop bodies.
    assert result[128][0] >= result[8][0]
    assert result[128][0] > 0.6


def test_ablation_table_sharing(benchmark, tiny_setup):
    def sweep():
        out = {}
        n_cus = tiny_setup.config.gpu.n_cus
        for share in (1, n_cus):
            r = _run_pcstall(tiny_setup, cus_per_table=share)
            out[share] = r.prediction_accuracy
        return out

    result = run_once(benchmark, sweep)
    rows = [[f"{k} CU(s)/table", v] for k, v in result.items()]
    record(
        "ablation_table_sharing",
        format_table(["sharing", "accuracy"], rows,
                     title="Ablation: table sharing (Fig 10: sharing costs little)"),
    )
    shared = result[tiny_setup.config.gpu.n_cus]
    private = result[1]
    # Sharing degrades accuracy only mildly.
    assert shared > private - 0.1


def test_ablation_age_normalisation(benchmark, tiny_setup):
    def sweep():
        return {
            kappa: _run_pcstall(tiny_setup, wl="comd", age_kappa=kappa).prediction_accuracy
            for kappa in (0.0, 0.35)
        }

    result = run_once(benchmark, sweep)
    rows = [[k, v] for k, v in result.items()]
    record(
        "ablation_age_normalisation",
        format_table(["age kappa", "accuracy"], rows,
                     title="Ablation: scheduling-age normalisation (Section 4.4)"),
    )
    # Both variants must remain functional predictors.
    assert all(v > 0.5 for v in result.values())


def test_ablation_update_weight(benchmark, tiny_setup):
    def sweep():
        out = {}
        for w in (1.0, 0.5):
            tbl = PCTableConfig(update_weight=w)
            out[w] = _run_pcstall(tiny_setup, table_config=tbl).prediction_accuracy
        return out

    result = run_once(benchmark, sweep)
    rows = [[w, v] for w, v in result.items()]
    record(
        "ablation_update_weight",
        format_table(["update weight", "accuracy"], rows,
                     title="Ablation: last-value (1.0) vs blended (0.5) table updates"),
    )
    assert all(v > 0.5 for v in result.values())
