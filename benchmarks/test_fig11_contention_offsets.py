"""Figure 11: (a) younger wavefront slots absorb scheduling contention;
(b) PC-index offsets beyond ~4 bits blur distinct code regions."""

from repro.analysis.experiments import fig11_contention_and_offsets

from harness import record, run_once


def test_fig11_contention_and_offsets(benchmark, quick_setup):
    result = run_once(
        benchmark,
        lambda: fig11_contention_and_offsets(
            quick_setup, app="quickS", max_epochs=30, offsets=(0, 2, 4, 6, 8, 10)
        ),
    )
    record("fig11_contention_offsets", result.render())

    # 11a shape: the oldest slot is the most stable; young slots vary
    # more (oldest-first arbitration).
    profile = [v for v in result.slot_profile if v > 0]
    assert profile, "no slot data"
    old = sum(result.slot_profile[:2]) / 2
    young = sum(result.slot_profile[-3:]) / 3
    assert old <= young * 1.2

    # 11b shape: very coarse offsets (>= 8 bits) are no better than the
    # paper's 4-bit choice.
    sweep = result.offset_sweep
    assert sweep[10] >= sweep[4] * 0.95
