"""Figure 18a: energy savings under 5% / 10% performance-degradation caps.

Paper shape: PCSTALL saves far more energy than CRISP at the same cap
(9.6% vs 2.1% at 5%; 19.9% vs 4.7% at 10%), and a looser cap widens the
savings.
"""

from repro.analysis.experiments import fig18a_energy_savings

from harness import record, run_once


def test_fig18a_energy_savings(benchmark, quick_setup):
    result = run_once(
        benchmark,
        lambda: fig18a_energy_savings(quick_setup, designs=("CRISP", "PCSTALL"), caps=(0.05, 0.10)),
    )
    record("fig18a_energy_savings", result.render())

    # Both designs save energy vs running at 2.2 GHz throughout.
    assert result.savings[0.05]["PCSTALL"] > 0.0
    # A looser cap saves more energy.
    assert result.savings[0.10]["PCSTALL"] >= result.savings[0.05]["PCSTALL"]
    # The better predictor harvests at least as much as the reactive one.
    assert result.savings[0.10]["PCSTALL"] >= result.savings[0.10]["CRISP"] - 0.02
    # The realised slowdown stays in the vicinity of the cap.
    assert result.degradation[0.05]["PCSTALL"] < 0.25
