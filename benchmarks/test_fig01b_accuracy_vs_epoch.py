"""Figure 1b: prediction accuracy by epoch duration - PC-based prediction
dominates reactive estimation, most visibly at fine grain."""

from repro.analysis.experiments import epoch_duration_trend

from harness import record, run_once


def test_fig01b_accuracy_vs_epoch(benchmark, tiny_setup):
    result = run_once(
        benchmark,
        lambda: epoch_duration_trend(
            tiny_setup,
            designs=("CRISP", "ACCREAC", "PCSTALL"),
            epoch_durations_ns=(1_000.0, 10_000.0, 50_000.0),
            n=2,
        ),
    )
    record("fig01b_accuracy_vs_epoch", result.render())

    fine = result.accuracies[min(result.accuracies)]
    # Shape at 1us: PCSTALL > ACCREAC (predict beats perfectly-informed
    # reaction) and PCSTALL > CRISP.
    assert fine["PCSTALL"] > fine["ACCREAC"]
    assert fine["PCSTALL"] > fine["CRISP"]
    # Accuracy improves (or holds) for every design as epochs coarsen.
    coarse = result.accuracies[max(result.accuracies)]
    assert coarse["CRISP"] >= fine["CRISP"] - 0.05
