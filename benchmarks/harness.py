"""Benchmark harness helpers (import side of benchmarks/conftest.py).

Every benchmark regenerates one paper artifact, prints the rows/series
the paper reports, and archives them under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

from repro.analysis.experiments import ExperimentSetup

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print an artifact and archive it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


_MATRIX_CACHE = {}


def get_design_matrix(setup: ExperimentSetup, designs):
    """Design-matrix runs shared by the fig 14/15/16 benchmarks.

    The cache key covers everything that feeds the simulation - notably
    the full platform config and epoch/oracle settings, not just the
    workload list and scale, so two setups differing only in (say)
    ``max_epochs`` or DVFS grid can never alias to the same entry.
    """
    from repro.analysis.experiments import design_matrix
    from repro.runtime.cache import config_hash

    key = config_hash({
        "config": setup.config,
        "workloads": tuple(setup.workload_list()),
        "scale": setup.scale,
        "max_epochs": setup.max_epochs,
        "oracle_sample_freqs": setup.oracle_sample_freqs,
        "retry": setup.retry,
        "designs": tuple(designs),
    })
    if key not in _MATRIX_CACHE:
        _MATRIX_CACHE[key] = design_matrix(setup, designs=designs)
    return _MATRIX_CACHE[key]
