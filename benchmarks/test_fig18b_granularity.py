"""Figure 18b: coarser V/f domains shrink the DVFS opportunity, but the
PC-based design keeps extracting improvement where CRISP cannot."""

from repro.analysis.experiments import fig18b_granularity

from harness import record, run_once


def test_fig18b_granularity(benchmark, tiny_setup):
    result = run_once(
        benchmark,
        lambda: fig18b_granularity(
            tiny_setup, designs=("CRISP", "PCSTALL", "ORACLE"), granularities=(1, 2, 4)
        ),
    )
    record("fig18b_granularity", result.render())

    fine = result.ed2p[1]
    coarse = result.ed2p[max(result.ed2p)]
    # Shape: per-CU domains extract at least as much as whole-GPU domains.
    assert fine["PCSTALL"] <= coarse["PCSTALL"] + 0.05
    # PCSTALL stays useful even at the coarsest granularity (paper: 18%
    # improvement at 32CU-domains where CRISP manages only 4%).
    assert coarse["PCSTALL"] < 1.05
