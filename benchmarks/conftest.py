"""Shared benchmark fixtures (see harness.py for helpers)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentSetup
from repro.config import small_config


@pytest.fixture
def quick_setup() -> ExperimentSetup:
    """Small but representative: 5 apps covering compute/memory/mixed."""
    return ExperimentSetup(
        config=small_config(),
        workloads=("comd", "xsbench", "hacc", "dgemm", "BwdBN"),
        scale=0.3,
        max_epochs=250,
        oracle_sample_freqs=4,
    )


@pytest.fixture
def tiny_setup() -> ExperimentSetup:
    """Two contrasting apps, for the most expensive sweeps."""
    return ExperimentSetup(
        config=small_config(),
        workloads=("comd", "xsbench"),
        scale=0.25,
        max_epochs=200,
        oracle_sample_freqs=4,
    )
