"""Figure 6: highly varying sensitivity profiles over time."""

from repro.analysis.experiments import fig06_profiles
from repro.core.sensitivity import weighted_relative_change

from harness import record, run_once


def test_fig06_profiles(benchmark, quick_setup):
    result = run_once(
        benchmark,
        lambda: fig06_profiles(quick_setup, apps=("dgemm", "hacc", "BwdBN", "xsbench"), max_epochs=25),
    )
    record("fig06_sensitivity_profiles", result.render())

    # Shape: the compute apps swing visibly over time; xsbench stays
    # uniformly low (it is latency-bound, Figure 6d).
    xs = result.profiles["xsbench"]
    others = {k: v for k, v in result.profiles.items() if k != "xsbench"}
    assert max(xs) < max(max(v) for v in others.values()) / 3
    # BwdBN alternates phases: its profile must vary strongly.
    assert weighted_relative_change([result.profiles["BwdBN"]]) > 0.2
