"""Figure 7: sensitivity changes sharply across consecutive fine epochs,
and the variation grows as epochs shrink."""

from repro.analysis.experiments import fig07_variability

from harness import record, run_once


def test_fig07_variability(benchmark, quick_setup):
    result = run_once(
        benchmark,
        lambda: fig07_variability(
            quick_setup, epoch_durations_ns=(1_000.0, 10_000.0, 50_000.0), max_epochs=25
        ),
    )
    record("fig07_variability", result.render())

    # 7a shape: substantial average change across consecutive 1us epochs.
    assert result.mean_change > 0.15
    # 7b shape: variability decreases as the epoch grows (paper:
    # 0.37 @1us -> 0.12 @100us).
    trend = [result.vs_epoch[k] for k in sorted(result.vs_epoch)]
    assert trend[0] > trend[-1]
