"""Figure 17: geomean EDP vs epoch duration - same trend as ED2P, with a
smaller predictive-vs-reactive gap (EDP tolerates slowness more)."""

from repro.analysis.experiments import epoch_duration_trend

from harness import record, run_once


def test_fig17_edp(benchmark, tiny_setup):
    result = run_once(
        benchmark,
        lambda: epoch_duration_trend(
            tiny_setup,
            designs=("CRISP", "PCSTALL"),
            epoch_durations_ns=(1_000.0, 10_000.0),
            n=1,
        ),
    )
    record("fig17_edp", result.render())

    fine = result.values[min(result.values)]
    # EDP improves vs static 1.7 for the predictive design at fine grain.
    assert fine["PCSTALL"] < 1.0
    # PCSTALL at least matches the reactive state of the art.
    assert fine["PCSTALL"] <= fine["CRISP"] + 0.02
