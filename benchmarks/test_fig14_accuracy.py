"""Figure 14: prediction accuracy of every design at 1us epochs.

Paper shape: reactive models (STALL/LEAD/CRIT/CRISP) cluster near 60%,
a perfectly-estimating reactive model (ACCREAC) only reaches ~63%, while
the PC-based designs jump to ~81% (PCSTALL) and ~90% (ACCPC); the oracle
is 100% by construction.
"""

from repro.analysis.experiments import EVAL_DESIGNS

from harness import get_design_matrix, record, run_once


def test_fig14_accuracy(benchmark, quick_setup):
    matrix = run_once(benchmark, lambda: get_design_matrix(quick_setup, EVAL_DESIGNS))
    record("fig14_accuracy", matrix.render_fig14())

    acc = {d: matrix.accuracy(d) for d in EVAL_DESIGNS}
    # PC-based prediction beats even a perfectly-estimating reactive
    # design - the paper's headline claim.
    assert acc["PCSTALL"] > acc["ACCREAC"]
    assert acc["ACCPC"] >= acc["PCSTALL"] - 0.02
    # Every practical reactive design trails the PC-based ones.
    for d in ("STALL", "LEAD", "CRIT", "CRISP"):
        assert acc["PCSTALL"] > acc[d], d
    # The oracle is (near-)perfect by construction.
    assert acc["ORACLE"] > 0.95
    # Absolute level comparable to the paper's 81%.
    assert acc["PCSTALL"] > 0.7
