"""Figure 8: individual wavefronts drive the CU's sensitivity swings."""

from repro.analysis.experiments import fig08_wavefront_contributions

from harness import record, run_once


def test_fig08_wavefront_contributions(benchmark, quick_setup):
    result = run_once(
        benchmark, lambda: fig08_wavefront_contributions(quick_setup, app="BwdBN", max_epochs=20)
    )
    record("fig08_wavefront_contrib", result.render())

    # Shape: per-slot contributions roughly sum to the CU total, and
    # different slots contribute at different times (mix shifts).
    n = len(result.cu_series)
    slot_sum = [sum(s[i] for s in result.slot_series) for i in range(n)]
    close = sum(
        1 for a, b in zip(slot_sum, result.cu_series)
        if abs(a - b) <= 0.5 * max(abs(b), 20.0)
    )
    assert close >= n // 2
    # At least two slots lead the CU total at different epochs.
    leaders = set()
    for i in range(n):
        vals = [s[i] for s in result.slot_series]
        if max(vals) > 0:
            leaders.add(vals.index(max(vals)))
    assert len(leaders) >= 2
