"""Extension: the Figure 18b effect under space-shared tenants.

With homogeneous workloads, 4 phase-aligned CUs lose little from
sharing one V/f domain (the flat small-platform Fig 18b). Co-locating a
compute-bound tenant with a memory-bound one makes the spatial
granularity matter: per-CU domains tune each tenant independently.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.core import EDnPObjective
from repro.dvfs.colocation import ColocationSimulation, Tenant
from repro.dvfs.designs import make_controller
from repro.workloads import build_workload, workload

from harness import record, run_once


def test_colocation_granularity(benchmark, tiny_setup):
    cfg = tiny_setup.config

    def sweep():
        out = {}
        for per in (1, 2, 4):
            c = replace(cfg, gpu=replace(cfg.gpu, cus_per_domain=per))
            tenants = [
                Tenant("hacc", build_workload(workload("hacc"), scale=0.4), (0, 1)),
                Tenant("xsbench", build_workload(workload("xsbench"), scale=0.1), (2, 3)),
            ]
            ctrl = make_controller("PCSTALL", c, EDnPObjective(2))
            r = ColocationSimulation(tenants, ctrl, c, max_epochs=800).run()
            out[per] = r.ed2p
        return out

    result = run_once(benchmark, sweep)
    base = result[1]
    rows = [[f"{per} CU/domain", v / base] for per, v in result.items()]
    record(
        "colocation_granularity",
        format_table(
            ["granularity", "ED2P (rel to per-CU)"], rows,
            title="Extension: Fig 18b under co-located heterogeneous tenants",
        ),
    )
    # The paper's spatial-granularity claim, now visible: coarser
    # domains lose efficiency when CUs host different tenants.
    assert result[4] > result[1]
