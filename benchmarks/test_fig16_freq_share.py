"""Figure 16: time share of each frequency state under PCSTALL/ED2P.

Paper shape: compute-intensive apps (dgemm, hacc) spend their time at the
high end of the range; memory-intensive apps (hpgmg, xsbench) park low.
"""

from repro.analysis.experiments import EVAL_DESIGNS

from harness import get_design_matrix, record, run_once


def _mean_freq(residency):
    return sum(f * share for f, share in residency.items())


def test_fig16_frequency_share(benchmark, quick_setup):
    matrix = run_once(benchmark, lambda: get_design_matrix(quick_setup, EVAL_DESIGNS))
    record("fig16_freq_share", matrix.render_fig16())

    res = {w: matrix.runs[w]["PCSTALL"].frequency_residency for w in matrix.runs}
    # Memory-bound xsbench parks at the bottom of the range...
    assert res["xsbench"][1.3] > 0.8
    # ...while the compute apps run measurably faster on average.
    assert _mean_freq(res["dgemm"]) > _mean_freq(res["xsbench"]) + 0.2
    assert _mean_freq(res["hacc"]) > _mean_freq(res["xsbench"])
    # Every residency distribution is a distribution.
    for w, r in res.items():
        assert abs(sum(r.values()) - 1.0) < 1e-6, w
