"""Figure 10: epochs starting at the same PC repeat their sensitivity far
better than consecutive epochs do - the insight PCSTALL is built on."""

from repro.analysis.experiments import fig10_pc_repeatability

from harness import record, run_once


def test_fig10_pc_repeatability(benchmark, quick_setup):
    result = run_once(
        benchmark,
        lambda: fig10_pc_repeatability(quick_setup, apps=quick_setup.workload_list(), max_epochs=30),
    )
    record("fig10_pc_repeatability", result.render())

    # Central shape of the paper: same-PC change (any granularity) is
    # well below the consecutive-epoch change (paper: 0.10 vs 0.37).
    assert result.per_granularity["wf"] < result.consecutive_wf * 0.8
    # Sharing the table more widely degrades repeatability only mildly
    # (paper: 64CU/CU/WF all land near 10%).
    assert result.per_granularity["gpu"] < result.consecutive_wf
