"""Figure 1a: the ED2P opportunity grows as DVFS epochs shrink, and the
predictive design keeps harvesting it while reactive designs plateau."""

from repro.analysis.experiments import epoch_duration_trend

from harness import record, run_once


def test_fig01a_ed2p_vs_epoch(benchmark, tiny_setup):
    result = run_once(
        benchmark,
        lambda: epoch_duration_trend(
            tiny_setup,
            designs=("CRISP", "PCSTALL", "ORACLE"),
            epoch_durations_ns=(1_000.0, 10_000.0, 50_000.0),
            n=2,
        ),
    )
    record("fig01a_ed2p_vs_epoch", result.render())

    durations = sorted(result.values)
    fine, coarse = result.values[durations[0]], result.values[durations[-1]]
    # Shape: at fine epochs the predictive design extracts at least as
    # much ED2P improvement as at coarse epochs...
    assert fine["PCSTALL"] <= coarse["PCSTALL"] + 0.03
    # ...and beats the reactive state of the art at fine grain.
    assert fine["PCSTALL"] <= fine["CRISP"] + 0.01
    # DVFS pays off vs static at the finest epoch.
    assert fine["PCSTALL"] < 1.0
