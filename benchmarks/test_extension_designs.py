"""Extension study: alternative predictors and estimators (DESIGN.md §6).

Two questions the paper raises but does not plot:

1. Do CPU-era *global phase-history tables* [55, 57] survive GPU
   fine-grain chaos? (Section 2.4 argues no.)
2. Is the PC-based mechanism estimator-agnostic? (Section 5.3 says the
   STALL estimator was chosen only for simplicity.)
"""

from repro.analysis.report import format_table
from repro.core import EDnPObjective
from repro.dvfs.designs import make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.workloads import build_workload, workload

from harness import record, run_once


def _accuracy(setup, design, wl):
    kernels = build_workload(workload(wl), scale=setup.scale)
    ctrl = make_controller(design, setup.config, EDnPObjective(2))
    r = DvfsSimulation(
        kernels, ctrl, setup.config, design_name=design, max_epochs=setup.max_epochs,
        collect_accuracy=True, oracle_sample_freqs=setup.oracle_sample_freqs,
    ).run()
    return r.prediction_accuracy


def test_history_table_vs_pcstall(benchmark, tiny_setup):
    def sweep():
        out = {}
        for design in ("CRISP", "HISTORY", "PCSTALL"):
            accs = [_accuracy(tiny_setup, design, w) for w in tiny_setup.workload_list()]
            out[design] = sum(accs) / len(accs)
        return out

    result = run_once(benchmark, sweep)
    record(
        "extension_history_vs_pc",
        format_table(
            ["design", "accuracy"], list(result.items()),
            title="Extension: global phase-history table vs PC-based prediction",
        ),
    )
    # Section 2.4's argument: history tables capture aggregate patterns,
    # not per-wavefront position; the PC-based design must win.
    assert result["PCSTALL"] > result["HISTORY"] - 0.02


def test_pc_mechanism_is_estimator_agnostic(benchmark, tiny_setup):
    def sweep():
        out = {}
        for design in ("PCSTALL", "PCLEAD", "PCCRIT", "PCCRISP"):
            accs = [_accuracy(tiny_setup, design, w) for w in tiny_setup.workload_list()]
            out[design] = sum(accs) / len(accs)
        return out

    result = run_once(benchmark, sweep)
    record(
        "extension_pc_estimators",
        format_table(
            ["design", "accuracy"], list(result.items()),
            title="Extension: PC-based prediction with different estimators",
        ),
    )
    # All PC-fed estimators should land in a similar accuracy band: the
    # prediction mechanism, not the estimator, carries the benefit.
    values = list(result.values())
    assert max(values) - min(values) < 0.25
    assert all(v > 0.5 for v in values)
