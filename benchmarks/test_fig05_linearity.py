"""Figure 5: instructions committed are ~linear in frequency (R^2 ~ 0.82)."""

from repro.analysis.experiments import fig05_linearity

from harness import record, run_once


def test_fig05_linearity(benchmark, quick_setup):
    result = run_once(benchmark, lambda: fig05_linearity(quick_setup, sample_epochs=(2, 5, 9, 14)))
    text = result.render()
    # Also show the comd points the paper's scatter plot uses.
    comd = result.per_workload["comd"]
    lines = [text, "", "comd sampled epochs (frequency -> commits):"]
    for e in comd.epochs:
        pts = "  ".join(f"{f:.1f}:{c}" for f, c in e.points[::3])
        lines.append(f"  epoch {e.epoch_index:3d} (R^2={e.r_squared:.2f}): {pts}")
    record("fig05_linearity", "\n".join(lines))
    # Paper: mean R^2 0.82. Require comparable linearity.
    assert result.mean_r_squared > 0.7
