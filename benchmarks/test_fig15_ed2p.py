"""Figure 15: per-workload ED2P normalised to static 1.7 GHz at 1us.

Paper shape: the oracle improves ED2P by up to 54%; PC-based designs
recover most of that; reactive designs recover far less. Memory-bound
apps benefit the most (they can park at 1.3 GHz almost for free).
"""

from repro.analysis.experiments import EVAL_DESIGNS

from harness import get_design_matrix, record, run_once


def test_fig15_ed2p(benchmark, quick_setup):
    matrix = run_once(benchmark, lambda: get_design_matrix(quick_setup, EVAL_DESIGNS))
    record("fig15_ed2p", matrix.render_fig15())

    g = {d: matrix.geomean_ed2p(d) for d in EVAL_DESIGNS}
    # DVFS with good prediction beats the static reference overall.
    assert g["PCSTALL"] < 1.0
    assert g["ORACLE"] < 1.0
    # PC-based designs beat the practical reactive estimators in
    # aggregate (who-wins shape of the paper's figure).
    reactive_best = min(g[d] for d in ("STALL", "LEAD", "CRIT", "CRISP"))
    assert g["PCSTALL"] <= reactive_best + 0.01
    # Memory-bound xsbench enjoys a large improvement under PCSTALL.
    assert matrix.normalized_ed2p("xsbench", "PCSTALL") < 0.9
