"""TABLE I: hardware storage overhead per predictor instance."""

from repro.analysis.experiments import tab1_storage

from harness import record, run_once


def test_tab1_storage(benchmark):
    result = run_once(benchmark, tab1_storage)
    record("tab1_storage", result.render())
    # Shape: PCSTALL needs the most state (table + per-wave registers),
    # exactly 328 B as in the paper; STALL the least.
    assert result.bytes_per_design["PCSTALL"] == 328
    assert result.bytes_per_design["STALL"] < result.bytes_per_design["CRISP"]
