"""Section 5.1: fork-and-pre-execute methodology validation (paper: 97.6%)."""

from repro.analysis.experiments import oracle_validation

from harness import record, run_once


def test_oracle_validation(benchmark, quick_setup):
    result = run_once(benchmark, lambda: oracle_validation(quick_setup, app="comd", probes=5))
    record("oracle_validation", result.render())
    # The shuffled pre-execution must predict the coherent re-execution
    # to within a few percent (paper reaches 97.6% with 10 processes).
    assert result.accuracy > 0.93
