"""Held-out evaluation: does the trained model actually decide well?

Two complementary views, matching how the paper judges predictors:

**Offline** (:func:`offline_metrics`) - on the dataset's held-out rows,
evaluate each predicted line at the frequency the next epoch really ran
at and compare against the commits it really achieved: the same
relative-error metric the simulator scores live predictions with,
summarised with the same exact percentiles
(:func:`repro.telemetry.accuracy.percentile`).

**Online** (:func:`evaluate_design` / :func:`compare_designs`) - replay
the full :class:`~repro.dvfs.simulation.DvfsSimulation` closed loop
with the trained model making every decision, next to the hand-built
baselines (PCSTALL / CRISP / HISTORY / STATIC) and the ORACLE upper
bound, all with oracle scoring on. Each run carries an in-memory
:class:`~repro.telemetry.recorder.EpochTraceRecorder` so the standard
:class:`~repro.telemetry.accuracy.AccuracyReport` drill-down (error
percentiles, oracle agreement) comes out of the same machinery the
``repro report`` CLI uses, and EDP/ED2P deltas are quoted against the
ORACLE run of the same workload.

Closed-loop evaluation is the one that matters: a model with mediocre
pointwise error can still rank frequencies correctly (and decide well),
and a sharp-looking offline fit can fall apart once its own decisions
shift the feature distribution. ``repro learn eval`` prints both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import SimConfig
from repro.core.controller import DvfsController
from repro.core.objectives import EDnPObjective, Objective
from repro.dvfs.simulation import DvfsSimulation, RunResult
from repro.learn.dataset import Dataset
from repro.learn.models import LearnedPredictor, SensitivityModel
from repro.telemetry.accuracy import AccuracyReport, percentile
from repro.telemetry.recorder import EpochTraceRecorder, TelemetryConfig

#: The hand-built designs a learned model is compared against.
DEFAULT_BASELINES = ("STATIC@1.7", "CRISP", "HISTORY", "PCSTALL")


def offline_metrics(
    model: SensitivityModel, dataset: Dataset, split: str = "eval"
) -> Dict[str, float]:
    """Pointwise accuracy of the model on a dataset split.

    ``rel_*`` keys summarise ``|I_pred(f_next) - commits_next| /
    commits_next`` (zero-commit epochs are scored 1.0 when the model
    claims commits, skipped when it agrees - the simulator's rule).
    """
    mask = dataset.rows(split)
    n = int(mask.sum())
    if n == 0:
        raise ValueError(f"dataset has no rows in split {split!r}")
    lines = model.predict_rows(dataset.features[mask])
    freqs = dataset.next_f[mask]
    actual = dataset.next_commits[mask]
    predicted = np.maximum(0.0, lines[:, 0] + lines[:, 1] * freqs)
    errors: List[float] = []
    for pred, act in zip(predicted, actual):
        if act <= 0:
            if pred > 0.0:
                errors.append(1.0)
            continue
        errors.append(abs(pred - act) / act)
    out: Dict[str, float] = {
        "rows": float(n),
        "scored": float(len(errors)),
        "rel_mean": sum(errors) / len(errors) if errors else 0.0,
    }
    for q in (50.0, 90.0, 99.0):
        out[f"rel_p{q:g}"] = percentile(errors, q)
    # Label-line fit (against the oracle truth the labels carry).
    label_err = np.abs(lines - dataset.labels[mask])
    out["i0_mae"] = float(label_err[:, 0].mean())
    out["slope_mae"] = float(label_err[:, 1].mean())
    return out


@dataclass
class DesignEval:
    """One design's closed-loop run plus its accuracy drill-down."""

    design: str
    result: RunResult
    accuracy: AccuracyReport

    @property
    def edp(self) -> float:
        return self.result.edp

    @property
    def ed2p(self) -> float:
        return self.result.ed2p


@dataclass
class EvalReport:
    """Closed-loop comparison of LEARNED vs baselines on one workload."""

    workload: str
    rows: List[DesignEval]
    #: Offline held-out metrics, when a dataset was supplied.
    offline: Optional[Dict[str, float]] = None

    def row(self, design: str) -> Optional[DesignEval]:
        for r in self.rows:
            if r.design == design:
                return r
        return None

    def oracle_edp(self) -> Optional[float]:
        oracle = self.row("ORACLE")
        return oracle.edp if oracle is not None else None

    def render(self) -> str:
        from repro.analysis.report import format_table

        oracle_edp = self.oracle_edp()
        table_rows = []
        for r in self.rows:
            pcts = r.accuracy.error_percentiles()
            delta = (
                f"{(r.edp / oracle_edp - 1.0) * 100.0:+.1f}%"
                if oracle_edp else "-"
            )
            acc = r.result.prediction_accuracy
            table_rows.append([
                r.design,
                f"{r.edp:.3e}",
                f"{r.ed2p:.3e}",
                delta,
                f"{acc:.3f}" if acc is not None else "-",
                f"{r.accuracy.agreement:.1%}",
                f"{pcts['p50']:.3f}",
                f"{pcts['p90']:.3f}",
            ])
        return format_table(
            ["design", "EDP", "ED2P", "EDP vs oracle", "accuracy",
             "agreement", "err p50", "err p90"],
            table_rows,
            title=f"{self.workload}: learned model vs baselines",
        )


def _run_with_accuracy(
    workload: str,
    design: str,
    config: SimConfig,
    controller: DvfsController,
    scale: float,
    max_epochs: int,
    oracle_sample_freqs: int,
) -> DesignEval:
    from repro.workloads import build_workload, workload as get_workload

    kernels = build_workload(get_workload(workload), scale=scale)
    # Ring sized to hold the whole run (1 epoch + n_domains records per
    # epoch plus headers/footers) so the accuracy drill-down sees every
    # decision, matching the repro trace CLI's sizing.
    ring = (max_epochs + 2) * (config.gpu.n_domains + 1)
    recorder = EpochTraceRecorder(TelemetryConfig(ring_size=ring))
    sim = DvfsSimulation(
        kernels,
        controller,
        config,
        design_name=design,
        workload_name=workload,
        collect_accuracy=True,
        max_epochs=max_epochs,
        oracle_sample_freqs=oracle_sample_freqs,
        telemetry=recorder,
    )
    result = sim.run()
    report = AccuracyReport.from_recorder(recorder, label=f"{workload}/{design}")
    return DesignEval(design, result, report)


def evaluate_design(
    workload: str,
    design: str,
    config: SimConfig,
    *,
    model: Optional[SensitivityModel] = None,
    objective: Optional[Objective] = None,
    scale: float = 0.4,
    max_epochs: int = 400,
    oracle_sample_freqs: int = 4,
) -> DesignEval:
    """One closed-loop run with oracle scoring.

    With ``model`` given, the design label is served by a fresh
    :class:`LearnedPredictor` around that model (bypassing the registry,
    so unsaved models are evaluable); otherwise ``design`` is built via
    the normal registry (:func:`repro.dvfs.designs.make_controller`).
    """
    obj = objective or EDnPObjective(2)
    if model is not None:
        controller = DvfsController(
            LearnedPredictor(model, config.gpu), obj, config
        )
    else:
        from repro.dvfs.designs import make_controller

        controller = make_controller(design, config, objective)
    return _run_with_accuracy(
        workload, design, config, controller, scale, max_epochs,
        oracle_sample_freqs,
    )


def compare_designs(
    model: SensitivityModel,
    workload: str,
    config: SimConfig,
    *,
    baselines: Sequence[str] = DEFAULT_BASELINES,
    include_oracle: bool = True,
    dataset: Optional[Dataset] = None,
    objective: Optional[Objective] = None,
    scale: float = 0.4,
    max_epochs: int = 400,
    oracle_sample_freqs: int = 4,
) -> EvalReport:
    """LEARNED vs the hand-built designs on one held-out workload."""
    rows: List[DesignEval] = []
    designs: List[Tuple[str, Optional[SensitivityModel]]] = [("LEARNED", model)]
    designs += [(name, None) for name in baselines]
    if include_oracle and "ORACLE" not in baselines:
        designs.append(("ORACLE", None))
    for name, mdl in designs:
        rows.append(
            evaluate_design(
                workload, name, config,
                model=mdl, objective=objective, scale=scale,
                max_epochs=max_epochs,
                oracle_sample_freqs=oracle_sample_freqs,
            )
        )
    offline = None
    if dataset is not None and dataset.n_eval > 0:
        offline = offline_metrics(model, dataset, split="eval")
    return EvalReport(workload=workload, rows=rows, offline=offline)


__all__ = [
    "DEFAULT_BASELINES",
    "DesignEval",
    "EvalReport",
    "compare_designs",
    "evaluate_design",
    "offline_metrics",
]
