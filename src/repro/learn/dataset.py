"""Telemetry-to-dataset extraction: observation JSONL -> supervised rows.

A trace recorded with ``repro trace <w> --design <d> --jsonl FILE
--observations`` archives, per epoch, the complete predictor input (the
wire-form :class:`~repro.gpu.gpu.EpochResult`) plus the oracle's true
sensitivity lines. :func:`extract_dataset` replays those epochs through
the *serving* :class:`~repro.learn.features.FeatureExtractor` and emits
one supervised example per (epoch, domain):

* **features** - the serveable vector of epoch ``t``
  (:data:`~repro.learn.features.FEATURE_NAMES`),
* **labels** - the oracle-true sensitivity line of epoch ``t + 1``
  (what every predictor in the paper is trying to guess),
* **next_f / next_commits** - the frequency epoch ``t + 1`` actually ran
  at and the commits it realised there: one true point on the label
  line, which is all the online-RLS model gets to learn from in
  deployment,
* **aux** - analysis-only columns (elapsed-epoch truth, the recording
  design's PC-table deltas); stored, never trained on.

Splits are **deterministic**: each row hashes
``workload | config_hash | seed | epoch`` and lands in the eval split
when its bucket falls below ``eval_fraction``. Re-extracting the same
trace always reproduces the same split, and rows from the same workload
+ platform + seed land identically across machines.

Artifacts are a schema-versioned pair: ``<base>.npz`` (the arrays) +
``<base>.json`` (the sidecar: schema + feature names + provenance +
content hash). The **dataset hash** is computed over the array contents
and the schema - not the npz container bytes (zip embeds timestamps) -
so two extractions of the same trace hash identically and the hash can
serve as training provenance in the model registry.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.learn.features import (
    AUX_NAMES,
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    LABEL_NAMES,
    FeatureExtractor,
)
from repro.telemetry.schema import build_meta, check_meta, load_trace_jsonl

PathLike = Union[str, pathlib.Path]

#: Bump when dataset columns or the sidecar layout change meaning.
DATASET_SCHEMA_VERSION = 1

#: npz keys, in hash order. Order is part of the hash recipe.
_ARRAY_KEYS = (
    "features", "labels", "next_f", "next_commits", "aux",
    "eval_mask", "epoch", "domain",
)

_PC_DELTA_KEYS = ("pc_lookups", "pc_hits", "pc_updates", "pc_evictions")


class DatasetError(ValueError):
    """A trace or dataset artifact cannot be used."""


@dataclass
class Dataset:
    """Supervised examples extracted from one or more epoch traces."""

    features: np.ndarray      #: (n, F) float64, columns = FEATURE_NAMES
    labels: np.ndarray        #: (n, 2) float64: next-epoch (i0, slope)
    next_f: np.ndarray        #: (n,) float64: next epoch's chosen frequency
    next_commits: np.ndarray  #: (n,) float64: commits realised there
    aux: np.ndarray           #: (n, A) float64, columns = AUX_NAMES
    eval_mask: np.ndarray     #: (n,) bool: True = held-out eval row
    epoch: np.ndarray         #: (n,) int64
    domain: np.ndarray        #: (n,) int64
    #: Sidecar: schema, feature names, sources, provenance, hash.
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_train(self) -> int:
        return int((~self.eval_mask).sum())

    @property
    def n_eval(self) -> int:
        return int(self.eval_mask.sum())

    def rows(self, split: str) -> np.ndarray:
        """Boolean row mask for ``"train"``, ``"eval"`` or ``"all"``."""
        if split == "train":
            return ~self.eval_mask
        if split == "eval":
            return self.eval_mask
        if split == "all":
            return np.ones(len(self), dtype=bool)
        raise ValueError(f"unknown split {split!r} (train/eval/all)")

    def content_hash(self) -> str:
        return dataset_hash(self)

    def frequency_range(self) -> Tuple[float, float]:
        """(f_min, f_max) across all source platforms.

        Used as the anchor frequencies for label-anchored training;
        falls back to the observed ``next_f`` range when the sidecar
        predates the ``f_min``/``f_max`` source fields.
        """
        sources = self.meta.get("sources") or []
        lows = [s["f_min"] for s in sources if "f_min" in s]
        highs = [s["f_max"] for s in sources if "f_max" in s]
        if lows and highs:
            return float(min(lows)), float(max(highs))
        return float(self.next_f.min()), float(self.next_f.max())


def _split_bucket(workload: str, config_hash: str, seed: int, epoch: int) -> float:
    """Deterministic [0, 1) bucket for the train/eval split."""
    key = f"{workload}|{config_hash}|{seed}|{epoch}".encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


def _array_digest(arr: np.ndarray) -> Dict[str, object]:
    a = np.ascontiguousarray(arr)
    return {
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "sha256": hashlib.sha256(a.tobytes()).hexdigest(),
    }


def dataset_hash(ds: "Dataset") -> str:
    """Content hash over the arrays + schema (not the npz container)."""
    payload = {
        "schema_version": DATASET_SCHEMA_VERSION,
        "feature_schema_version": FEATURE_SCHEMA_VERSION,
        "feature_names": list(FEATURE_NAMES),
        "aux_names": list(AUX_NAMES),
        "label_names": list(LABEL_NAMES),
        "arrays": {k: _array_digest(getattr(ds, k)) for k in _ARRAY_KEYS},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Extraction


def _trace_header(records: Sequence[Dict[str, object]], path: PathLike):
    for rec in records:
        if rec.get("type") == "run":
            meta = check_meta(rec)
            if "sim_config" not in meta:
                raise DatasetError(
                    f"{path}: trace lacks an embedded sim_config; record it "
                    f"with --observations (repro trace <w> --jsonl FILE "
                    f"--observations)"
                )
            return meta
    raise DatasetError(f"{path}: no run header record")


def extract_rows(
    records: Sequence[Dict[str, object]],
    source: str = "<records>",
) -> Tuple[Dict[str, List], Dict[str, object]]:
    """Columns-of-lists for one trace, plus its source description.

    Split bucketing is *not* applied here; :func:`extract_dataset`
    owns the split so multi-trace extractions share one recipe.
    """
    from repro.service.protocol import sim_config_from_wire

    header = _trace_header(records, source)
    sim_config = sim_config_from_wire(header["sim_config"])
    gpu_cfg = sim_config.gpu

    observations = [r for r in records if r.get("type") == "observation"]
    observations.sort(key=lambda r: int(r["epoch"]))
    if len(observations) < 2:
        raise DatasetError(
            f"{source}: need at least two observation records to form "
            f"(features, next-epoch label) pairs, got {len(observations)}"
        )
    pc_deltas: Dict[int, Dict[str, float]] = {}
    for rec in records:
        if rec.get("type") == "epoch" and "pc_lookups" in rec:
            pc_deltas[int(rec["epoch"])] = {
                k: float(rec.get(k, 0)) for k in _PC_DELTA_KEYS
            }

    from repro.service.protocol import epoch_result_from_wire

    extractor = FeatureExtractor(
        gpu_cfg, sim_config.dvfs.f_min, sim_config.dvfs.f_max
    )
    per = gpu_cfg.cus_per_domain
    cols: Dict[str, List] = {k: [] for k in _ARRAY_KEYS if k != "eval_mask"}

    decoded = []
    for obs in observations:
        result = epoch_result_from_wire(obs["result"])
        truth = obs.get("truth")
        if truth is None:
            raise DatasetError(
                f"{source}: observation for epoch {obs['epoch']} has no "
                f"oracle truth lines; record the trace with oracle "
                f"sampling enabled (repro trace does this by default)"
            )
        decoded.append((int(obs["epoch"]), result, truth))

    for (epoch_idx, result, truth), nxt in zip(decoded, decoded[1:]):
        next_epoch, next_result, next_truth = nxt
        phis = extractor.observe(result)
        deltas = pc_deltas.get(epoch_idx, {})
        for d in range(gpu_cfg.n_domains):
            next_committed = sum(
                next_result.cu_stats[cu].committed
                for cu in range(d * per, (d + 1) * per)
            )
            cols["features"].append(phis[d])
            cols["labels"].append(
                [float(next_truth[d][0]), float(next_truth[d][1])]
            )
            cols["next_f"].append(float(next_result.frequencies_ghz[d]))
            cols["next_commits"].append(float(next_committed))
            cols["aux"].append(
                [float(truth[d][0]), float(truth[d][1])]
                + [deltas.get(k, 0.0) for k in _PC_DELTA_KEYS]
            )
            cols["epoch"].append(epoch_idx)
            cols["domain"].append(d)

    source_info = {
        "source": str(source),
        "workload": str(header.get("workload", "")),
        "design": str(header.get("design", "")),
        "config_hash": str(header.get("config_hash", "")),
        "seed": int(sim_config.seed),
        "rows": len(cols["epoch"]),
        "epochs": len(decoded),
        # The platform's frequency range: training anchors the label
        # lines here so the fitted slope is identified across the whole
        # actionable range, not just the frequencies the recording
        # design happened to choose.
        "f_min": float(sim_config.dvfs.f_min),
        "f_max": float(sim_config.dvfs.f_max),
    }
    return cols, source_info


def extract_dataset(
    trace_paths: Sequence[PathLike],
    eval_fraction: float = 0.25,
) -> Dataset:
    """Extract a supervised dataset from one or more observation traces."""
    if not trace_paths:
        raise DatasetError("need at least one trace file")
    if not 0.0 <= eval_fraction < 1.0:
        raise DatasetError("eval_fraction must be in [0, 1)")

    all_cols: Dict[str, List] = {k: [] for k in _ARRAY_KEYS if k != "eval_mask"}
    eval_mask: List[bool] = []
    sources: List[Dict[str, object]] = []
    for path in trace_paths:
        cols, info = extract_rows(load_trace_jsonl(path), source=path)
        for k, values in cols.items():
            all_cols[k].extend(values)
        for epoch_idx in cols["epoch"]:
            bucket = _split_bucket(
                str(info["workload"]), str(info["config_hash"]),
                int(info["seed"]), int(epoch_idx),
            )
            eval_mask.append(bucket < eval_fraction)
        info["source"] = pathlib.Path(path).name
        sources.append(info)

    ds = Dataset(
        features=np.asarray(all_cols["features"], dtype=np.float64),
        labels=np.asarray(all_cols["labels"], dtype=np.float64),
        next_f=np.asarray(all_cols["next_f"], dtype=np.float64),
        next_commits=np.asarray(all_cols["next_commits"], dtype=np.float64),
        aux=np.asarray(all_cols["aux"], dtype=np.float64),
        eval_mask=np.asarray(eval_mask, dtype=bool),
        epoch=np.asarray(all_cols["epoch"], dtype=np.int64),
        domain=np.asarray(all_cols["domain"], dtype=np.int64),
    )
    ds.meta = {
        "schema_version": DATASET_SCHEMA_VERSION,
        "feature_schema_version": FEATURE_SCHEMA_VERSION,
        "feature_names": list(FEATURE_NAMES),
        "aux_names": list(AUX_NAMES),
        "label_names": list(LABEL_NAMES),
        "eval_fraction": eval_fraction,
        "n_rows": len(ds),
        "n_train": ds.n_train,
        "n_eval": ds.n_eval,
        "sources": sources,
        "meta": build_meta(),
        "dataset_hash": dataset_hash(ds),
    }
    return ds


# ----------------------------------------------------------------------
# Persistence


def _base_path(path: PathLike) -> pathlib.Path:
    p = pathlib.Path(path)
    if p.suffix in (".npz", ".json"):
        p = p.with_suffix("")
    return p


def save_dataset(ds: Dataset, path: PathLike) -> Tuple[pathlib.Path, pathlib.Path]:
    """Write ``<base>.npz`` + ``<base>.json``; returns both paths."""
    base = _base_path(path)
    base.parent.mkdir(parents=True, exist_ok=True)
    npz_path = base.with_suffix(".npz")
    json_path = base.with_suffix(".json")
    np.savez(npz_path, **{k: getattr(ds, k) for k in _ARRAY_KEYS})
    meta = dict(ds.meta)
    meta.setdefault("dataset_hash", dataset_hash(ds))
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return npz_path, json_path


def load_dataset(path: PathLike) -> Dataset:
    """Load a dataset pair; validates schema + content hash."""
    base = _base_path(path)
    npz_path = base.with_suffix(".npz")
    json_path = base.with_suffix(".json")
    try:
        with open(json_path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetError(f"cannot read dataset sidecar {json_path}: {exc}")
    if meta.get("schema_version") != DATASET_SCHEMA_VERSION:
        raise DatasetError(
            f"{json_path}: dataset schema {meta.get('schema_version')!r} "
            f"unsupported (this build reads {DATASET_SCHEMA_VERSION})"
        )
    if meta.get("feature_names") != list(FEATURE_NAMES):
        raise DatasetError(
            f"{json_path}: feature columns {meta.get('feature_names')!r} do "
            f"not match this build's feature schema; re-extract the dataset"
        )
    try:
        with np.load(npz_path) as arrays:
            ds = Dataset(
                **{k: np.asarray(arrays[k]) for k in _ARRAY_KEYS},
                meta=meta,
            )
    except (OSError, KeyError, ValueError) as exc:
        raise DatasetError(f"cannot read dataset arrays {npz_path}: {exc}")
    recorded = meta.get("dataset_hash")
    actual = dataset_hash(ds)
    if recorded != actual:
        raise DatasetError(
            f"{npz_path}: content hash mismatch (sidecar says "
            f"{str(recorded)[:12]}..., arrays hash to {actual[:12]}...); "
            f"the pair is torn or tampered"
        )
    return ds


__all__ = [
    "DATASET_SCHEMA_VERSION",
    "Dataset",
    "DatasetError",
    "dataset_hash",
    "extract_dataset",
    "extract_rows",
    "save_dataset",
    "load_dataset",
]
