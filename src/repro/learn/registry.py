"""Versioned on-disk model registry: trained models as auditable artifacts.

Layout (default ``.repro_models/`` in the working directory;
``REPRO_MODEL_DIR`` overrides, with the same empty-means-unset rule as
the result cache's directory variable)::

    <root>/models/<artifact_id>.json    one immutable artifact per model
    <root>/refs/<name>.json             mutable name -> artifact_id
    <root>/refs/latest.json             updated on every save

An artifact is one JSON document: the model payload
(:meth:`~repro.learn.models.SensitivityModel.to_payload`) plus a
provenance block - ``build_meta`` (producing package version), the
content hash of the training dataset, the dataset's source traces with
their ``config_hash`` platform identities, and the training
hyper-parameters. The **artifact id** is the SHA-256 of the canonical
JSON of everything except the id itself, computed with the same
canonical encoding the result cache keys on - content-addressed, so
retraining from the same dataset + seed reproduces the same id
bit-for-bit, and any edit to weights or provenance changes it.
Artifacts embed no timestamps for exactly this reason.

Model references accepted everywhere (``LEARNED@<ref>``, ``repro serve
--model``, ``repro learn eval``): a full artifact id, an unambiguous id
prefix (>= 8 hex chars), a ref name, or ``latest``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.learn.models import SensitivityModel
from repro.telemetry.schema import build_meta

PathLike = Union[str, pathlib.Path]

#: Bump when the artifact document layout changes meaning.
REGISTRY_SCHEMA_VERSION = 1

#: Default registry directory name (created in the working directory).
DEFAULT_MODEL_DIR = ".repro_models"

#: Environment variable overriding the default registry directory.
MODEL_DIR_ENV = "REPRO_MODEL_DIR"

#: Shortest accepted artifact-id prefix.
MIN_ID_PREFIX = 8


class ModelResolutionError(ValueError):
    """A model reference cannot be resolved to a usable artifact.

    Subclasses ``ValueError`` so a decision-service open naming a bad
    model is rejected as a bad open, exactly like an unknown design.
    """


def default_model_dir() -> pathlib.Path:
    # `or`, not a default: REPRO_MODEL_DIR="" must mean "unset".
    return pathlib.Path(os.environ.get(MODEL_DIR_ENV) or DEFAULT_MODEL_DIR)


def artifact_id_of(document: Dict[str, object]) -> str:
    """Content hash of an artifact document (id/name fields excluded)."""
    payload = {
        k: v for k, v in document.items() if k not in ("artifact_id", "name")
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _atomic_write_json(path: pathlib.Path, document: Dict[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class ModelRegistry:
    """Content-addressed store of trained sensitivity models."""

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_model_dir()

    @property
    def models_dir(self) -> pathlib.Path:
        return self.root / "models"

    @property
    def refs_dir(self) -> pathlib.Path:
        return self.root / "refs"

    # -- write ---------------------------------------------------------
    def save(
        self,
        model: SensitivityModel,
        provenance: Dict[str, object],
        name: Optional[str] = None,
    ) -> str:
        """Store a trained model; returns its content-hash artifact id.

        ``provenance`` should carry ``dataset_hash``, the training
        hyper-parameters, and the dataset's source descriptions; the
        registry adds its own ``build_meta`` block. The ``latest`` ref
        (plus ``name``, if given) is pointed at the new artifact.
        """
        document: Dict[str, object] = {
            "registry_schema_version": REGISTRY_SCHEMA_VERSION,
            "model": model.to_payload(),
            "provenance": {"meta": build_meta(), **provenance},
        }
        artifact_id = artifact_id_of(document)
        document["artifact_id"] = artifact_id
        if name is not None:
            self._check_ref_name(name)
            document["name"] = name
        _atomic_write_json(self.models_dir / f"{artifact_id}.json", document)
        self.set_ref("latest", artifact_id)
        if name is not None:
            self.set_ref(name, artifact_id)
        return artifact_id

    def set_ref(self, name: str, artifact_id: str) -> None:
        self._check_ref_name(name)
        if not (self.models_dir / f"{artifact_id}.json").exists():
            raise ModelResolutionError(
                f"cannot point ref {name!r} at unknown artifact {artifact_id!r}"
            )
        _atomic_write_json(
            self.refs_dir / f"{name}.json", {"artifact_id": artifact_id}
        )

    @staticmethod
    def _check_ref_name(name: str) -> None:
        ok = name and all(c.isalnum() or c in "._-" for c in name)
        if not ok or name.startswith("."):
            raise ModelResolutionError(
                f"bad ref name {name!r}: use letters, digits, '.', '_', '-'"
            )

    # -- read ----------------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Resolve a ref name / id / id prefix to a full artifact id."""
        if not ref:
            raise ModelResolutionError("empty model reference")
        ref_path = self.refs_dir / f"{ref}.json"
        if ref_path.exists():
            try:
                with open(ref_path, "r", encoding="utf-8") as fh:
                    target = json.load(fh).get("artifact_id")
            except (OSError, json.JSONDecodeError) as exc:
                raise ModelResolutionError(f"unreadable ref {ref!r}: {exc}")
            if not isinstance(target, str):
                raise ModelResolutionError(f"ref {ref!r} has no artifact_id")
            return target
        if (self.models_dir / f"{ref}.json").exists():
            return ref
        if len(ref) >= MIN_ID_PREFIX and all(c in "0123456789abcdef" for c in ref):
            matches = sorted(
                p.stem for p in self.models_dir.glob(f"{ref}*.json")
            )
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise ModelResolutionError(
                    f"ambiguous artifact prefix {ref!r}: "
                    + ", ".join(m[:12] for m in matches)
                )
        known = ", ".join(sorted(self.list_refs())) or "<none>"
        raise ModelResolutionError(
            f"unknown model reference {ref!r} in registry {self.root} "
            f"(refs: {known})"
        )

    def load_document(self, ref: str) -> Dict[str, object]:
        """The validated artifact document for a reference."""
        artifact_id = self.resolve(ref)
        path = self.models_dir / f"{artifact_id}.json"
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ModelResolutionError(f"unreadable artifact {path}: {exc}")
        self.validate_document(document, expect_id=artifact_id)
        return document

    def load(self, ref: str) -> Tuple[SensitivityModel, Dict[str, object]]:
        """Reconstruct the model for a reference, plus its document."""
        document = self.load_document(ref)
        model = SensitivityModel.from_payload(document["model"])
        return model, document

    @staticmethod
    def validate_document(
        document: Dict[str, object], expect_id: Optional[str] = None
    ) -> None:
        if document.get("registry_schema_version") != REGISTRY_SCHEMA_VERSION:
            raise ModelResolutionError(
                f"artifact schema "
                f"{document.get('registry_schema_version')!r} unsupported "
                f"(this build reads {REGISTRY_SCHEMA_VERSION})"
            )
        for field in ("model", "provenance", "artifact_id"):
            if field not in document:
                raise ModelResolutionError(f"artifact lacks {field!r}")
        actual = artifact_id_of(document)
        recorded = document["artifact_id"]
        if recorded != actual:
            raise ModelResolutionError(
                f"artifact content hash mismatch: document says "
                f"{str(recorded)[:12]}..., contents hash to {actual[:12]}..."
            )
        if expect_id is not None and recorded != expect_id:
            raise ModelResolutionError(
                f"artifact id {str(recorded)[:12]}... does not match its "
                f"file name {expect_id[:12]}..."
            )

    # -- enumeration ---------------------------------------------------
    def list_refs(self) -> Dict[str, str]:
        refs: Dict[str, str] = {}
        if not self.refs_dir.is_dir():
            return refs
        for path in sorted(self.refs_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    target = json.load(fh).get("artifact_id")
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(target, str):
                refs[path.stem] = target
        return refs

    def list_artifacts(self) -> List[Dict[str, object]]:
        """Summaries of every stored artifact, sorted by id."""
        out: List[Dict[str, object]] = []
        if not self.models_dir.is_dir():
            return out
        refs = self.list_refs()
        for path in sorted(self.models_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    document = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            model = document.get("model", {})
            provenance = document.get("provenance", {})
            out.append({
                "artifact_id": str(document.get("artifact_id", path.stem)),
                "kind": model.get("kind"),
                "seed": model.get("seed"),
                "dataset_hash": provenance.get("dataset_hash"),
                "repro_version": provenance.get("meta", {}).get("repro_version"),
                "refs": sorted(
                    name for name, target in refs.items()
                    if target == document.get("artifact_id")
                ),
            })
        return out


def load_model(ref: str, root: Optional[PathLike] = None) -> SensitivityModel:
    """One-call convenience: resolve + validate + reconstruct."""
    model, _ = ModelRegistry(root).load(ref)
    return model


__all__ = [
    "REGISTRY_SCHEMA_VERSION",
    "DEFAULT_MODEL_DIR",
    "MODEL_DIR_ENV",
    "ModelRegistry",
    "ModelResolutionError",
    "artifact_id_of",
    "default_model_dir",
    "load_model",
]
