"""Learned predictors: telemetry -> dataset -> model -> registry -> serving.

The trained counterpart of the hand-built TABLE III designs. The loop::

    repro trace <w> --jsonl t.jsonl --observations   # archive epochs
    repro learn extract t.jsonl -o ds                # supervised dataset
    repro learn train ds --kind rls --name mine      # registry artifact
    repro learn eval mine --workload <w>             # vs baselines
    repro serve --model mine                         # answer live traffic

and ``LEARNED@<ref>`` is a design name everywhere designs go: sweeps,
traces, the decision service, ``repro replay``.
"""

from repro.learn.dataset import (
    DATASET_SCHEMA_VERSION,
    Dataset,
    DatasetError,
    dataset_hash,
    extract_dataset,
    extract_rows,
    load_dataset,
    save_dataset,
)
from repro.learn.evaluate import (
    DEFAULT_BASELINES,
    DesignEval,
    EvalReport,
    compare_designs,
    evaluate_design,
    offline_metrics,
)
from repro.learn.features import (
    AUX_NAMES,
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    LABEL_NAMES,
    FeatureExtractor,
)
from repro.learn.models import (
    MODEL_KINDS,
    MODEL_SCHEMA_VERSION,
    FeatureScaler,
    LearnedPredictor,
    ModelError,
    OnlineRLSModel,
    RidgeModel,
    SensitivityModel,
)
from repro.learn.registry import (
    DEFAULT_MODEL_DIR,
    MODEL_DIR_ENV,
    REGISTRY_SCHEMA_VERSION,
    ModelRegistry,
    ModelResolutionError,
    artifact_id_of,
    default_model_dir,
    load_model,
)

__all__ = [
    # features
    "AUX_NAMES",
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "LABEL_NAMES",
    "FeatureExtractor",
    # dataset
    "DATASET_SCHEMA_VERSION",
    "Dataset",
    "DatasetError",
    "dataset_hash",
    "extract_dataset",
    "extract_rows",
    "load_dataset",
    "save_dataset",
    # models
    "MODEL_KINDS",
    "MODEL_SCHEMA_VERSION",
    "FeatureScaler",
    "LearnedPredictor",
    "ModelError",
    "OnlineRLSModel",
    "RidgeModel",
    "SensitivityModel",
    # registry
    "DEFAULT_MODEL_DIR",
    "MODEL_DIR_ENV",
    "REGISTRY_SCHEMA_VERSION",
    "ModelRegistry",
    "ModelResolutionError",
    "artifact_id_of",
    "default_model_dir",
    "load_model",
    # evaluation
    "DEFAULT_BASELINES",
    "DesignEval",
    "EvalReport",
    "compare_designs",
    "evaluate_design",
    "offline_metrics",
]
