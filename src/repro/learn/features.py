"""The learned-predictor feature contract: one vector per (epoch, domain).

Everything a trained sensitivity model may consume at *serving* time
must be computable from the elapsed epoch's
:class:`~repro.gpu.gpu.EpochResult` alone (plus bounded per-domain
recurrence state) - no oracle, no PC tables, no future knowledge.
:class:`FeatureExtractor` is that computation, and it is deliberately
the **single implementation** shared by offline dataset extraction
(:mod:`repro.learn.dataset` decodes archived observation records and
replays them through an extractor) and online serving
(:class:`~repro.learn.models.LearnedPredictor` runs one inside
``observe``). Train/serve feature parity is therefore structural, not a
convention: the same floats, produced by the same arithmetic, in the
same order.

The feature vector (:data:`FEATURE_NAMES`, schema-versioned by
:data:`FEATURE_SCHEMA_VERSION`):

``bias``
    Constant 1.0 (the models' intercept channel).
``freq_ghz``
    The frequency the domain ran the elapsed epoch at.
``busy_frac`` / ``stall_frac``
    The domain's core-busy vs asynchronous-stall split of the epoch
    window (:meth:`~repro.gpu.cu.CuEpochStats.stall_breakdown` summed
    over the domain's CUs) - the paper's interval-analysis signal.
``committed`` / ``issued``
    Raw instruction counts over the domain (scale is handled by the
    model's stored feature scaler, never here).
``compute_frac`` / ``memory_frac``
    Instruction-mix shares of the committed count.
``loads`` / ``stores``
    Memory-operation counts.
``est_i0`` / ``est_slope``
    The reactive STALL estimator's sensitivity line for the elapsed
    epoch (the "prior sensitivity" feature): the learned model starts
    from the hand-built estimate and learns a correction.
``prev_committed`` / ``prev_freq_ghz``
    One epoch of recurrence: the previous epoch's commit count and
    frequency (first epoch: the current values, so the features are
    defined from epoch 0 without knowing the platform's reset state).

Dataset rows additionally carry **auxiliary** columns
(:data:`AUX_NAMES`): the elapsed epoch's oracle-true line and the
PC-table activity deltas of the *recording* design. These exist for
analysis and are stored in the ``.npz``, but models never train on them
- a served LEARNED design has no PC table and no oracle, so auxiliary
columns cannot be features without breaking parity.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import GpuConfig
from repro.core.estimators import StallModel
from repro.core.sensitivity import LinearSensitivity, aggregate

#: Bump when a feature is added/removed/reordered or changes meaning.
#: Model artifacts embed the version they were trained against and
#: refuse to serve under a different one.
FEATURE_SCHEMA_VERSION = 1

#: Serveable model inputs, in column order.
FEATURE_NAMES: Tuple[str, ...] = (
    "bias",
    "freq_ghz",
    "busy_frac",
    "stall_frac",
    "committed",
    "issued",
    "compute_frac",
    "memory_frac",
    "loads",
    "stores",
    "est_i0",
    "est_slope",
    "prev_committed",
    "prev_freq_ghz",
)

#: Dataset-only columns (never model inputs; see module docstring).
AUX_NAMES: Tuple[str, ...] = (
    "truth_i0",
    "truth_slope",
    "pc_lookups",
    "pc_hits",
    "pc_updates",
    "pc_evictions",
)

#: Regression targets: the *next* epoch's true sensitivity line.
LABEL_NAMES: Tuple[str, ...] = ("label_i0", "label_slope")


class FeatureExtractor:
    """Stateful per-domain feature computation over an epoch sequence.

    Feed epochs strictly in execution order via :meth:`observe`; the
    one-epoch recurrence state (``prev_committed`` / ``prev_freq_ghz``)
    makes call order part of the contract.
    """

    def __init__(self, config: GpuConfig, f_lo_ghz: float, f_hi_ghz: float) -> None:
        self.config = config
        self.f_lo_ghz = f_lo_ghz
        self.f_hi_ghz = f_hi_ghz
        self._estimator = StallModel()
        #: Per domain: (committed, freq_ghz) of the previous epoch.
        self._prev: List[Optional[Tuple[float, float]]] = [None] * config.n_domains

    @property
    def n_features(self) -> int:
        return len(FEATURE_NAMES)

    def observe(self, result) -> List[List[float]]:
        """Feature vectors for every domain of one elapsed epoch."""
        cfg = self.config
        per = cfg.cus_per_domain
        duration = result.duration_ns
        out: List[List[float]] = []
        for d in range(cfg.n_domains):
            f = float(result.frequencies_ghz[d])
            busy = 0.0
            committed = issued = compute = memory = loads = stores = 0
            cu_ids = range(d * per, (d + 1) * per)
            for cu_id in cu_ids:
                stats = result.cu_stats[cu_id]
                busy += stats.stall_breakdown(duration)["busy_ns"]
                committed += stats.committed
                issued += stats.issued
                compute += stats.committed_compute
                memory += stats.committed_memory
                loads += stats.loads
                stores += stats.stores
            window = duration * per
            busy_frac = busy / window if window > 0 else 0.0
            est: LinearSensitivity = aggregate(
                self._estimator.estimate_cu(
                    result, cu_id, f, self.f_lo_ghz, self.f_hi_ghz, cfg
                )
                for cu_id in cu_ids
            )
            prev = self._prev[d]
            prev_committed, prev_f = prev if prev is not None else (float(committed), f)
            out.append([
                1.0,
                f,
                busy_frac,
                1.0 - busy_frac,
                float(committed),
                float(issued),
                compute / committed if committed > 0 else 0.0,
                memory / committed if committed > 0 else 0.0,
                float(loads),
                float(stores),
                est.i0,
                est.slope,
                prev_committed,
                prev_f,
            ])
            self._prev[d] = (float(committed), f)
        return out


__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "FEATURE_NAMES",
    "AUX_NAMES",
    "LABEL_NAMES",
    "FeatureExtractor",
]
