"""Trainable sensitivity models + the predictor that serves them.

Two numpy-only, bit-reproducible learners, both regressing the paper's
linear phase model ``I(f) = i0 + slope * f`` from the serveable feature
vector (:mod:`repro.learn.features`):

:class:`RidgeModel`
    Offline closed-form ridge regression, features -> next-epoch oracle
    line ``(i0, slope)``. Trained once from an extracted dataset;
    frozen at serving time.

:class:`OnlineRLSModel`
    Recursive least squares in the style of Gupta et al.
    (arXiv:2003.11740): regress *realised commits* on
    ``psi = [z, z * f]`` so the fitted theta decomposes into an
    ``I(f)`` line per feature vector. Because the regression target is
    just the commit counter, the model keeps updating **online** while
    serving - one rank-1 RLS update per epoch, off the decision path,
    and no oracle required.

Both serialise to pure-JSON payloads (shortest-repr floats round-trip
IEEE binary64 exactly), so a registry artifact reloads to bit-identical
weights and two trainings from the same dataset + seed hash
identically.

:class:`LearnedPredictor` adapts a trained model to the existing
:class:`~repro.core.predictors.Predictor` ABC: it runs the shared
:class:`~repro.learn.features.FeatureExtractor` online, predicts one
line per domain, and (for RLS) closes the loop with the commits the
prediction actually realised. It needs neither elapsed nor future
oracle truth - counters in, frequencies out, like the deployable
designs in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import GpuConfig
from repro.core.predictors import ObserveContext, Predictor
from repro.core.sensitivity import LinearSensitivity
from repro.gpu.gpu import EpochResult
from repro.learn.features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    FeatureExtractor,
)

#: Bump when model payload layout changes meaning.
MODEL_SCHEMA_VERSION = 1


class ModelError(ValueError):
    """A model payload or training input is unusable."""


class FeatureScaler:
    """Per-column standardisation, stored with the model.

    Near-constant columns (std < 1e-12) pass through untouched
    (mean 0, scale 1) so the constant ``bias`` feature survives
    centering instead of collapsing to zero.
    """

    def __init__(self, mean: Sequence[float], scale: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        self.scale = np.asarray(scale, dtype=np.float64)
        if self.mean.shape != self.scale.shape:
            raise ModelError("scaler mean/scale shape mismatch")

    @classmethod
    def fit(cls, features: np.ndarray) -> "FeatureScaler":
        x = np.asarray(features, dtype=np.float64)
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        constant = std < 1e-12
        mean[constant] = 0.0
        std[constant] = 1.0
        return cls(mean, std)

    def transform(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        return (x - self.mean) / self.scale

    def to_payload(self) -> Dict[str, List[float]]:
        return {"mean": self.mean.tolist(), "scale": self.scale.tolist()}

    @classmethod
    def from_payload(cls, payload: Dict[str, Sequence[float]]) -> "FeatureScaler":
        return cls(payload["mean"], payload["scale"])


class SensitivityModel:
    """Common surface: batch prediction, single-line prediction,
    optional online update, JSON payload round-trip."""

    kind: str = "abstract"

    def __init__(self, scaler: FeatureScaler, seed: int) -> None:
        self.scaler = scaler
        self.seed = int(seed)

    # -- serving -------------------------------------------------------
    def predict_rows(self, features: np.ndarray) -> np.ndarray:
        """(n, F) features -> (n, 2) array of (i0, slope)."""
        raise NotImplementedError

    def predict_line(self, phi: Sequence[float]) -> LinearSensitivity:
        row = self.predict_rows(np.asarray([phi], dtype=np.float64))[0]
        return LinearSensitivity(float(row[0]), float(row[1]))

    def update(self, phi: Sequence[float], f_ghz: float, commits: float) -> None:
        """Digest one realised (features, frequency, commits) sample.

        No-op for frozen offline models.
        """

    # -- persistence ---------------------------------------------------
    def _payload_params(self) -> Dict[str, object]:
        raise NotImplementedError

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema_version": MODEL_SCHEMA_VERSION,
            "kind": self.kind,
            "feature_schema_version": FEATURE_SCHEMA_VERSION,
            "feature_names": list(FEATURE_NAMES),
            "seed": self.seed,
            "scaler": self.scaler.to_payload(),
            "params": self._payload_params(),
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "SensitivityModel":
        if payload.get("schema_version") != MODEL_SCHEMA_VERSION:
            raise ModelError(
                f"model schema {payload.get('schema_version')!r} unsupported "
                f"(this build reads {MODEL_SCHEMA_VERSION})"
            )
        if payload.get("feature_schema_version") != FEATURE_SCHEMA_VERSION:
            raise ModelError(
                f"model trained against feature schema "
                f"{payload.get('feature_schema_version')!r}; this build "
                f"serves schema {FEATURE_SCHEMA_VERSION} - retrain"
            )
        kind = payload.get("kind")
        cls = MODEL_KINDS.get(str(kind))
        if cls is None:
            raise ModelError(
                f"unknown model kind {kind!r}; known: "
                + ", ".join(sorted(MODEL_KINDS))
            )
        return cls._from_payload(payload)

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "SensitivityModel":
        raise NotImplementedError


class RidgeModel(SensitivityModel):
    """Closed-form ridge regression onto the next-epoch oracle line."""

    kind = "ridge"

    def __init__(
        self,
        scaler: FeatureScaler,
        weights: np.ndarray,
        l2: float,
        seed: int,
    ) -> None:
        super().__init__(scaler, seed)
        self.weights = np.asarray(weights, dtype=np.float64)  # (F, 2)
        self.l2 = float(l2)
        if self.weights.shape != (len(self.scaler.mean), 2):
            raise ModelError("ridge weight shape mismatch")

    @classmethod
    def train(
        cls,
        features: np.ndarray,
        labels: np.ndarray,
        l2: float = 1e-3,
        seed: int = 0,
    ) -> "RidgeModel":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or y.shape != (x.shape[0], 2):
            raise ModelError("ridge expects (n, F) features and (n, 2) labels")
        if x.shape[0] < 2:
            raise ModelError("need at least two training rows")
        scaler = FeatureScaler.fit(x)
        z = scaler.transform(x)
        n, n_feat = z.shape
        gram = z.T @ z + l2 * n * np.eye(n_feat)
        weights = np.linalg.solve(gram, z.T @ y)
        return cls(scaler, weights, l2, seed)

    def predict_rows(self, features: np.ndarray) -> np.ndarray:
        return self.scaler.transform(features) @ self.weights

    def _payload_params(self) -> Dict[str, object]:
        return {"l2": self.l2, "weights": self.weights.tolist()}

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "RidgeModel":
        params = payload["params"]
        return cls(
            FeatureScaler.from_payload(payload["scaler"]),
            np.asarray(params["weights"], dtype=np.float64),
            float(params["l2"]),
            int(payload.get("seed", 0)),
        )


class OnlineRLSModel(SensitivityModel):
    """Recursive-least-squares commit model, updatable while serving.

    Regresses ``commits / y_scale = theta . psi`` with
    ``psi = [z, z * f]`` (z the scaled features, f the frequency the
    commits were realised at). The line for a feature vector falls out
    of the same theta::

        i0    = y_scale * (theta[:F] . z)
        slope = y_scale * (theta[F:] . z)

    Exponential forgetting keeps the fit tracking phase drift; each
    update is O(F^2) on a 2F-dim state - microseconds of work, done
    once per epoch after the decision is already out the door.
    """

    kind = "rls"

    def __init__(
        self,
        scaler: FeatureScaler,
        theta: np.ndarray,
        p_matrix: np.ndarray,
        forgetting: float,
        y_scale: float,
        seed: int,
    ) -> None:
        super().__init__(scaler, seed)
        self.theta = np.asarray(theta, dtype=np.float64)
        self.p_matrix = np.asarray(p_matrix, dtype=np.float64)
        self.forgetting = float(forgetting)
        self.y_scale = float(y_scale)
        n_feat = len(self.scaler.mean)
        if self.theta.shape != (2 * n_feat,):
            raise ModelError("RLS theta shape mismatch")
        if self.p_matrix.shape != (2 * n_feat, 2 * n_feat):
            raise ModelError("RLS covariance shape mismatch")
        if not 0.5 < self.forgetting <= 1.0:
            raise ModelError("forgetting factor must be in (0.5, 1.0]")
        if self.y_scale <= 0.0:
            raise ModelError("y_scale must be positive")

    @classmethod
    def train(
        cls,
        features: np.ndarray,
        next_f: np.ndarray,
        next_commits: np.ndarray,
        forgetting: float = 0.98,
        p0: float = 100.0,
        seed: int = 0,
        labels: Optional[np.ndarray] = None,
        anchor_freqs: Optional[Sequence[float]] = None,
    ) -> "OnlineRLSModel":
        """Pretrain by streaming the rows in their recorded order.

        The same update rule runs at serve time, so pretraining is
        literally a replay of deployment against the archived epochs.

        Commits-only replay cannot identify the slope: each archived
        phase was realised at one frequency, so ``[z, z*f]`` is
        confounded with ``z`` alone and the closed loop extrapolates
        badly once its own decisions leave the recorded frequencies.
        When ``labels`` (the oracle lines, available offline) and
        ``anchor_freqs`` are given, each row first contributes two
        synthetic samples - the label line evaluated at the anchor
        frequencies, typically the platform's f_min/f_max - pinning
        slope across the whole actionable range. Serving updates remain
        commits-only; the anchors are a pretraining prior.
        """
        x = np.asarray(features, dtype=np.float64)
        freqs = np.asarray(next_f, dtype=np.float64)
        commits = np.asarray(next_commits, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ModelError("need at least two (n, F) training rows")
        if freqs.shape != (x.shape[0],) or commits.shape != (x.shape[0],):
            raise ModelError("next_f / next_commits must be (n,) vectors")
        lines = None
        if labels is not None:
            lines = np.asarray(labels, dtype=np.float64)
            if lines.shape != (x.shape[0], 2):
                raise ModelError("labels must be (n, 2) lines")
            if not anchor_freqs or len(anchor_freqs) < 1:
                raise ModelError("labels need anchor_freqs to evaluate at")
        scaler = FeatureScaler.fit(x)
        y_scale = max(1.0, float(np.max(np.abs(commits))))
        n_feat = x.shape[1]
        model = cls(
            scaler,
            np.zeros(2 * n_feat),
            p0 * np.eye(2 * n_feat),
            forgetting,
            y_scale,
            seed,
        )
        for i, (phi, f, c) in enumerate(zip(x, freqs, commits)):
            if lines is not None:
                i0, slope = lines[i]
                for fa in anchor_freqs:
                    model.update(phi, float(fa), max(0.0, i0 + slope * fa))
            model.update(phi, float(f), float(c))
        return model

    def _psi(self, phi: Sequence[float], f_ghz: float) -> np.ndarray:
        z = self.scaler.transform(np.asarray([phi], dtype=np.float64))[0]
        return np.concatenate([z, z * f_ghz])

    def update(self, phi: Sequence[float], f_ghz: float, commits: float) -> None:
        psi = self._psi(phi, f_ghz)
        y = float(commits) / self.y_scale
        lam = self.forgetting
        p_psi = self.p_matrix @ psi
        gain = p_psi / (lam + psi @ p_psi)
        self.theta = self.theta + gain * (y - self.theta @ psi)
        self.p_matrix = (self.p_matrix - np.outer(gain, p_psi)) / lam
        # Keep the covariance exactly symmetric so long update streams
        # cannot drift into asymmetry-induced divergence.
        self.p_matrix = 0.5 * (self.p_matrix + self.p_matrix.T)

    def predict_rows(self, features: np.ndarray) -> np.ndarray:
        z = self.scaler.transform(features)
        n_feat = z.shape[1]
        i0 = self.y_scale * (z @ self.theta[:n_feat])
        slope = self.y_scale * (z @ self.theta[n_feat:])
        return np.stack([i0, slope], axis=1)

    def _payload_params(self) -> Dict[str, object]:
        return {
            "forgetting": self.forgetting,
            "y_scale": self.y_scale,
            "theta": self.theta.tolist(),
            "p_matrix": self.p_matrix.tolist(),
        }

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "OnlineRLSModel":
        params = payload["params"]
        return cls(
            FeatureScaler.from_payload(payload["scaler"]),
            np.asarray(params["theta"], dtype=np.float64),
            np.asarray(params["p_matrix"], dtype=np.float64),
            float(params["forgetting"]),
            float(params["y_scale"]),
            int(payload.get("seed", 0)),
        )


MODEL_KINDS: Dict[str, type] = {
    RidgeModel.kind: RidgeModel,
    OnlineRLSModel.kind: OnlineRLSModel,
}


class LearnedPredictor(Predictor):
    """Serve a trained :class:`SensitivityModel` as a DVFS predictor.

    Deployable-class design: consumes only the elapsed epoch's counters
    (via the shared :class:`FeatureExtractor`), never oracle truth. For
    online-capable models, each ``observe`` first closes the previous
    epoch's loop - the commits just realised at the frequency the
    controller chose are exactly one RLS sample - then predicts.
    """

    name = "LEARNED"

    def __init__(self, model: SensitivityModel, config: GpuConfig) -> None:
        self.model = model
        self.config = config
        self._extractor: Optional[FeatureExtractor] = None
        self._prev_phi: List[Optional[List[float]]] = [None] * config.n_domains
        self._last: List[Optional[LinearSensitivity]] = [None] * config.n_domains

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        if self._extractor is None:
            self._extractor = FeatureExtractor(
                ctx.config, ctx.f_lo_ghz, ctx.f_hi_ghz
            )
        per = self.config.cus_per_domain
        phis = self._extractor.observe(result)
        for d in range(self.config.n_domains):
            prev = self._prev_phi[d]
            if prev is not None:
                realized = sum(
                    result.cu_stats[cu].committed
                    for cu in range(d * per, (d + 1) * per)
                )
                self.model.update(
                    prev, float(result.frequencies_ghz[d]), float(realized)
                )
            self._prev_phi[d] = phis[d]
            self._last[d] = self.model.predict_line(phis[d])

    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        return list(self._last)


__all__ = [
    "MODEL_SCHEMA_VERSION",
    "MODEL_KINDS",
    "ModelError",
    "FeatureScaler",
    "SensitivityModel",
    "RidgeModel",
    "OnlineRLSModel",
    "LearnedPredictor",
]
