"""CMOS power model: V(f) map, dynamic & leakage power, IVR efficiency.

The paper uses a proprietary AMD power model validated against a Radeon
VII. This module substitutes the standard analytic model the paper's own
motivation rests on (``P = C V^2 A f``, Section 1):

* **Voltage map** - each frequency on the DVFS grid requires a voltage;
  we use a linear V(f) over the IVR's 1.3-2.2 GHz range (voltage-adaptive
  FLLs make f track V, Section 2.1), giving the cubic-ish P(f) the paper
  exploits.
* **Dynamic power** - scales with V^2 * f and the measured activity
  factor of the epoch (issue-slot occupancy), so stalled CUs burn less.
* **Leakage** - weakly voltage-dependent across the narrow IVR range
  (Section 5: "leakage ... does not significantly vary"), scaled by a
  temperature factor.
* **IVR efficiency** - conversion losses rise away from the regulator's
  peak-efficiency voltage; delivered power is divided by the efficiency.

Power units are arbitrary but consistent; every paper metric we reproduce
(ED^nP ratios, % energy savings, frequency residency) is relative, so the
absolute scale cancels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PowerConfig


def voltage_for_frequency(cfg: PowerConfig, f_ghz: float) -> float:
    """Supply voltage required to sustain ``f_ghz``, linear V(f) map.

    Clamped at the endpoints: frequencies outside the calibrated range
    reuse the boundary voltage (the IVR cannot go lower/higher).
    """
    if f_ghz <= cfg.f_min_ghz:
        return cfg.v_min
    if f_ghz >= cfg.f_max_ghz:
        return cfg.v_max
    frac = (f_ghz - cfg.f_min_ghz) / (cfg.f_max_ghz - cfg.f_min_ghz)
    return cfg.v_min + frac * (cfg.v_max - cfg.v_min)


@dataclass(frozen=True)
class PowerModel:
    """Evaluates CU-domain and memory-subsystem power."""

    config: PowerConfig

    def voltage(self, f_ghz: float) -> float:
        return voltage_for_frequency(self.config, f_ghz)

    def ivr_efficiency(self, v: float) -> float:
        """Regulator efficiency at output voltage ``v`` (inverted-U curve)."""
        cfg = self.config
        span = max(abs(cfg.ivr_peak_voltage - cfg.v_min), abs(cfg.v_max - cfg.ivr_peak_voltage))
        if span <= 0:
            return cfg.ivr_efficiency_peak
        distance = min(1.0, abs(v - cfg.ivr_peak_voltage) / span)
        return cfg.ivr_efficiency_peak - distance * (
            cfg.ivr_efficiency_peak - cfg.ivr_efficiency_floor
        )

    def dynamic_power_per_cu(self, f_ghz: float, activity: float) -> float:
        """Dynamic power of one CU at frequency ``f_ghz``.

        ``activity`` is the epoch's issue-slot occupancy in [0, 1]; an
        idle-activity floor models the clock tree and always-on logic.
        """
        cfg = self.config
        v = self.voltage(f_ghz)
        a = cfg.idle_activity + (1.0 - cfg.idle_activity) * min(max(activity, 0.0), 1.0)
        return cfg.c_eff_per_cu * v * v * a * f_ghz

    def leakage_power_per_cu(self, f_ghz: float) -> float:
        cfg = self.config
        v = self.voltage(f_ghz)
        ratio = (v / cfg.v_max) ** cfg.leakage_voltage_exponent
        return cfg.leakage_per_cu_at_vmax * ratio * cfg.temperature_factor

    def cu_power(self, f_ghz: float, activity: float) -> float:
        """Total wall power drawn for one CU, including IVR losses."""
        v = self.voltage(f_ghz)
        consumed = self.dynamic_power_per_cu(f_ghz, activity) + self.leakage_power_per_cu(f_ghz)
        return consumed / self.ivr_efficiency(v)

    def memory_power(self, n_l2_banks: int) -> float:
        """Constant power of the fixed-frequency memory subsystem."""
        return self.config.memory_power_per_bank * n_l2_banks

    def transition_energy(self, n_transitions: int) -> float:
        """Energy charged for ``n_transitions`` V/f changes."""
        return self.config.transition_energy * n_transitions


__all__ = ["PowerModel", "voltage_for_frequency"]
