"""Analytic GPU power/energy model (replaces the paper's in-house model).

Provides dynamic power via ``P = C_eff * V(f)^2 * A * f``, a weakly
voltage-dependent leakage term, an IVR conversion-efficiency curve, and
per-epoch energy accounting including V/f transition energy.
"""

from repro.power.model import PowerModel, voltage_for_frequency
from repro.power.energy import EnergyAccountant, EnergyBreakdown, ed_n_p

__all__ = [
    "PowerModel",
    "voltage_for_frequency",
    "EnergyAccountant",
    "EnergyBreakdown",
    "ed_n_p",
]
