"""Per-epoch energy accounting and ED^nP metrics.

The :class:`EnergyAccountant` consumes :class:`~repro.gpu.gpu.EpochResult`
objects and accumulates energy per V/f domain plus the shared memory
subsystem. The final ``ED^nP`` of a run is ``E * D^n`` with ``E`` total
energy and ``D`` total elapsed time; the paper normalises these against a
static 1.7 GHz execution of the same workload (Figures 15-17).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import GpuConfig
from repro.gpu.gpu import EpochResult
from repro.power.model import PowerModel


def ed_n_p(energy: float, delay: float, n: int = 2) -> float:
    """Energy-Delay^n Product."""
    if energy < 0 or delay < 0:
        raise ValueError("energy and delay must be non-negative")
    return energy * delay**n


@dataclass
class EnergyBreakdown:
    """Cumulative energy of a run, by component."""

    cu_dynamic_and_leakage: float = 0.0
    memory: float = 0.0
    transitions: float = 0.0
    elapsed_ns: float = 0.0

    @property
    def total(self) -> float:
        return self.cu_dynamic_and_leakage + self.memory + self.transitions

    def _delay(self, delay_ns: Optional[float]) -> float:
        """Resolve the delay an ED^nP metric should use.

        Historically the zero-argument forms used the windowed
        ``elapsed_ns`` while :class:`~repro.dvfs.simulation.RunResult`
        used the completion-time ``delay_ns``, so the same run reported
        two different EDPs through public APIs. Callers must now say
        which delay they mean; the ambiguous zero-argument forms are
        deprecated (they keep the old ``elapsed_ns`` behaviour).
        """
        if delay_ns is not None:
            return delay_ns
        warnings.warn(
            "EnergyBreakdown.edp()/ed2p()/ednp() without an explicit delay "
            "use the windowed elapsed_ns, which differs from a run's "
            "completion delay (RunResult.delay_ns); pass delay_ns "
            "explicitly or use the RunResult metric properties",
            DeprecationWarning,
            stacklevel=3,
        )
        return self.elapsed_ns

    def edp(self, delay_ns: Optional[float] = None) -> float:
        return ed_n_p(self.total, self._delay(delay_ns), 1)

    def ed2p(self, delay_ns: Optional[float] = None) -> float:
        return ed_n_p(self.total, self._delay(delay_ns), 2)

    def ednp(self, n: int, delay_ns: Optional[float] = None) -> float:
        return ed_n_p(self.total, self._delay(delay_ns), n)


class EnergyAccountant:
    """Accumulates energy over epochs for a whole run."""

    def __init__(self, gpu_config: GpuConfig, power_model: PowerModel) -> None:
        self.gpu_config = gpu_config
        self.power = power_model
        self.breakdown = EnergyBreakdown()
        #: Per-epoch total power samples (profiling/inspection).
        self.power_trace: List[float] = []

    def epoch_activity(self, result: EpochResult, cu_id: int) -> float:
        """Issue-slot occupancy of a CU over the epoch, in [0, 1]."""
        f = result.frequencies_ghz[self._domain_of(cu_id)]
        cycles = result.duration_ns * f
        slots = cycles * self.gpu_config.issue_width
        if slots <= 0:
            return 0.0
        return min(1.0, result.cu_stats[cu_id].issued / slots)

    def _domain_of(self, cu_id: int) -> int:
        return cu_id // self.gpu_config.cus_per_domain

    def add_epoch(self, result: EpochResult) -> float:
        """Account one epoch; returns the energy it consumed."""
        dt = result.duration_ns
        cu_energy = 0.0
        for cu_id in range(self.gpu_config.n_cus):
            f = result.frequencies_ghz[self._domain_of(cu_id)]
            activity = self.epoch_activity(result, cu_id)
            cu_energy += self.power.cu_power(f, activity) * dt
        mem_energy = self.power.memory_power(self.gpu_config.memory.n_l2_banks) * dt
        trans_energy = self.power.transition_energy(result.transitions)

        self.breakdown.cu_dynamic_and_leakage += cu_energy
        self.breakdown.memory += mem_energy
        self.breakdown.transitions += trans_energy
        self.breakdown.elapsed_ns += dt
        epoch_total = cu_energy + mem_energy + trans_energy
        self.power_trace.append(epoch_total / dt if dt > 0 else 0.0)
        return epoch_total

    def add_epochs(self, results: Sequence[EpochResult]) -> float:
        return sum(self.add_epoch(r) for r in results)


__all__ = ["EnergyAccountant", "EnergyBreakdown", "ed_n_p"]
