"""Parallel experiment runtime: sweep executor, result cache, instrumentation.

* :class:`~repro.runtime.executor.SweepExecutor` fans independent
  (workload x design x config) simulation cells across a process pool
  with deterministic ordering and serial fallback.
* :class:`~repro.runtime.cache.ResultCache` memoises cell results on
  disk, keyed by a content hash of everything the result depends on.
* :class:`~repro.runtime.progress.SweepInstrumentation` records per-cell
  wall time, cache hit/miss counts and worker utilisation.
* :mod:`repro.runtime.profiling` collects the simulator's hot-path event
  counters (waves scanned, clones taken, bytes snapshotted, ...) and
  offers an opt-in ``cProfile`` wrapper.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
    task_key,
)
from repro.runtime.executor import SweepExecutor, SweepTask, SweepTimeoutError, run_task
from repro.runtime.profiling import (
    HotPathCounters,
    collect_hotpath,
    format_hotpath,
    maybe_cprofile,
)
from repro.runtime.progress import CellRecord, SweepInstrumentation

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CellRecord",
    "HotPathCounters",
    "ResultCache",
    "SweepExecutor",
    "SweepInstrumentation",
    "SweepTask",
    "SweepTimeoutError",
    "collect_hotpath",
    "default_cache_dir",
    "format_hotpath",
    "maybe_cprofile",
    "run_task",
    "task_key",
]
