"""Parallel experiment runtime: sweep executor, result cache, instrumentation.

* :class:`~repro.runtime.executor.SweepExecutor` fans independent
  (workload x design x config) simulation cells across a process pool
  with deterministic ordering and serial fallback.
* :class:`~repro.runtime.cache.ResultCache` memoises cell results on
  disk, keyed by a content hash of everything the result depends on.
* :class:`~repro.runtime.progress.SweepInstrumentation` records per-cell
  wall time, cache hit/miss counts and worker utilisation.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
    task_key,
)
from repro.runtime.executor import SweepExecutor, SweepTask, SweepTimeoutError, run_task
from repro.runtime.progress import CellRecord, SweepInstrumentation

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CellRecord",
    "ResultCache",
    "SweepExecutor",
    "SweepInstrumentation",
    "SweepTask",
    "SweepTimeoutError",
    "default_cache_dir",
    "run_task",
    "task_key",
]
