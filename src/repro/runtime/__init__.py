"""Parallel experiment runtime: sweep executor, cache, fault tolerance.

* :class:`~repro.runtime.executor.SweepExecutor` fans independent
  (workload x design x config) simulation cells across a process pool
  with deterministic ordering, serial fallback, and per-cell retries
  governed by a :class:`~repro.runtime.executor.RetryPolicy`
  (jitterless exponential backoff, automatic in-process final attempt).
* :class:`~repro.runtime.cache.ResultCache` memoises cell results on
  disk, keyed by a content hash of everything the result depends on;
  writes are fsync'd and atomically renamed, so a mid-write kill can
  never leave a torn entry.
* :class:`~repro.runtime.checkpoint.SweepCheckpoint` durably records
  completed cell keys in a crash-safe JSONL manifest so an interrupted
  sweep resumes where it stopped (``repro figure --resume``).
* :mod:`repro.runtime.faults` injects deterministic crash/hang/corrupt
  faults (``REPRO_FAULT_PLAN``) so tests and CI can prove the retry and
  resume machinery end to end.
* :class:`~repro.runtime.progress.SweepInstrumentation` records per-cell
  wall time, cache hit/miss counts, retries, failures, resumed cells and
  worker utilisation.
* :mod:`repro.runtime.profiling` collects the simulator's hot-path event
  counters (waves scanned, clones taken, bytes snapshotted, ...) and
  offers an opt-in ``cProfile`` wrapper.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
    task_key,
)
from repro.runtime.checkpoint import SweepCheckpoint, default_checkpoint_path
from repro.runtime.distributed import (
    DEFAULT_BROKER_PORT,
    LeaseExpired,
    SweepBroker,
    SweepWorker,
    WorkerError,
    WorkerSummary,
)
from repro.runtime.executor import (
    NO_RETRY,
    FailedCell,
    RetryPolicy,
    SweepExecutor,
    SweepTask,
    SweepTimeoutError,
    run_task,
)
from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    CorruptResult,
    CorruptResultError,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_fault_plan,
)
from repro.runtime.profiling import (
    HotPathCounters,
    collect_hotpath,
    format_hotpath,
    maybe_cprofile,
)
from repro.runtime.progress import CellRecord, SweepInstrumentation

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_BROKER_PORT",
    "DEFAULT_CACHE_DIR",
    "FAULT_PLAN_ENV",
    "NO_RETRY",
    "CellRecord",
    "CorruptResult",
    "CorruptResultError",
    "FailedCell",
    "FaultPlan",
    "FaultSpec",
    "HotPathCounters",
    "InjectedFaultError",
    "LeaseExpired",
    "ResultCache",
    "RetryPolicy",
    "SweepBroker",
    "SweepCheckpoint",
    "SweepExecutor",
    "SweepInstrumentation",
    "SweepTask",
    "SweepTimeoutError",
    "SweepWorker",
    "WorkerError",
    "WorkerSummary",
    "active_fault_plan",
    "collect_hotpath",
    "default_cache_dir",
    "default_checkpoint_path",
    "format_hotpath",
    "maybe_cprofile",
    "run_task",
    "task_key",
]
