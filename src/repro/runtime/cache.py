"""On-disk result cache for sweep cells.

Every (workload x design x platform) simulation is deterministic, so its
:class:`~repro.dvfs.simulation.RunResult` can be reused as long as
nothing that feeds the simulation changed. The cache key is a SHA-256
content hash over a canonical JSON encoding of everything a cell depends
on:

* the full :class:`~repro.config.SimConfig` (GPU geometry, memory
  timing, DVFS grid/epoch, power model, seed),
* design name, workload name, work scale, ``max_epochs``,
* oracle sampling and accuracy-collection settings,
* a stable description of the objective (class name + constructor
  state),
* the package version plus a cache-format version.

Bumping ``repro.__version__`` therefore invalidates every entry, which
is the coarse-but-safe answer to "the simulator code changed".

Entries are pickled ``RunResult`` objects, one file per key, under the
cache directory (default ``.repro_cache/`` in the working directory;
``REPRO_CACHE_DIR`` overrides it). A corrupted, truncated or
unreadable entry is treated as a miss and recomputed - never an error.

Writes are **crash-safe**: each entry is pickled to a uniquely named
temporary file (key + pid + sequence, so concurrent writers of the same
key never collide), fsync'd, then atomically renamed over the final
path. A process killed mid-write leaves at worst a stray ``*.tmp`` file
- never a torn entry - and ``get`` only ever sees complete entries.
Stray temporaries from previous crashes are swept by ``put``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import time
from typing import Any, Dict, Mapping, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Bump when the on-disk entry layout or key recipe changes.
CACHE_FORMAT_VERSION = 1

#: Default cache directory name (created in the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _code_version() -> str:
    from repro import __version__

    return f"{__version__}/cache-v{CACHE_FORMAT_VERSION}"


def _canonical(obj: Any) -> Any:
    """Reduce a value to a deterministic JSON-encodable structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    # Derived/compiled objects declare their identity explicitly: e.g. a
    # CompiledProgram is a pure function of its source Program, so it
    # canonicalises as that program and cache keys are stable whether a
    # caller holds the source or the compiled form. (Also the hook for
    # slotted classes, which the vars() fallback below cannot handle.)
    key_fn = getattr(obj, "canonical_key", None)
    if key_fn is not None:
        return _canonical(key_fn())
    # Objects (e.g. objectives) reduce to class name + public state.
    state = {
        k: _canonical(v)
        for k, v in sorted(vars(obj).items())
        if not k.startswith("_")
    }
    return {"__class__": type(obj).__name__, **state}


def canonicalize(obj: Any) -> Any:
    """Public face of :func:`_canonical`.

    The telemetry schema embeds configs in this form (so a trace's
    ``sim_config`` and its ``config_hash`` are two views of one
    structure), and the decision service reconstructs configs from it.
    """
    return _canonical(obj)


def describe_objective(objective: Optional[Any]) -> Any:
    """Stable key fragment for an objective (None = driver default)."""
    return _canonical(objective) if objective is not None else None


def config_hash(config: Any) -> str:
    """SHA-256 content hash of a configuration object.

    Same canonicalisation as the cache key, so telemetry artifacts and
    cached results that describe the same platform carry the same hash.
    """
    blob = json.dumps(_canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def task_key(fields: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a cell's canonicalised input fields."""
    payload = _canonical(dict(fields))
    payload["code_version"] = _code_version()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_cache_dir() -> pathlib.Path:
    # `or`, not a default: REPRO_CACHE_DIR="" must mean "unset", else the
    # cache dir degenerates to "." and litters the working directory with
    # key-named .pkl files.
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class ResultCache:
    """One-file-per-key pickle store with hit/miss counters."""

    def __init__(self, cache_dir: Optional[PathLike] = None) -> None:
        self.dir = pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._seq = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.dir / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            # Missing, truncated, or stale-class entries all mean "recompute".
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        # Unique per (process, call): two workers caching the same key
        # concurrently each rename a *complete* file into place; a kill
        # mid-write orphans only this writer's temporary.
        self._seq += 1
        tmp = self.dir / f"{key}.{os.getpid()}.{self._seq}.tmp"
        try:
            with open(tmp, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except OSError:
            # Caching is best-effort; a read-only or full disk is not fatal.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self, max_age_s: float = 3600.0) -> None:
        """Remove temp files orphaned by crashed writers (best-effort).

        Only clearly stale temporaries are touched: another live writer's
        in-flight file is younger than the age floor.
        """
        cutoff = time.time() - max_age_s
        try:
            for tmp in self.dir.glob("*.tmp"):
                try:
                    if tmp.stat().st_mtime < cutoff:
                        tmp.unlink(missing_ok=True)
                except OSError:
                    continue
        except OSError:
            pass

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "canonicalize",
    "config_hash",
    "default_cache_dir",
    "describe_objective",
    "task_key",
]
