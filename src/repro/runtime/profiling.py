"""Zero-dependency hot-path profiling for the simulation engine.

The CI container has one CPU, so wall-clock time cannot demonstrate the
event engine's speedup. Instead, the hot objects count the work they do
(`plain int` attributes, bumped on the hot path, never read by the timing
model) and this module collects, merges and formats those counters:

* ``cycles``                 - scheduler steps simulated across all CUs.
* ``waves_scanned``          - wavefront readiness examinations. The
  reference engine examines every resident wave each cycle (issue scan
  plus the ``_next_wakeup`` scan); the event engine only pops waves that
  can actually issue. The ≥3x reduction is the tentpole's measured win.
* ``batched_instructions``   - instructions retired through the
  single-wave straight-line batch path (no per-cycle rescan at all).
* ``completions_delivered``  - memory completions delivered to waves.
* ``clones`` / ``clone_bytes``         - deep ``Gpu.clone()`` traffic.
* ``snapshots`` / ``snapshot_bytes``   - flat ``Gpu.snapshot()`` traffic.
* ``restores``               - snapshot replays into the scratch GPU.
* ``oracle_samples``         - fork-and-pre-execute rounds.
* ``oracle_cycles``          - scheduler steps spent inside pre-execution.

``RunResult.hotpath`` carries the collected dict out of a simulation;
``SweepInstrumentation`` aggregates it across sweep cells; the
``repro profile --hotpath`` CLI prints it for one workload x design.
An opt-in :func:`maybe_cprofile` wrapper covers the cases where a real
profile is wanted (``repro profile --cprofile FILE``).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields
from typing import Dict, Iterator, Mapping, Optional


@dataclass
class HotPathCounters:
    """A mergeable bundle of hot-path event counts."""

    cycles: int = 0
    waves_scanned: int = 0
    batched_instructions: int = 0
    completions_delivered: int = 0
    clones: int = 0
    clone_bytes: int = 0
    snapshots: int = 0
    snapshot_bytes: int = 0
    restores: int = 0
    oracle_samples: int = 0
    oracle_cycles: int = 0

    def merge(self, other: Mapping[str, int]) -> "HotPathCounters":
        """Add another counter mapping into this one (in place)."""
        for f in fields(self):
            inc = other.get(f.name, 0) if isinstance(other, Mapping) else getattr(other, f.name, 0)
            setattr(self, f.name, getattr(self, f.name) + int(inc))
        return self

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "HotPathCounters":
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in known})

    def to_registry(self, registry, prefix: str = "hotpath_") -> None:
        """Add these counts into a telemetry
        :class:`~repro.telemetry.metrics.MetricsRegistry` (the common
        sink the sweep instrumentation aggregates through)."""
        for f in fields(self):
            registry.inc(f"{prefix}{f.name}", getattr(self, f.name))


def collect_gpu(gpu) -> HotPathCounters:
    """Harvest the counters of one :class:`~repro.gpu.gpu.Gpu`."""
    out = HotPathCounters(
        clones=gpu.ctr_clones,
        clone_bytes=gpu.ctr_clone_bytes,
        snapshots=gpu.ctr_snapshots,
        snapshot_bytes=gpu.ctr_snapshot_bytes,
        restores=gpu.ctr_restores,
    )
    for cu in gpu.cus:
        out.cycles += cu.ctr_cycles
        out.waves_scanned += cu.ctr_waves_scanned
        out.batched_instructions += cu.ctr_batched
        out.completions_delivered += cu.ctr_completions
    return out


def collect_hotpath(gpu, sampler=None) -> Dict[str, int]:
    """Harvest main-GPU counters plus the oracle's scratch-side work.

    ``sampler`` is an :class:`~repro.dvfs.oracle.OracleSampler` (or None
    for designs without oracle truth). The oracle's restores happen on
    its scratch GPU, and its pre-executed cycles are reported separately
    as ``oracle_cycles`` so per-epoch fork cost stays visible.
    """
    out = collect_gpu(gpu)
    if sampler is not None:
        out.oracle_samples = getattr(sampler, "ctr_samples", 0)
        # Work done in discarded forks (reference clone-per-sample path,
        # or a retired scratch GPU), absorbed by the sampler.
        out.oracle_cycles += getattr(sampler, "ctr_fork_cycles", 0)
        out.waves_scanned += getattr(sampler, "ctr_fork_scans", 0)
        out.batched_instructions += getattr(sampler, "ctr_fork_batched", 0)
        out.completions_delivered += getattr(sampler, "ctr_fork_completions", 0)
        scratch = getattr(sampler, "_scratch", None)
        if scratch is not None:
            side = collect_gpu(scratch)
            out.oracle_cycles += side.cycles
            out.waves_scanned += side.waves_scanned
            out.batched_instructions += side.batched_instructions
            out.completions_delivered += side.completions_delivered
            out.restores += scratch.ctr_restores
    return out.as_dict()


def format_hotpath(counters: Mapping[str, int], title: str = "hot-path counters") -> str:
    """Render a counter mapping as the repo's standard table."""
    from repro.analysis.report import format_table

    rows = [[name, f"{int(value):,}"] for name, value in counters.items()]
    return format_table(["event", "count"], rows, title=title)


@contextlib.contextmanager
def maybe_cprofile(path: Optional[str]) -> Iterator[Optional[object]]:
    """Opt-in ``cProfile`` wrapper: a no-op when ``path`` is falsy.

    Usage::

        with maybe_cprofile(args.cprofile):
            run_the_workload()

    When ``path`` is given, profile stats are dumped there in the binary
    ``pstats`` format (inspect with ``python -m pstats <path>``).
    """
    if not path:
        yield None
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)


__all__ = [
    "HotPathCounters",
    "collect_gpu",
    "collect_hotpath",
    "format_hotpath",
    "maybe_cprofile",
]
