"""Sweep instrumentation: per-cell wall time, cache hits, utilisation.

The executor feeds one :class:`CellRecord` per (workload x design) cell
into a :class:`SweepInstrumentation`; :meth:`SweepInstrumentation.summary`
renders the aggregate through :mod:`repro.analysis.report` so figure
drivers and the CLI can show where a sweep spent its time and how well
the worker pool was used.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.log import get_logger
from repro.telemetry.metrics import SECONDS_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # fed duck-typed; keeps the import graph acyclic
    from repro.obs.drift import DriftMonitor

_log = get_logger("sweep")

#: How a cell's result was obtained.
SOURCE_CACHE = "cache"
SOURCE_SERIAL = "serial"
SOURCE_PARALLEL = "parallel"
#: Skipped because the checkpoint manifest proved it already completed.
SOURCE_RESUMED = "resumed"
#: Computed by a remote worker host (see repro.runtime.distributed).
SOURCE_REMOTE = "remote"

#: Sources that actually computed (everything else was loaded).
_COMPUTED_SOURCES = (SOURCE_SERIAL, SOURCE_PARALLEL, SOURCE_REMOTE)


@dataclass(frozen=True)
class CellRecord:
    """Outcome of one sweep cell."""

    label: str
    workload: str
    design: str
    #: Compute time of the cell itself (0 for cache hits).
    wall_s: float
    #: One of :data:`SOURCE_CACHE` / :data:`SOURCE_SERIAL` /
    #: :data:`SOURCE_PARALLEL` / :data:`SOURCE_RESUMED`.
    source: str
    #: Hot-path profiler counters of the cell's simulation (see
    #: :mod:`repro.runtime.profiling`). For cache hits these describe the
    #: work the cached run did originally, not work done by this sweep.
    hotpath: Optional[Dict[str, int]] = None
    #: How many tries the cell needed (1 = first attempt succeeded).
    attempts: int = 1


@dataclass
class SweepInstrumentation:
    """Accumulates cell records and events for one sweep."""

    name: str = "sweep"
    max_workers: int = 1
    cells: List[CellRecord] = field(default_factory=list)
    events: List[str] = field(default_factory=list)
    #: (label, failed attempt, error type) per retryable failure.
    retry_events: List[tuple] = field(default_factory=list)
    #: (label, attempts, error type) per cell that exhausted its budget.
    failed_cells: List[tuple] = field(default_factory=list)
    #: (label, worker, attempt, cause) per lease reclaimed from a dead
    #: or hung remote worker (see :mod:`repro.runtime.distributed`).
    reclaim_events: List[tuple] = field(default_factory=list)
    #: Common telemetry sink. Every recorded cell increments
    #: ``sweep_cells_total`` / ``sweep_cells_<source>``, observes its
    #: wall time in the ``sweep_cell_wall_s`` histogram, and folds its
    #: hot-path counters in under the ``hotpath_`` prefix. Registries
    #: from parallel workers merge associatively, so a parallel sweep's
    #: merged registry equals the serial run's (see test_runtime.py).
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Optional online drift monitor; fed one retry-rate observation per
    #: attempt outcome (True for a retryable failure, False for a
    #: computed success), so a sweep whose cells start failing
    #: persistently raises a ``retry_rate`` alert while it runs.
    drift: Optional["DriftMonitor"] = None
    _t_start: Optional[float] = None
    _t_end: Optional[float] = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        self._t_start = time.perf_counter()

    def finish(self) -> None:
        self._t_end = time.perf_counter()

    def record_cell(self, record: CellRecord) -> None:
        self.cells.append(record)
        self.registry.inc("sweep_cells_total")
        self.registry.inc(f"sweep_cells_{record.source}")
        self.registry.histogram("sweep_cell_wall_s", SECONDS_BUCKETS).observe(
            record.wall_s
        )
        if record.attempts > 1:
            self.registry.inc("sweep_cells_retried")
        if self.drift is not None and record.source in _COMPUTED_SOURCES:
            self.drift.observe_retry(False)
        _log.debug(
            "cell done",
            extra={"cell": record.label, "source": record.source,
                   "wall_s": round(record.wall_s, 4),
                   "attempts": record.attempts},
        )
        if record.hotpath:
            from repro.runtime.profiling import HotPathCounters

            HotPathCounters.from_dict(record.hotpath).to_registry(self.registry)

    def note(self, message: str) -> None:
        """Record a notable event (e.g. a fallback to serial execution)."""
        self.events.append(message)
        self.registry.inc("sweep_notes_total")
        _log.info(message)

    def record_retry(
        self, label: str, attempt: int, error: BaseException, backoff_s: float
    ) -> None:
        """A cell attempt failed retryably and will be re-run."""
        kind = type(error).__name__
        self.retry_events.append((label, attempt, kind))
        self.events.append(
            f"retry {label}: attempt {attempt} failed ({kind}); "
            f"backing off {backoff_s:.3f}s"
        )
        self.registry.inc("sweep_retries_total")
        if kind in ("InjectedFaultError", "CorruptResultError"):
            self.registry.inc("sweep_faults_injected")
        self.registry.histogram("sweep_retry_backoff_s", SECONDS_BUCKETS).observe(
            backoff_s
        )
        if self.drift is not None:
            self.drift.observe_retry(True)
        _log.warning(
            f"retrying {label}",
            extra={"cell": label, "attempt": attempt, "error": kind,
                   "backoff_s": round(backoff_s, 4)},
        )

    def record_reclaim(
        self, label: str, worker: str, attempt: int, cause: str
    ) -> None:
        """A leased cell was reclaimed from a dead or hung remote worker.

        Counted separately from retries (``sweep_cells_reclaimed`` vs
        ``sweep_retries_total``): a reclaim says a *worker* was lost, a
        retry says an *attempt* failed. The distributed backend records
        both for each reclaimed cell - the reclaim here, then the
        ordinary retry/exhaustion accounting for the charged attempt.
        """
        self.reclaim_events.append((label, worker, attempt, cause))
        self.events.append(
            f"reclaimed {label} from {worker} (attempt {attempt}: {cause})"
        )
        self.registry.inc("sweep_cells_reclaimed")
        _log.warning(
            f"reclaiming {label}",
            extra={"cell": label, "worker": worker, "attempt": attempt,
                   "cause": cause},
        )

    def record_failure(
        self, label: str, attempts: int, error: BaseException
    ) -> None:
        """A cell exhausted its retry budget."""
        kind = type(error).__name__
        self.failed_cells.append((label, attempts, kind))
        self.events.append(
            f"failed {label}: gave up after {attempts} attempt(s) ({kind})"
        )
        self.registry.inc("sweep_cells_failed")
        _log.error(
            f"cell {label} exhausted its retry budget",
            extra={"cell": label, "attempts": attempts, "error": kind},
        )

    # ------------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.source == SOURCE_CACHE)

    @property
    def cache_misses(self) -> int:
        return sum(1 for c in self.cells if c.source in _COMPUTED_SOURCES)

    @property
    def resumed(self) -> int:
        return sum(1 for c in self.cells if c.source == SOURCE_RESUMED)

    @property
    def retries(self) -> int:
        return len(self.retry_events)

    @property
    def reclaims(self) -> int:
        return len(self.reclaim_events)

    @property
    def failures(self) -> int:
        return len(self.failed_cells)

    @property
    def compute_s(self) -> float:
        """Summed per-cell compute time (across all workers)."""
        return sum(c.wall_s for c in self.cells)

    @property
    def wall_s(self) -> float:
        if self._t_start is None:
            return 0.0
        end = self._t_end if self._t_end is not None else time.perf_counter()
        return end - self._t_start

    @property
    def utilisation(self) -> float:
        """Fraction of the pool's capacity that did cell work, in [0, 1]."""
        capacity = self.wall_s * max(1, self.max_workers)
        if capacity <= 0:
            return 0.0
        return min(1.0, self.compute_s / capacity)

    def slowest_cells(self, n: int = 3) -> List[CellRecord]:
        return sorted(self.cells, key=lambda c: -c.wall_s)[:n]

    def hotpath_totals(self) -> Dict[str, int]:
        """Hot-path counters summed across all cells that reported them."""
        from repro.runtime.profiling import HotPathCounters

        totals = HotPathCounters()
        seen = False
        for c in self.cells:
            if c.hotpath:
                seen = True
                totals.merge(c.hotpath)
        return totals.as_dict() if seen else {}

    def summary(self) -> str:
        """Render the aggregate instrumentation as an ASCII table."""
        # Imported here: repro.analysis pulls in the experiment drivers,
        # which import this module (cycle at import time, fine at call time).
        from repro.analysis.report import format_table

        rows = [
            ["cells", len(self.cells)],
            ["cache hits", self.cache_hits],
            ["cache misses", self.cache_misses],
            ["workers", self.max_workers],
            ["wall time (s)", self.wall_s],
            ["compute time (s)", self.compute_s],
            ["worker utilisation", self.utilisation],
        ]
        if self.resumed:
            rows.append(["resumed from checkpoint", self.resumed])
        if self.retries:
            rows.append(["retries", self.retries])
        if self.reclaims:
            rows.append(["reclaimed leases", self.reclaims])
        if self.failures:
            rows.append(["failed cells", self.failures])
        for c in self.slowest_cells():
            rows.append([f"slowest: {c.label}", c.wall_s])
        for name, value in self.hotpath_totals().items():
            rows.append([f"hotpath: {name}", f"{value:,}"])
        for e in self.events:
            rows.append(["note", e])
        return format_table(
            ["metric", "value"], rows, title=f"Sweep instrumentation: {self.name}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cells": len(self.cells),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resumed": self.resumed,
            "retries": self.retries,
            "reclaims": self.reclaims,
            "failures": self.failures,
            "retry_events": [list(e) for e in self.retry_events],
            "failed_cells": [list(e) for e in self.failed_cells],
            "reclaim_events": [list(e) for e in self.reclaim_events],
            "workers": self.max_workers,
            "wall_s": self.wall_s,
            "compute_s": self.compute_s,
            "utilisation": self.utilisation,
            "hotpath": self.hotpath_totals(),
            "events": list(self.events),
            "metrics": self.registry.to_dict(),
        }


__all__ = [
    "CellRecord",
    "SweepInstrumentation",
    "SOURCE_CACHE",
    "SOURCE_SERIAL",
    "SOURCE_PARALLEL",
    "SOURCE_REMOTE",
    "SOURCE_RESUMED",
]
