"""Length-prefixed JSON framing shared by the service and the broker.

Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON (one object per frame).
Length-prefixed JSON keeps the protocol stdlib-only, debuggable with a
pipe and ``json.loads``, and language-agnostic for non-Python peers.

This module is the single home of the framing helpers; the online
decision service (:mod:`repro.service.protocol`) re-exports them, and
the distributed sweep broker (:mod:`repro.runtime.distributed`) speaks
the same frames between hosts.

Float fidelity
--------------
Python's ``json`` serialises floats with ``repr``, which round-trips
IEEE-754 binary64 exactly. Every quantity that crosses the wire
(frequencies, stall nanoseconds, commit counts, work scales) therefore
survives bit-for-bit - the foundation of both ``repro replay``'s
online-equals-offline check and the remote sweep backend's
results-bit-identical-to-serial guarantee.

Strict framing
--------------
The blocking helpers take ``strict=True`` to distinguish a torn frame
from a clean close: a peer that disconnects *between* frames yields
``None`` (orderly end of stream), while a disconnect mid-header or
mid-payload raises :class:`ProtocolError`. The broker and worker agent
loops run strict so a SIGKILLed peer or adversarial garbage surfaces as
a typed error immediately instead of being mistaken for a goodbye; the
decision service keeps the lenient behaviour (``strict=False``, any
disconnect reads as the session ending) it has always had.

Every read path is bounded: a length prefix beyond
:data:`MAX_FRAME_BYTES` is rejected before any allocation, and callers
are expected to arm socket timeouts, so no loop in this module can hang
on a stalled peer.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional

#: Ceiling on one frame's payload. A paper-scale observation (64 CUs x
#: 40 waves) is ~1 MB of JSON; 64 MB leaves room for much larger
#: platforms while bounding what a garbage length prefix can allocate.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A frame or payload that violates the wire protocol."""


# ----------------------------------------------------------------------
# Encoding

def encode_frame(message: Mapping[str, object]) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON."""
    payload = json.dumps(
        message, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return struct.pack(">I", len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, object]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# Asyncio stream reader (server side of the decision service)

async def read_frame(
    reader: asyncio.StreamReader, strict: bool = False
) -> Optional[Dict[str, object]]:
    """Read one frame; None on a clean (or, lenient, any) connection end."""
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if strict and exc.partial:
            raise ProtocolError(
                f"connection lost mid-header ({len(exc.partial)}/4 bytes)"
            ) from None
        return None
    except ConnectionError:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES} bytes"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        if strict:
            raise ProtocolError(
                f"connection lost mid-frame "
                f"({len(exc.partial)}/{length} payload bytes)"
            ) from None
        return None
    except ConnectionError:
        return None
    return decode_payload(payload)


# ----------------------------------------------------------------------
# Blocking sockets (clients, broker, worker)

def send_frame(sock: socket.socket, message: Mapping[str, object]) -> None:
    """Blocking-socket counterpart of the stream writer."""
    sock.sendall(encode_frame(message))


def _recv_upto(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes, or fewer if the peer closes first."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on *any* end-of-stream (lenient)."""
    data = _recv_upto(sock, n)
    return data if len(data) == n else None


def recv_frame(
    sock: socket.socket, strict: bool = False
) -> Optional[Dict[str, object]]:
    """Blocking read of one frame; None when the peer closed cleanly.

    With ``strict=True`` a disconnect inside a frame (torn header or
    torn payload - the signature of a killed peer) raises
    :class:`ProtocolError` instead of reading as a clean close.
    """
    header = _recv_upto(sock, 4)
    if not header:
        return None
    if len(header) < 4:
        if strict:
            raise ProtocolError(
                f"connection lost mid-header ({len(header)}/4 bytes)"
            )
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES} bytes"
        )
    payload = _recv_upto(sock, length)
    if len(payload) < length:
        if strict:
            raise ProtocolError(
                f"connection lost mid-frame "
                f"({len(payload)}/{length} payload bytes)"
            )
        return None
    return decode_payload(payload)


class ReceiveTimeout(Exception):
    """No complete frame arrived within the poll window (not an error:
    any partial bytes stay buffered and the next poll resumes)."""


class FrameReceiver:
    """Incremental frame decoder for a blocking socket with poll timeouts.

    ``recv_frame`` with a socket timeout cannot safely poll: a timeout
    that fires mid-frame discards the bytes already read and desyncs the
    stream. This receiver buffers across polls, so a server loop can
    wake every few hundred milliseconds to check a shutdown flag while
    a peer is silent (e.g. computing a long sweep cell between
    heartbeats) without ever tearing a frame it is half-way through.

    One receiver owns one socket's read side. ``recv(timeout_s)``
    returns the next frame, raises :class:`ReceiveTimeout` when none
    completed in the window, returns ``None`` on a clean close at a
    frame boundary, and raises :class:`ProtocolError` for everything a
    misbehaving peer can do: torn frames, oversized length prefixes,
    garbage JSON, a reset connection (strict mode).
    """

    _CHUNK = 65536

    def __init__(self, sock: socket.socket, strict: bool = True,
                 max_bytes: int = MAX_FRAME_BYTES) -> None:
        self._sock = sock
        self.strict = strict
        self.max_bytes = max_bytes
        self._buf = bytearray()
        self._frames: Deque[Dict[str, object]] = deque()
        self._eof = False

    def _parse(self) -> None:
        """Lift every complete frame out of the buffer."""
        while True:
            if len(self._buf) < 4:
                return
            length = int.from_bytes(self._buf[:4], "big")
            if length > self.max_bytes:
                raise ProtocolError(
                    f"frame length {length} exceeds {self.max_bytes} bytes"
                )
            if len(self._buf) < 4 + length:
                return
            payload = bytes(self._buf[4:4 + length])
            del self._buf[:4 + length]
            self._frames.append(decode_payload(payload))

    def recv(self, timeout_s: float) -> Optional[Dict[str, object]]:
        """Next frame within ``timeout_s`` seconds (see class docstring)."""
        deadline = time.monotonic() + timeout_s
        while True:
            if self._frames:
                return self._frames.popleft()
            if self._eof:
                if self._buf:
                    torn = len(self._buf)
                    self._buf.clear()
                    if self.strict:
                        raise ProtocolError(
                            f"connection closed mid-frame ({torn} stray bytes)"
                        )
                return None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReceiveTimeout()
            self._sock.settimeout(remaining)
            try:
                data = self._sock.recv(self._CHUNK)
            except socket.timeout:
                raise ReceiveTimeout() from None
            except ConnectionError as exc:
                if self.strict and self._buf:
                    raise ProtocolError(
                        f"connection reset mid-frame: {exc}"
                    ) from None
                self._eof = True
                self._buf.clear()
                continue
            if not data:
                self._eof = True
                continue
            self._buf.extend(data)
            self._parse()


__all__ = [
    "MAX_FRAME_BYTES",
    "FrameReceiver",
    "ProtocolError",
    "ReceiveTimeout",
    "decode_payload",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
]
