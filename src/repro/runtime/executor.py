"""Process-pool sweep executor for (workload x design x config) grids.

The paper parallelised its fork-and-pre-execute methodology across "10
processes" (Section 5.1); the same observation applies one level up:
every cell of an evaluation grid is an independent deterministic
simulation, so a figure's (workload x design) matrix fans out across
cores. :class:`SweepExecutor` does that with
:class:`concurrent.futures.ProcessPoolExecutor` while guaranteeing:

* **Deterministic ordering** - ``run(tasks)[i]`` is always the result of
  ``tasks[i]``, however the pool interleaved them.
* **Bit-identical results** - workers execute exactly the same
  :func:`run_task` code path as a serial run, so parallelism never
  changes a number. Retries re-run the same deterministic cell, so they
  never change a number either.
* **Fault tolerance** - a :class:`RetryPolicy` re-runs cells that
  crashed (:class:`~repro.runtime.faults.InjectedFaultError`, a broken
  pool), hung (:class:`SweepTimeoutError`) or returned corrupt payloads,
  with jitterless exponential backoff and an automatic in-process serial
  fallback on the final attempt. Exhausted cells either fail the sweep
  (``on_exhausted="raise"``) or land as :class:`FailedCell` markers
  (``on_exhausted="record"``) so one poisoned cell cannot lose a figure.
* **Checkpoint/resume** - with a
  :class:`~repro.runtime.checkpoint.SweepCheckpoint` attached, every
  completed cell is durably recorded; a resumed sweep skips completed
  cells by fetching them from the result cache.
* **Graceful degradation** - ``max_workers=1``, a single pending cell,
  or any pickling/pool failure falls back to in-process execution (the
  failure is recorded in the instrumentation, not raised).
* **No leaked workers** - when a cell times out or the sweep aborts,
  outstanding futures are cancelled and the pool is shut down with
  ``cancel_futures=True`` instead of being left to run to completion.

Cells are transparently memoised through
:class:`~repro.runtime.cache.ResultCache` when one is supplied.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.config import SimConfig

if TYPE_CHECKING:  # spans are optional; the import stays off the hot path
    from repro.obs.trace import Span, Tracer
    from repro.runtime.distributed import SweepBroker
from repro.core.objectives import Objective
from repro.runtime.cache import ResultCache, describe_objective, task_key
from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.faults import (
    CorruptResult,
    CorruptResultError,
    InjectedFaultError,
    active_fault_plan,
)
from repro.runtime.progress import (
    SOURCE_CACHE,
    SOURCE_PARALLEL,
    SOURCE_RESUMED,
    SOURCE_SERIAL,
    CellRecord,
    SweepInstrumentation,
)


class SweepTimeoutError(RuntimeError):
    """A sweep cell exceeded the per-task timeout."""


@dataclass(frozen=True)
class SweepTask:
    """One self-contained sweep cell.

    Carries names and config - not live simulator objects - so the task
    pickles cheaply to a worker process, which rebuilds the workload and
    controller locally via :func:`run_task`.
    """

    workload: str
    design: str
    config: SimConfig
    scale: float = 0.4
    max_epochs: int = 400
    oracle_sample_freqs: Optional[int] = 4
    collect_accuracy: bool = False
    objective: Optional[Objective] = None

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.design}"

    def cache_fields(self) -> Dict[str, object]:
        """Everything the simulation result depends on (see cache.py)."""
        return {
            "workload": self.workload,
            "design": self.design,
            "config": self.config,
            "scale": self.scale,
            "max_epochs": self.max_epochs,
            "oracle_sample_freqs": self.oracle_sample_freqs,
            "collect_accuracy": self.collect_accuracy,
            "objective": describe_objective(self.objective),
        }

    def key(self) -> str:
        return task_key(self.cache_fields())


def run_task(task: SweepTask, recorder=None, tracer=None):
    """Execute one cell to completion (runs in worker processes too).

    ``recorder`` is an optional
    :class:`~repro.telemetry.recorder.EpochTraceRecorder` attached to
    the simulation (used by ``repro trace`` / ``repro report``);
    ``tracer`` an optional :class:`~repro.obs.trace.Tracer` for span
    timing. Both are deliberately *not* part of :class:`SweepTask` -
    observability never enters the result-cache key because it never
    changes the result.
    """
    # Local imports keep worker start-up lean and avoid import cycles.
    from repro.dvfs.designs import make_controller
    from repro.dvfs.simulation import DvfsSimulation
    from repro.workloads import build_workload, workload

    kernels = build_workload(workload(task.workload), scale=task.scale)
    ctrl = make_controller(task.design, task.config, task.objective)
    sim = DvfsSimulation(
        kernels,
        ctrl,
        task.config,
        design_name=task.design,
        workload_name=task.workload,
        collect_accuracy=task.collect_accuracy,
        max_epochs=task.max_epochs,
        oracle_sample_freqs=task.oracle_sample_freqs,
        telemetry=recorder,
        tracer=tracer,
    )
    return sim.run()


def _run_task_timed(
    task: SweepTask, attempt: int = 1, span_ctx: Optional[Dict[str, str]] = None
) -> Tuple[object, float, Optional[List[Dict[str, object]]]]:
    """One attempt at one cell, with the active fault plan consulted.

    Runs in worker processes (which inherit ``REPRO_FAULT_PLAN`` from the
    parent's environment) and in-process for serial execution. A planned
    ``raise`` fault surfaces here as :class:`InjectedFaultError`; a
    ``hang`` fault sleeps before running (so the parent's timeout fires,
    or - untimed - the cell still produces its correct result); a
    ``corrupt`` fault returns a :class:`CorruptResult` marker the
    collector turns into :class:`CorruptResultError`.

    ``span_ctx`` is a wire-form :class:`~repro.obs.trace.SpanContext`
    (the parent's cell span). When given, a worker-side tracer joins
    that trace, the simulation's run/epoch/oracle spans nest under it,
    and the finished records travel back as the third element of the
    return value for the parent to :meth:`~repro.obs.trace.Tracer.adopt`
    - the same ship-back-and-merge pattern the sweep instrumentation
    uses. When None (tracing off) no tracer object is built and the
    third element is None.
    """
    t0 = time.perf_counter()
    tracer = None
    if span_ctx is not None:
        from repro.obs.trace import SpanContext, Tracer

        tracer = Tracer.from_context(SpanContext.from_wire(span_ctx))
    plan = active_fault_plan()
    if plan is not None:
        corrupt = plan.apply(task.label, attempt)
        if corrupt is not None:
            return (
                corrupt,
                time.perf_counter() - t0,
                tracer.collect() if tracer is not None else None,
            )
    result = run_task(task, tracer=tracer)
    return (
        result,
        time.perf_counter() - t0,
        tracer.collect() if tracer is not None else None,
    )


#: Exceptions that mean "this grid cannot cross the process boundary";
#: they demote the sweep to serial execution rather than failing it.
#: (A broken pool is handled by the retry machinery instead.)
_FALLBACK_ERRORS = (
    pickle.PicklingError,
    TypeError,
    AttributeError,
    ImportError,
    OSError,
)

#: ``RetryPolicy.on_exhausted`` values.
ON_EXHAUSTED_RAISE = "raise"
ON_EXHAUSTED_RECORD = "record"

#: ``SweepExecutor.backend`` values.
BACKEND_LOCAL = "local"
BACKEND_REMOTE = "remote"


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor treats a failed sweep cell.

    Backoff is *jitterless*: the delay before attempt ``n`` is exactly
    ``min(backoff_base_s * backoff_factor**(n - 2), backoff_max_s)``,
    and retries are re-submitted in task order, so a seeded fault plan
    produces the same schedule every run.
    """

    #: Total tries per cell (1 = fail on first error, the old behaviour).
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Exception types worth re-running the cell for. Everything else
    #: propagates (or demotes the sweep to serial, for pickling errors).
    retryable: Tuple[Type[BaseException], ...] = (
        InjectedFaultError,
        CorruptResultError,
        BrokenProcessPool,
        SweepTimeoutError,
    )
    #: Run the last attempt in-process instead of in the pool: immune to
    #: broken pools and queueing timeouts, the strongest guarantee the
    #: runtime can offer a repeatedly unlucky cell.
    serial_final_attempt: bool = True
    #: ``"raise"``: an exhausted cell fails the sweep (callers see the
    #: original error). ``"record"``: it becomes a :class:`FailedCell`
    #: in the results and the sweep carries on.
    on_exhausted: str = ON_EXHAUSTED_RAISE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.on_exhausted not in (ON_EXHAUSTED_RAISE, ON_EXHAUSTED_RECORD):
            raise ValueError(f"unknown on_exhausted {self.on_exhausted!r}")

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def delay_for(self, attempt: int) -> float:
        """Deterministic pre-attempt delay (attempt numbering from 1)."""
        if attempt <= 1:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 2),
            self.backoff_max_s,
        )


#: The pre-retry behaviour: any failure is immediately sweep-fatal.
NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass(frozen=True)
class FailedCell:
    """Placeholder result for a cell that exhausted its retry budget."""

    label: str
    key: str
    attempts: int
    error: str

    def __bool__(self) -> bool:  # failed cells are falsy in filters
        return False


@dataclass
class SweepExecutor:
    """Runs sweep cells across a process pool with caching and retries."""

    max_workers: int = 1
    cache: Optional[ResultCache] = None
    progress: SweepInstrumentation = field(default_factory=SweepInstrumentation)
    #: Per-cell timeout in seconds, measured from collection start
    #: (includes queueing); None disables the guard. Serial execution
    #: cannot be timed out (there is no process to abandon).
    task_timeout_s: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Durable manifest of completed cells (see checkpoint.py); cells
    #: recorded there are skipped on resume by loading from the cache.
    checkpoint: Optional[SweepCheckpoint] = None
    #: Optional span tracer (see :mod:`repro.obs.trace`). The sweep, each
    #: cell attempt, and - via context propagation into the workers -
    #: each run/epoch/oracle_sample become spans. None (the default)
    #: costs one ``is None`` branch per site and changes nothing.
    tracer: Optional["Tracer"] = None
    #: ``"local"`` (process pool / serial on this host) or ``"remote"``
    #: (cells served to worker hosts by the attached ``broker``). Cache
    #: hits and checkpoint resume are handled identically either way.
    backend: str = BACKEND_LOCAL
    #: The :class:`~repro.runtime.distributed.SweepBroker` serving the
    #: grid when ``backend="remote"``.
    broker: Optional["SweepBroker"] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.backend not in (BACKEND_LOCAL, BACKEND_REMOTE):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend == BACKEND_REMOTE and self.broker is None:
            raise ValueError('backend="remote" requires a broker')
        self.progress.max_workers = max(self.progress.max_workers, self.max_workers)
        self._sweep_span: Optional["Span"] = None

    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> List:
        """Execute every task; ``run(tasks)[i]`` belongs to ``tasks[i]``."""
        tasks = list(tasks)
        started_here = self.progress._t_start is None
        if started_here:
            self.progress.start()
        tr = self.tracer
        outer_span = self._sweep_span
        if tr is not None:
            self._sweep_span = tr.start(
                "sweep", parent=outer_span, n_tasks=len(tasks),
                max_workers=self.max_workers,
            )
        try:
            results: List[Optional[object]] = [None] * len(tasks)
            pending: List[int] = []
            for i, task in enumerate(tasks):
                if self._load_completed(task, results, i):
                    continue
                pending.append(i)

            if self.backend == BACKEND_REMOTE:
                if pending:
                    assert self.broker is not None
                    self.broker.serve(self, tasks, pending, results)
            elif self.max_workers <= 1 or len(pending) <= 1:
                self._run_serial(tasks, pending, results)
            else:
                self._run_parallel(tasks, pending, results)
            return results  # type: ignore[return-value]
        finally:
            if tr is not None:
                tr.finish(self._sweep_span)
                self._sweep_span = outer_span
            if started_here:
                self.progress.finish()

    # -- span helpers (no-ops when no tracer is attached) ---------------

    def _start_cell(
        self, task: SweepTask, attempt: int
    ) -> Tuple[Optional["Span"], Optional[Dict[str, str]]]:
        """Open a cell-attempt span; returns (span, wire context)."""
        tr = self.tracer
        if tr is None:
            return None, None
        span = tr.start(
            "cell", parent=self._sweep_span, label=task.label, attempt=attempt
        )
        return span, tr.context(span).to_wire()

    def _end_cell(
        self,
        span: Optional["Span"],
        status: str,
        worker_records: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        """Merge shipped worker spans and close the cell span."""
        if span is None:
            return
        tr = self.tracer
        if worker_records:
            tr.adopt(worker_records)
        if not span.done:
            tr.finish(span, status=status)

    def run_one(self, task: SweepTask):
        return self.run([task])[0]

    # ------------------------------------------------------------------

    def _load_completed(self, task: SweepTask, results: List, i: int) -> bool:
        """Fill ``results[i]`` from the checkpoint manifest or cache."""
        if self.cache is None:
            return False
        key = task.key()
        resumed = self.checkpoint is not None and key in self.checkpoint
        cached = self.cache.get(key)
        if cached is None:
            # A manifest entry without a cache entry (cache cleared,
            # version bump) is simply stale: re-run the cell.
            return False
        results[i] = cached
        source = SOURCE_RESUMED if resumed else SOURCE_CACHE
        if self.tracer is not None:
            self.tracer.event(
                "cell_cached", parent=self._sweep_span,
                label=task.label, source=source,
            )
        if self.checkpoint is not None:
            self.checkpoint.record(key, task.label, source)
        self.progress.record_cell(
            CellRecord(
                task.label, task.workload, task.design, 0.0, source,
                hotpath=getattr(cached, "hotpath", None),
            )
        )
        return True

    def _finish_cell(
        self,
        task: SweepTask,
        result: object,
        elapsed: float,
        source: str,
        attempts: int = 1,
    ) -> None:
        key = task.key()
        if self.cache is not None:
            self.cache.put(key, result)
        if self.checkpoint is not None:
            self.checkpoint.record(key, task.label, source, elapsed)
        self.progress.record_cell(
            CellRecord(
                task.label, task.workload, task.design, elapsed, source,
                hotpath=getattr(result, "hotpath", None),
                attempts=attempts,
            )
        )

    # -- failure bookkeeping -------------------------------------------

    def _exhausted(self, task: SweepTask, attempts: int, exc: BaseException):
        """A cell ran out of attempts: record it or fail the sweep."""
        self.progress.record_failure(task.label, attempts, exc)
        if self.retry.on_exhausted == ON_EXHAUSTED_RECORD:
            return FailedCell(task.label, task.key(), attempts, repr(exc))
        raise exc

    def _backoff(self, attempt: int) -> None:
        delay = self.retry.delay_for(attempt)
        if delay > 0:
            time.sleep(delay)

    # -- serial execution ----------------------------------------------

    def _run_serial(
        self, tasks: Sequence[SweepTask], pending: Sequence[int], results: List
    ) -> None:
        for i in pending:
            results[i] = self._run_cell_serial(tasks[i])

    def _run_cell_serial(self, task: SweepTask):
        """One cell, in-process, with the full retry loop."""
        attempt = 0
        while True:
            attempt += 1
            span, ctx = self._start_cell(task, attempt)
            try:
                result, elapsed, spans = _run_task_timed(task, attempt, ctx)
                if isinstance(result, CorruptResult):
                    raise CorruptResultError(
                        f"corrupt result for {task.label} (attempt {attempt})"
                    )
            except self.retry.retryable as exc:
                if attempt >= self.retry.max_attempts:
                    self._end_cell(span, "exhausted")
                    return self._exhausted(task, attempt, exc)
                self._end_cell(span, "retry")
                self.progress.record_retry(
                    task.label, attempt, exc, self.retry.delay_for(attempt + 1)
                )
                self._backoff(attempt + 1)
                continue
            self._end_cell(span, "ok", spans)
            self._finish_cell(task, result, elapsed, SOURCE_SERIAL, attempts=attempt)
            return result

    def _final_serial_attempt(self, task: SweepTask, attempt: int):
        """Last attempt of a pool-scheduled cell, run in-process."""
        self.progress.note(
            f"final attempt {attempt} for {task.label}: running in-process"
        )
        span, ctx = self._start_cell(task, attempt)
        try:
            result, elapsed, spans = _run_task_timed(task, attempt, ctx)
            if isinstance(result, CorruptResult):
                raise CorruptResultError(
                    f"corrupt result for {task.label} (attempt {attempt})"
                )
        except self.retry.retryable as exc:
            self._end_cell(span, "exhausted")
            return self._exhausted(task, attempt, exc)
        self._end_cell(span, "ok", spans)
        self._finish_cell(task, result, elapsed, SOURCE_SERIAL, attempts=attempt)
        return result

    # -- parallel execution --------------------------------------------

    def _run_parallel(
        self, tasks: Sequence[SweepTask], pending: Sequence[int], results: List
    ) -> None:
        """Round-based pool execution with deterministic retry order.

        Each round submits every runnable cell (in task order) to a
        fresh-or-healthy pool, collects in task order, and queues
        retryable failures for the next round. Cells on their final
        attempt run in-process when the policy allows, after every pool
        round of the current generation. One backoff sleep per round
        (the round's maximum pending delay) keeps the schedule
        jitterless without serialising the collection.
        """
        attempts: Dict[int, int] = {i: 0 for i in pending}
        queue: List[int] = list(pending)
        while queue:
            round_cells = sorted(queue)
            queue.clear()
            pool_round: List[int] = []
            serial_round: List[int] = []
            for i in round_cells:
                next_attempt = attempts[i] + 1
                final = next_attempt >= self.retry.max_attempts
                if next_attempt > 1 and final and self.retry.serial_final_attempt:
                    serial_round.append(i)
                else:
                    pool_round.append(i)
            if pool_round:
                self._pool_round(tasks, pool_round, results, attempts, queue)
            for i in serial_round:
                attempts[i] += 1
                results[i] = self._final_serial_attempt(tasks[i], attempts[i])
            if queue:
                self._backoff(max(attempts[i] + 1 for i in queue))

    def _pool_round(
        self,
        tasks: Sequence[SweepTask],
        indices: List[int],
        results: List,
        attempts: Dict[int, int],
        queue: List[int],
    ) -> None:
        try:
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.max_workers)
        except (OSError, ValueError) as exc:  # e.g. no /dev/shm, fork limits
            self.progress.note(f"process pool unavailable ({exc!r}); running serially")
            self._run_serial(tasks, indices, results)
            return

        futures: Dict[int, concurrent.futures.Future] = {}
        cell_spans: Dict[int, Optional["Span"]] = {}
        try:
            for i in indices:
                attempts[i] += 1
                span, ctx = self._start_cell(tasks[i], attempts[i])
                cell_spans[i] = span
                futures[i] = pool.submit(
                    _run_task_timed, tasks[i], attempts[i], ctx
                )
        except _FALLBACK_ERRORS as exc:
            self.progress.note(f"submit failed ({exc!r}); running serially")
            for fut in futures.values():
                fut.cancel()
            for span in cell_spans.values():
                self._end_cell(span, "requeued")
            pool.shutdown(wait=False, cancel_futures=True)
            self._run_serial(tasks, indices, results)
            return

        collected: Set[int] = set()
        pool_tainted = False  # a timeout or broken pool poisoned this round
        try:
            for i in indices:
                fut = futures[i]
                if pool_tainted:
                    self._salvage(tasks, i, fut, results, attempts, queue)
                    self._end_cell(cell_spans.get(i), "salvaged")
                    collected.add(i)
                    continue
                try:
                    result, elapsed, spans = fut.result(
                        timeout=self.task_timeout_s
                    )
                except concurrent.futures.TimeoutError:
                    # Reap the pool *before* deciding the cell's fate, so
                    # a timed-out sweep never leaks busy workers.
                    pool_tainted = True
                    self._reap(pool, futures, skip=collected | {i})
                    collected.add(i)
                    self._end_cell(cell_spans.get(i), "timeout")
                    self._fail_or_queue(
                        tasks[i], i,
                        SweepTimeoutError(
                            f"sweep cell {tasks[i].label} exceeded "
                            f"{self.task_timeout_s:.1f}s"
                            f" (attempt {attempts[i]})"
                        ),
                        results, attempts, queue,
                    )
                    continue
                except BrokenProcessPool as exc:
                    pool_tainted = True
                    self._reap(pool, futures, skip=collected | {i})
                    collected.add(i)
                    self._end_cell(cell_spans.get(i), "broken_pool")
                    self._fail_or_queue(tasks[i], i, exc, results, attempts, queue)
                    continue
                except self.retry.retryable as exc:
                    collected.add(i)
                    self._end_cell(cell_spans.get(i), "retry")
                    self._fail_or_queue(tasks[i], i, exc, results, attempts, queue)
                    continue
                except _FALLBACK_ERRORS as exc:
                    # Un-picklable grid: finish what the pool could not,
                    # in-process, without losing completed work.
                    remaining = [j for j in indices if j not in collected]
                    self.progress.note(
                        f"parallel execution failed ({exc!r}); "
                        f"finishing {len(remaining)} cell(s) serially"
                    )
                    self._reap(pool, futures, skip=collected)
                    self._end_cell(cell_spans.get(i), "error")
                    for j in remaining:
                        if j != i:
                            self._end_cell(cell_spans.get(j), "requeued")
                    self._run_serial(tasks, remaining, results)
                    return
                collected.add(i)
                if isinstance(result, CorruptResult):
                    self._end_cell(cell_spans.get(i), "corrupt", spans)
                    self._fail_or_queue(
                        tasks[i], i,
                        CorruptResultError(
                            f"corrupt result for {tasks[i].label} "
                            f"(attempt {attempts[i]})"
                        ),
                        results, attempts, queue,
                    )
                    continue
                self._end_cell(cell_spans.get(i), "ok", spans)
                results[i] = result
                self._finish_cell(
                    tasks[i], result, elapsed, SOURCE_PARALLEL,
                    attempts=attempts[i],
                )
        except BaseException:
            # An exhausted cell raising (or Ctrl-C) must not strand the
            # pool: cancel outstanding work and reap it on the way out.
            self._reap(pool, futures, skip=collected)
            raise
        if not pool_tainted:
            pool.shutdown()

    @staticmethod
    def _reap(
        pool: concurrent.futures.ProcessPoolExecutor,
        futures: Dict[int, concurrent.futures.Future],
        skip: Set[int],
    ) -> None:
        """Cancel outstanding futures and shut the pool down hard."""
        for j, fut in futures.items():
            if j not in skip:
                fut.cancel()
        # A non-blocking shutdown is not enough: workers mid-task keep
        # running, and on 3.11 the pool's manager thread can then wait
        # forever for results nobody will collect, hanging interpreter
        # exit. The round is already condemned (its survivors were
        # salvaged or requeued), so kill the workers outright; crash-safe
        # cache writes mean a worker killed mid-put cannot tear an entry.
        # (Snapshot the process table first: shutdown() clears it.)
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass

    def _salvage(
        self,
        tasks: Sequence[SweepTask],
        i: int,
        fut: concurrent.futures.Future,
        results: List,
        attempts: Dict[int, int],
        queue: List[int],
    ) -> None:
        """Collect what a tainted round still produced.

        Completed futures keep their results (or their real failures);
        cancelled and never-finished cells requeue *uncharged* - their
        attempt never ran, so it should not count against the budget.
        """
        if fut.done() and not fut.cancelled():
            exc = fut.exception()
            if exc is None:
                result, elapsed, spans = fut.result()
                if self.tracer is not None and spans:
                    self.tracer.adopt(spans)
                if isinstance(result, CorruptResult):
                    self._fail_or_queue(
                        tasks[i], i,
                        CorruptResultError(
                            f"corrupt result for {tasks[i].label} "
                            f"(attempt {attempts[i]})"
                        ),
                        results, attempts, queue,
                    )
                    return
                results[i] = result
                self._finish_cell(
                    tasks[i], result, elapsed, SOURCE_PARALLEL,
                    attempts=attempts[i],
                )
                return
            if isinstance(exc, BrokenProcessPool):
                # Collateral damage from another cell's crash.
                attempts[i] -= 1
                queue.append(i)
                return
            self._fail_or_queue(tasks[i], i, exc, results, attempts, queue)
            return
        fut.cancel()
        attempts[i] -= 1
        queue.append(i)

    def _fail_or_queue(
        self,
        task: SweepTask,
        i: int,
        exc: BaseException,
        results: List,
        attempts: Dict[int, int],
        queue: List[int],
    ) -> None:
        """Queue a retryable failure for the next round, or exhaust it."""
        if self.retry.is_retryable(exc) and attempts[i] < self.retry.max_attempts:
            self.progress.record_retry(
                task.label, attempts[i], exc, self.retry.delay_for(attempts[i] + 1)
            )
            queue.append(i)
        else:
            results[i] = self._exhausted(task, attempts[i], exc)


__all__ = [
    "BACKEND_LOCAL",
    "BACKEND_REMOTE",
    "NO_RETRY",
    "ON_EXHAUSTED_RAISE",
    "ON_EXHAUSTED_RECORD",
    "FailedCell",
    "RetryPolicy",
    "SweepExecutor",
    "SweepTask",
    "SweepTimeoutError",
    "run_task",
]
