"""Process-pool sweep executor for (workload x design x config) grids.

The paper parallelised its fork-and-pre-execute methodology across "10
processes" (Section 5.1); the same observation applies one level up:
every cell of an evaluation grid is an independent deterministic
simulation, so a figure's (workload x design) matrix fans out across
cores. :class:`SweepExecutor` does that with
:class:`concurrent.futures.ProcessPoolExecutor` while guaranteeing:

* **Deterministic ordering** - ``run(tasks)[i]`` is always the result of
  ``tasks[i]``, however the pool interleaved them.
* **Bit-identical results** - workers execute exactly the same
  :func:`run_task` code path as a serial run, so parallelism never
  changes a number.
* **Graceful degradation** - ``max_workers=1``, a single pending cell,
  or any pickling/pool failure falls back to in-process execution (the
  failure is recorded in the instrumentation, not raised).
* **Per-task timeout** - a hung cell raises :class:`SweepTimeoutError`
  naming the cell instead of stalling the sweep forever.

Cells are transparently memoised through
:class:`~repro.runtime.cache.ResultCache` when one is supplied.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.objectives import Objective
from repro.runtime.cache import ResultCache, describe_objective, task_key
from repro.runtime.progress import (
    SOURCE_CACHE,
    SOURCE_PARALLEL,
    SOURCE_SERIAL,
    CellRecord,
    SweepInstrumentation,
)


class SweepTimeoutError(RuntimeError):
    """A sweep cell exceeded the per-task timeout."""


@dataclass(frozen=True)
class SweepTask:
    """One self-contained sweep cell.

    Carries names and config - not live simulator objects - so the task
    pickles cheaply to a worker process, which rebuilds the workload and
    controller locally via :func:`run_task`.
    """

    workload: str
    design: str
    config: SimConfig
    scale: float = 0.4
    max_epochs: int = 400
    oracle_sample_freqs: Optional[int] = 4
    collect_accuracy: bool = False
    objective: Optional[Objective] = None

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.design}"

    def cache_fields(self) -> Dict[str, object]:
        """Everything the simulation result depends on (see cache.py)."""
        return {
            "workload": self.workload,
            "design": self.design,
            "config": self.config,
            "scale": self.scale,
            "max_epochs": self.max_epochs,
            "oracle_sample_freqs": self.oracle_sample_freqs,
            "collect_accuracy": self.collect_accuracy,
            "objective": describe_objective(self.objective),
        }

    def key(self) -> str:
        return task_key(self.cache_fields())


def run_task(task: SweepTask, recorder=None):
    """Execute one cell to completion (runs in worker processes too).

    ``recorder`` is an optional
    :class:`~repro.telemetry.recorder.EpochTraceRecorder` attached to
    the simulation (used by ``repro trace`` / ``repro report``). It is
    deliberately *not* part of :class:`SweepTask` - telemetry never
    enters the result-cache key because it never changes the result.
    """
    # Local imports keep worker start-up lean and avoid import cycles.
    from repro.dvfs.designs import make_controller
    from repro.dvfs.simulation import DvfsSimulation
    from repro.workloads import build_workload, workload

    kernels = build_workload(workload(task.workload), scale=task.scale)
    ctrl = make_controller(task.design, task.config, task.objective)
    sim = DvfsSimulation(
        kernels,
        ctrl,
        task.config,
        design_name=task.design,
        workload_name=task.workload,
        collect_accuracy=task.collect_accuracy,
        max_epochs=task.max_epochs,
        oracle_sample_freqs=task.oracle_sample_freqs,
        telemetry=recorder,
    )
    return sim.run()


def _run_task_timed(task: SweepTask) -> Tuple[object, float]:
    t0 = time.perf_counter()
    result = run_task(task)
    return result, time.perf_counter() - t0


#: Exceptions that mean "this grid cannot cross the process boundary";
#: they demote the sweep to serial execution rather than failing it.
_FALLBACK_ERRORS = (
    pickle.PicklingError,
    BrokenProcessPool,
    TypeError,
    AttributeError,
    ImportError,
    OSError,
)


@dataclass
class SweepExecutor:
    """Runs sweep cells across a process pool with caching."""

    max_workers: int = 1
    cache: Optional[ResultCache] = None
    progress: SweepInstrumentation = field(default_factory=SweepInstrumentation)
    #: Per-cell timeout in seconds, measured from collection start
    #: (includes queueing); None disables the guard.
    task_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.progress.max_workers = max(self.progress.max_workers, self.max_workers)

    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> List:
        """Execute every task; ``run(tasks)[i]`` belongs to ``tasks[i]``."""
        tasks = list(tasks)
        started_here = self.progress._t_start is None
        if started_here:
            self.progress.start()
        try:
            results: List[Optional[object]] = [None] * len(tasks)
            pending: List[int] = []
            for i, task in enumerate(tasks):
                cached = self.cache.get(task.key()) if self.cache is not None else None
                if cached is not None:
                    results[i] = cached
                    self.progress.record_cell(
                        CellRecord(
                            task.label, task.workload, task.design, 0.0, SOURCE_CACHE,
                            hotpath=getattr(cached, "hotpath", None),
                        )
                    )
                else:
                    pending.append(i)

            if self.max_workers <= 1 or len(pending) <= 1:
                self._run_serial(tasks, pending, results)
            else:
                self._run_parallel(tasks, pending, results)
            return results  # type: ignore[return-value]
        finally:
            if started_here:
                self.progress.finish()

    def run_one(self, task: SweepTask):
        return self.run([task])[0]

    # ------------------------------------------------------------------

    def _finish_cell(
        self, task: SweepTask, result: object, elapsed: float, source: str
    ) -> None:
        if self.cache is not None:
            self.cache.put(task.key(), result)
        self.progress.record_cell(
            CellRecord(
                task.label, task.workload, task.design, elapsed, source,
                hotpath=getattr(result, "hotpath", None),
            )
        )

    def _run_serial(
        self, tasks: Sequence[SweepTask], pending: Sequence[int], results: List
    ) -> None:
        for i in pending:
            result, elapsed = _run_task_timed(tasks[i])
            results[i] = result
            self._finish_cell(tasks[i], result, elapsed, SOURCE_SERIAL)

    def _run_parallel(
        self, tasks: Sequence[SweepTask], pending: Sequence[int], results: List
    ) -> None:
        try:
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.max_workers)
        except (OSError, ValueError) as exc:  # e.g. no /dev/shm, fork limits
            self.progress.note(f"process pool unavailable ({exc!r}); running serially")
            self._run_serial(tasks, pending, results)
            return

        remaining = list(pending)
        with pool:
            try:
                futures = {i: pool.submit(_run_task_timed, tasks[i]) for i in pending}
            except _FALLBACK_ERRORS as exc:
                self.progress.note(f"submit failed ({exc!r}); running serially")
                self._run_serial(tasks, pending, results)
                return

            for i in pending:
                try:
                    result, elapsed = futures[i].result(timeout=self.task_timeout_s)
                except concurrent.futures.TimeoutError:
                    for j in remaining:
                        futures[j].cancel()
                    raise SweepTimeoutError(
                        f"sweep cell {tasks[i].label} exceeded "
                        f"{self.task_timeout_s:.1f}s"
                    ) from None
                except _FALLBACK_ERRORS as exc:
                    # Un-picklable grid or a broken pool: finish what the
                    # pool could not, in-process, without losing work.
                    self.progress.note(
                        f"parallel execution failed ({exc!r}); "
                        f"finishing {len(remaining)} cell(s) serially"
                    )
                    for j in list(remaining):
                        futures[j].cancel()
                    self._run_serial(tasks, remaining, results)
                    return
                results[i] = result
                remaining.remove(i)
                self._finish_cell(tasks[i], result, elapsed, SOURCE_PARALLEL)


__all__ = ["SweepExecutor", "SweepTask", "SweepTimeoutError", "run_task"]
