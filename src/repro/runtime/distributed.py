"""Distributed sweep backend: one broker, many worker hosts, one grid.

The process-pool :class:`~repro.runtime.executor.SweepExecutor` scales a
sweep across the cores of one machine; this module scales it across
machines while keeping every guarantee the pool backend makes:

* **Bit-identical results.** Workers execute the exact same
  :func:`~repro.runtime.executor.run_task` path as a serial run and ship
  the :class:`~repro.dvfs.simulation.RunResult` back losslessly (pickled
  inside the JSON frame) *together with* its
  :func:`~repro.analysis.trace_io.run_result_to_dict` payload; the
  broker re-derives the dict from the unpickled result and rejects the
  cell as corrupt when the two disagree. ``run(tasks)[i]`` still belongs
  to ``tasks[i]``, whatever order workers finished in.
* **Exactly-once cells.** Every cell is leased to at most one worker at
  a time; a result is accepted only from the current leaseholder at the
  current attempt, so a reassigned-then-late-arriving result (the dead
  worker turned out to be merely slow) is acknowledged and discarded.
  Accepted cells dedupe again through the content-hash
  :class:`~repro.runtime.cache.ResultCache` key and the
  :class:`~repro.runtime.checkpoint.SweepCheckpoint` manifest, whose
  ``record`` is idempotent - the manifest can never hold a key twice.
* **Fault tolerance under the existing RetryPolicy accounting.** Leases
  carry deadlines; workers renew them with heartbeats while computing.
  A dead worker (connection drops - e.g. SIGKILL) or a hung one (lease
  deadline passes, or the hard per-lease ceiling derived from
  ``task_timeout_s`` is hit while heartbeats keep arriving) has its cell
  *reclaimed*: the failed attempt is charged against
  ``RetryPolicy.max_attempts``, the jitterless backoff schedule gates
  when the cell may be re-leased, and exhaustion follows
  ``on_exhausted`` exactly as in the pool backend. Reclaims are counted
  as ``sweep_cells_reclaimed`` in the sweep's
  :class:`~repro.runtime.progress.SweepInstrumentation` registry.
  (One deviation: ``serial_final_attempt`` does not apply - the broker
  never computes cells locally, every attempt runs on a worker.)
* **Cross-host spans.** The broker opens the usual ``cell`` span per
  attempt and ships its :class:`~repro.obs.trace.SpanContext` in the
  task frame; the worker joins the trace with
  :meth:`~repro.obs.trace.Tracer.from_context` and returns its span
  records with the result, so run/epoch/oracle_sample spans from remote
  hosts nest under the broker's sweep span exactly like pool workers'.

Wire protocol
-------------
The same 4-byte big-endian length-prefixed JSON frames as the decision
service (:mod:`repro.runtime.wire`), over one TCP connection per
worker. Worker to broker::

    hello      {protocol, worker}
    ready      {}                          lease the next runnable cell
    heartbeat  {index}                     renew the held lease (no reply)
    result     {index, attempt, key, wall_s, result, dict, spans}
    fail       {index, attempt, error_type, error}
    goodbye    {}

Broker to worker: ``hello_ok {lease_s, heartbeat_s, n_tasks}``,
``task {index, attempt, key, task, lease_s, span}``,
``idle {retry_after_s}`` (nothing runnable right now), ``done`` (sweep
complete), ``ack {accepted}``, ``bye``, ``error {error}``.

Tasks cross the wire in JSON (config via the telemetry schema's
canonical form, objectives via their canonical class + state); the
worker rebuilds the :class:`~repro.runtime.executor.SweepTask` and
refuses to run it unless the rebuilt task's content-hash key matches
the one the broker sent - any wire infidelity (or version skew between
hosts) fails loudly before a single wrong number is computed.
"""

from __future__ import annotations

import base64
import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Set

from repro.obs.log import get_logger
from repro.runtime.faults import CorruptResult, CorruptResultError, InjectedFaultError
from repro.runtime.progress import SOURCE_REMOTE
from repro.runtime.wire import (
    FrameReceiver,
    ProtocolError,
    ReceiveTimeout,
    recv_frame,
    send_frame,
)

if TYPE_CHECKING:
    from repro.obs.trace import Span
    from repro.runtime.executor import SweepExecutor, SweepTask

_log = get_logger("distributed")

#: Default broker port (the decision service owns 8472/8473).
DEFAULT_BROKER_PORT = 8474

#: Broker protocol revision; a ``hello`` carrying a different one is
#: rejected before any task crosses the wire.
BROKER_PROTOCOL_VERSION = 1

# Worker -> broker message types.
MSG_HELLO = "hello"
MSG_READY = "ready"
MSG_HEARTBEAT = "heartbeat"
MSG_RESULT = "result"
MSG_FAIL = "fail"
MSG_GOODBYE = "goodbye"

# Broker -> worker message types.
MSG_HELLO_OK = "hello_ok"
MSG_TASK = "task"
MSG_IDLE = "idle"
MSG_DONE = "done"
MSG_ACK = "ack"
MSG_BYE = "bye"
MSG_ERROR = "error"


class LeaseExpired(RuntimeError):
    """A leased cell's worker died or stopped heartbeating; the cell was
    reclaimed. Charged against the retry budget like any failed attempt."""


class RemoteCellError(RuntimeError):
    """A worker-side failure whose type has no local reconstruction."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


class WorkerError(RuntimeError):
    """The worker agent loop cannot continue (broker gone, protocol
    violation, task key mismatch...)."""


# ----------------------------------------------------------------------
# Task + result wire codecs

#: Worker-side failure types the broker rebuilds as their real classes,
#: so retryability and the fault counters behave as in the pool backend.
def _error_registry() -> Dict[str, type]:
    from repro.runtime.executor import SweepTimeoutError

    return {
        "InjectedFaultError": InjectedFaultError,
        "CorruptResultError": CorruptResultError,
        "SweepTimeoutError": SweepTimeoutError,
    }


def error_from_wire(remote_type: str, message: str) -> BaseException:
    cls = _error_registry().get(remote_type)
    if cls is not None:
        return cls(message)
    return RemoteCellError(remote_type, message)


#: Objective reconstruction from the canonical ``describe_objective``
#: form ({"__class__": name, ...public state}).
def objective_from_wire(wire: Any) -> Optional[Any]:
    if wire is None:
        return None
    from repro.core.objectives import (
        EDnPObjective,
        PerformanceCapObjective,
        QoSDeadlineObjective,
        StaticObjective,
    )

    try:
        name = wire["__class__"]
        if name == "StaticObjective":
            return StaticObjective(float(wire["f_ghz"]))
        if name == "EDnPObjective":
            return EDnPObjective(int(wire["n"]), float(wire["price_scale"]))
        if name == "PerformanceCapObjective":
            return PerformanceCapObjective(float(wire["max_degradation"]))
        if name == "QoSDeadlineObjective":
            return QoSDeadlineObjective(float(wire["target"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed objective: {exc}") from None
    raise ProtocolError(f"unknown objective class {name!r}")


def sweep_task_to_wire(task: "SweepTask") -> Dict[str, object]:
    """JSON form of a sweep cell (config in its canonical wire shape)."""
    from repro.runtime.cache import describe_objective
    from repro.telemetry.schema import sim_config_to_wire

    return {
        "workload": task.workload,
        "design": task.design,
        "config": sim_config_to_wire(task.config),
        "scale": task.scale,
        "max_epochs": task.max_epochs,
        "oracle_sample_freqs": task.oracle_sample_freqs,
        "collect_accuracy": task.collect_accuracy,
        "objective": describe_objective(task.objective),
    }


def sweep_task_from_wire(wire: Mapping[str, Any]) -> "SweepTask":
    """Rebuild a :class:`SweepTask`; raises :class:`ProtocolError` on a
    malformed payload. Callers should verify the rebuilt task's
    ``key()`` against the broker's expected key."""
    from repro.runtime.executor import SweepTask
    from repro.service.protocol import sim_config_from_wire

    try:
        freqs = wire["oracle_sample_freqs"]
        return SweepTask(
            workload=str(wire["workload"]),
            design=str(wire["design"]),
            config=sim_config_from_wire(wire["config"]),
            scale=float(wire["scale"]),
            max_epochs=int(wire["max_epochs"]),
            oracle_sample_freqs=None if freqs is None else int(freqs),
            collect_accuracy=bool(wire["collect_accuracy"]),
            objective=objective_from_wire(wire["objective"]),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed sweep task: {exc}") from None


def result_to_wire(result: Any) -> str:
    """Lossless transport form of a RunResult (pickle, base64)."""
    return base64.b64encode(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def result_from_wire(blob: Any) -> Any:
    try:
        return pickle.loads(base64.b64decode(blob))
    except Exception as exc:  # noqa: BLE001 - any unpickle failure is corrupt
        raise CorruptResultError(f"undecodable remote result: {exc!r}") from None


# ----------------------------------------------------------------------
# Broker


@dataclass
class _Lease:
    """One outstanding grant of one cell to one worker connection."""

    index: int
    worker: str
    attempt: int
    deadline: float  # monotonic; renewed by heartbeats
    hard_deadline: Optional[float]  # monotonic ceiling (task_timeout_s)
    span: Optional["Span"] = None

    def renew(self, lease_s: float) -> None:
        deadline = time.monotonic() + lease_s
        if self.hard_deadline is not None:
            deadline = min(deadline, self.hard_deadline)
        self.deadline = deadline

    @property
    def expired(self) -> bool:
        return time.monotonic() > self.deadline


class SweepBroker:
    """Serves one sweep's task grid to remote workers over TCP.

    Attach to a :class:`~repro.runtime.executor.SweepExecutor` via
    ``SweepExecutor(backend="remote", broker=SweepBroker(...))``; the
    executor's ``run()`` then blocks in :meth:`serve` until every
    pending cell has been computed by some worker (or exhausted its
    retry budget). The broker owns no policy of its own - retries,
    caching, checkpointing, instrumentation and spans all flow through
    the executor it serves, so a remote sweep is governed by exactly
    the knobs a local one is.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_BROKER_PORT,
        lease_s: float = 15.0,
        poll_s: float = 0.2,
        idle_retry_s: float = 0.5,
    ) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        self.host = host
        self.port = port
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.idle_retry_s = idle_retry_s
        #: Actual bound port (useful with ``port=0``), set by serve().
        self.bound_port: Optional[int] = None
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._reset_sweep_state()

    def _reset_sweep_state(self) -> None:
        self._executor: Optional["SweepExecutor"] = None
        self._tasks: Sequence["SweepTask"] = ()
        self._results: Optional[List] = None
        self._pending: Set[int] = set()       # runnable (not leased, not done)
        self._leases: Dict[int, _Lease] = {}
        self._done: Set[int] = set()
        self._attempts: Dict[int, int] = {}
        self._earliest: Dict[int, float] = {}  # backoff gate, monotonic
        self._fatal: Optional[BaseException] = None
        self._finished = False
        self._conns: List[socket.socket] = []

    # ------------------------------------------------------------------
    # Main entry point (runs on the executor's thread)

    def serve(
        self,
        executor: "SweepExecutor",
        tasks: Sequence["SweepTask"],
        pending: Sequence[int],
        results: List,
    ) -> None:
        """Serve ``tasks[pending]`` to workers; fills ``results`` in place."""
        with self._lock:
            if self._executor is not None:
                raise RuntimeError("broker is already serving a sweep")
            self._reset_sweep_state()
            self._executor = executor
            self._tasks = tasks
            self._results = results
            self._pending = set(pending)
            self._attempts = {i: 0 for i in pending}
            self._earliest = {i: 0.0 for i in pending}

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        listener.settimeout(self.poll_s)
        self.bound_port = listener.getsockname()[1]
        executor.progress.note(
            f"broker listening on {self.host}:{self.bound_port} "
            f"({len(pending)} cell(s) to distribute)"
        )
        accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener,),
            name="sweep-broker-accept", daemon=True,
        )
        handler_threads: List[threading.Thread] = []
        self._handler_threads = handler_threads
        accept_thread.start()
        try:
            with self._cond:
                while self._fatal is None and len(self._done) < len(
                    self._attempts
                ):
                    self._cond.wait(timeout=self.poll_s)
                    self._reap_expired_locked()
                self._finished = True
                self._cond.notify_all()
        finally:
            with self._lock:
                self._finished = True
                fatal = self._fatal
                conns = list(self._conns)
            listener.close()
            accept_thread.join(timeout=5.0)
            for thread in list(handler_threads):
                thread.join(timeout=5.0)
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            with self._lock:
                self._reset_sweep_state()
                self._finished = True
        if fatal is not None:
            raise fatal

    # ------------------------------------------------------------------
    # Accept + per-connection handler threads

    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            with self._lock:
                if self._finished:
                    return
            try:
                conn, addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by serve()
            with self._lock:
                if self._finished:
                    conn.close()
                    return
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._handle,
                args=(conn, f"{addr[0]}:{addr[1]}"),
                name=f"sweep-broker-{addr[0]}:{addr[1]}",
                daemon=True,
            )
            self._handler_threads.append(thread)
            thread.start()

    def _handle(self, conn: socket.socket, peer: str) -> None:
        receiver = FrameReceiver(conn, strict=True)
        worker = peer
        held: Optional[int] = None
        try:
            while True:
                with self._lock:
                    finished = self._finished
                if finished and held is None:
                    self._send_quiet(conn, {"type": MSG_DONE})
                    return
                try:
                    msg = receiver.recv(self.poll_s)
                except ReceiveTimeout:
                    continue
                if msg is None:
                    return  # clean close; `finally` reclaims any held lease
                held = self._dispatch(conn, worker, msg, held)
                if held is _CLOSE:
                    return
        except ProtocolError as exc:
            self._note(f"worker {worker}: protocol violation: {exc}")
            self._send_quiet(conn, {"type": MSG_ERROR, "error": str(exc)})
        except OSError as exc:
            self._note(f"worker {worker}: connection error: {exc}")
        finally:
            if held is not None and held is not _CLOSE:
                self._reclaim(held, worker, "worker disconnected")
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _dispatch(
        self,
        conn: socket.socket,
        worker: str,
        msg: Dict[str, object],
        held: Optional[int],
    ) -> Optional[int]:
        """Process one worker frame; returns the (possibly changed) held
        cell index, or :data:`_CLOSE` to end the connection."""
        mtype = msg.get("type")
        if mtype == MSG_HELLO:
            if msg.get("protocol") != BROKER_PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: broker speaks "
                    f"{BROKER_PROTOCOL_VERSION}, worker sent "
                    f"{msg.get('protocol')!r}"
                )
            with self._lock:
                registry = self._registry()
                if registry is not None:
                    registry.inc("sweep_workers_connected")
                n_tasks = len(self._attempts)
            send_frame(conn, {
                "type": MSG_HELLO_OK,
                "protocol": BROKER_PROTOCOL_VERSION,
                "lease_s": self.lease_s,
                "heartbeat_s": min(self.lease_s / 3.0, 5.0),
                "n_tasks": n_tasks,
            })
            self._note(f"worker {worker} connected ({msg.get('worker', '?')})")
            return held
        if mtype == MSG_READY:
            grant = self._grant(worker)
            if grant is None:
                with self._lock:
                    done = self._finished or len(self._done) >= len(self._attempts)
                if done:
                    send_frame(conn, {"type": MSG_DONE})
                    return _CLOSE
                send_frame(conn, {
                    "type": MSG_IDLE, "retry_after_s": self.idle_retry_s,
                })
                return held
            send_frame(conn, grant)
            return int(grant["index"])  # type: ignore[arg-type]
        if mtype == MSG_HEARTBEAT:
            self._renew(msg.get("index"), worker)
            return held  # heartbeats are one-way
        if mtype == MSG_RESULT:
            accepted = self._accept_result(worker, msg)
            self._send_quiet(conn, {"type": MSG_ACK, "accepted": accepted})
            return None
        if mtype == MSG_FAIL:
            self._accept_failure(worker, msg)
            self._send_quiet(conn, {"type": MSG_ACK, "accepted": True})
            return None
        if mtype == MSG_GOODBYE:
            self._send_quiet(conn, {"type": MSG_BYE})
            return _CLOSE
        raise ProtocolError(f"unknown message type {mtype!r}")

    # ------------------------------------------------------------------
    # Grid state transitions (all under the lock)

    def _registry(self):
        if self._executor is None:
            return None
        return self._executor.progress.registry

    def _note(self, message: str) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.progress.note(message)
            else:
                _log.info(message)

    @staticmethod
    def _send_quiet(conn: socket.socket, message: Dict[str, object]) -> None:
        try:
            send_frame(conn, message)
        except OSError:
            pass

    def _grant(self, worker: str) -> Optional[Dict[str, object]]:
        """Lease the lowest runnable cell to ``worker`` (None = nothing)."""
        with self._lock:
            ex = self._executor
            if ex is None or self._finished or self._fatal is not None:
                return None
            now = time.monotonic()
            runnable = [i for i in self._pending if self._earliest[i] <= now]
            if not runnable:
                return None
            i = min(runnable)
            self._pending.discard(i)
            self._attempts[i] += 1
            attempt = self._attempts[i]
            task = self._tasks[i]
            span, ctx = ex._start_cell(task, attempt)
            if span is not None:
                span.attrs["worker"] = worker
            hard = None
            if ex.task_timeout_s is not None:
                hard = now + ex.task_timeout_s + self.lease_s
            lease = _Lease(
                index=i, worker=worker, attempt=attempt,
                deadline=0.0, hard_deadline=hard, span=span,
            )
            lease.renew(self.lease_s)
            self._leases[i] = lease
            return {
                "type": MSG_TASK,
                "index": i,
                "attempt": attempt,
                "key": task.key(),
                "task": sweep_task_to_wire(task),
                "lease_s": self.lease_s,
                "span": ctx,
            }

    def _renew(self, index: object, worker: str) -> None:
        with self._lock:
            try:
                lease = self._leases.get(int(index))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return
            if lease is not None and lease.worker == worker:
                lease.renew(self.lease_s)

    def _accept_result(self, worker: str, msg: Dict[str, object]) -> bool:
        """Record a completed cell; False when the result is late or
        duplicate (its lease was reclaimed and possibly reassigned)."""
        try:
            i = int(msg["index"])  # type: ignore[arg-type]
            attempt = int(msg["attempt"])  # type: ignore[arg-type]
            wall_s = float(msg.get("wall_s", 0.0))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed result frame: {exc}") from None
        with self._lock:
            ex = self._executor
            lease = self._leases.get(i)
            if (
                ex is None
                or i in self._done
                or lease is None
                or lease.worker != worker
                or lease.attempt != attempt
            ):
                registry = self._registry()
                if registry is not None:
                    registry.inc("sweep_results_duplicate")
                return False
            task = self._tasks[i]
            try:
                result = result_from_wire(msg.get("result"))
                self._verify_result(task, result, msg)
            except CorruptResultError as exc:
                self._leases.pop(i, None)
                ex._end_cell(lease.span, "corrupt")
                self._fail_or_requeue_locked(i, exc)
                return False
            self._leases.pop(i, None)
            ex._end_cell(lease.span, "ok", msg.get("spans") or None)
            assert self._results is not None
            self._results[i] = result
            ex._finish_cell(task, result, wall_s, SOURCE_REMOTE, attempts=attempt)
            self._done.add(i)
            self._cond.notify_all()
            return True

    def _verify_result(
        self, task: "SweepTask", result: Any, msg: Dict[str, object]
    ) -> None:
        """Integrity checks on a shipped result (raises CorruptResultError)."""
        from repro.analysis.trace_io import run_result_to_dict

        if msg.get("key") != task.key():
            raise CorruptResultError(
                f"result for {task.label} carries key {msg.get('key')!r}, "
                f"expected {task.key()!r}"
            )
        shipped = msg.get("dict")
        if shipped is not None and run_result_to_dict(result) != shipped:
            raise CorruptResultError(
                f"result for {task.label}: pickled payload disagrees with "
                f"its run_result_to_dict form"
            )

    def _accept_failure(self, worker: str, msg: Dict[str, object]) -> None:
        try:
            i = int(msg["index"])  # type: ignore[arg-type]
            attempt = int(msg["attempt"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed fail frame: {exc}") from None
        exc = error_from_wire(
            str(msg.get("error_type", "RemoteCellError")),
            str(msg.get("error", "")),
        )
        with self._lock:
            lease = self._leases.get(i)
            if (
                i in self._done
                or lease is None
                or lease.worker != worker
                or lease.attempt != attempt
            ):
                return  # late failure report for a reclaimed lease
            self._leases.pop(i, None)
            if self._executor is not None:
                self._executor._end_cell(lease.span, "retry")
            self._fail_or_requeue_locked(i, exc)

    def _fail_or_requeue_locked(self, i: int, exc: BaseException) -> None:
        """Retry accounting for a failed attempt (mirrors the pool's
        ``_fail_or_queue``); caller holds the lock."""
        ex = self._executor
        assert ex is not None
        task = self._tasks[i]
        attempts = self._attempts[i]
        retryable = ex.retry.is_retryable(exc) or isinstance(exc, LeaseExpired)
        if retryable and attempts < ex.retry.max_attempts:
            delay = ex.retry.delay_for(attempts + 1)
            ex.progress.record_retry(task.label, attempts, exc, delay)
            self._earliest[i] = time.monotonic() + delay
            self._pending.add(i)
            return
        try:
            assert self._results is not None
            self._results[i] = ex._exhausted(task, attempts, exc)
        except BaseException as fatal:  # on_exhausted="raise"
            self._fatal = fatal
        self._done.add(i)
        self._cond.notify_all()

    # ------------------------------------------------------------------
    # Lease reclamation (dead and hung workers)

    def _reap_expired_locked(self) -> None:
        """Reclaim every lease past its deadline; caller holds the lock."""
        for i in [i for i, ls in self._leases.items() if ls.expired]:
            self._reclaim_locked(i, self._leases[i].worker, "lease expired")

    def _reclaim(self, i: int, worker: str, cause: str) -> None:
        with self._lock:
            lease = self._leases.get(i)
            if lease is None or lease.worker != worker:
                return  # already reclaimed (or completed)
            self._reclaim_locked(i, worker, cause)

    def _reclaim_locked(self, i: int, worker: str, cause: str) -> None:
        lease = self._leases.pop(i)
        ex = self._executor
        assert ex is not None
        task = self._tasks[i]
        ex.progress.record_reclaim(task.label, worker, lease.attempt, cause)
        ex._end_cell(lease.span, "reclaimed")
        self._fail_or_requeue_locked(
            i,
            LeaseExpired(
                f"cell {task.label} attempt {lease.attempt} on {worker}: {cause}"
            ),
        )


#: Sentinel returned by ``_dispatch`` to end a worker connection.
_CLOSE: int = -1


# ----------------------------------------------------------------------
# Worker agent


@dataclass
class WorkerSummary:
    """What one worker session did (printed by ``repro worker``)."""

    completed: int = 0
    failed: int = 0
    rejected: int = 0  # results the broker discarded as late/duplicate
    events: List[str] = field(default_factory=list)


class SweepWorker:
    """Agent loop of one worker host: lease, compute, stream back.

    Connects to a :class:`SweepBroker`, then repeats
    ``ready -> task -> result`` until the broker reports the sweep done
    (or ``max_tasks`` cells were computed). While a cell runs, a
    background thread heartbeats the held lease so the broker can tell
    "slow" from "dead". Cells execute through the exact code path the
    serial executor uses (:func:`~repro.runtime.executor._run_task_timed`,
    including the worker host's own ``REPRO_FAULT_PLAN``), so results
    are bit-identical to a local run by construction.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_BROKER_PORT,
        name: Optional[str] = None,
        timeout_s: float = 60.0,
        connect_timeout_s: float = 30.0,
        max_tasks: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.timeout_s = timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.max_tasks = max_tasks
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._heartbeat_s = 5.0
        self.summary = WorkerSummary()

    # -- plumbing -------------------------------------------------------

    def _send(self, message: Dict[str, object]) -> None:
        assert self._sock is not None
        with self._send_lock:
            send_frame(self._sock, message)

    def _recv(self) -> Dict[str, object]:
        """One broker reply; raises WorkerError on silence or close."""
        assert self._sock is not None
        self._sock.settimeout(self.timeout_s)
        try:
            msg = recv_frame(self._sock, strict=True)
        except socket.timeout:
            raise WorkerError(
                f"broker sent no reply within {self.timeout_s}s"
            ) from None
        except ProtocolError as exc:
            raise WorkerError(f"protocol violation from broker: {exc}") from None
        except ConnectionError as exc:
            raise WorkerError(f"broker connection lost: {exc}") from None
        if msg is None:
            raise WorkerError("broker closed the connection")
        if msg.get("type") == MSG_ERROR:
            raise WorkerError(f"broker error: {msg.get('error')}")
        return msg

    def _connect(self) -> None:
        deadline = time.monotonic() + self.connect_timeout_s
        attempt = 0
        while True:
            attempt += 1
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
                return
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise WorkerError(
                        f"no broker on {self.host}:{self.port} after "
                        f"{self.connect_timeout_s:.0f}s: {exc}"
                    ) from None
                time.sleep(min(0.2 * attempt, 1.0))

    # -- the agent loop -------------------------------------------------

    def run(self) -> WorkerSummary:
        """Work the sweep to completion; returns the session summary."""
        self._connect()
        log = get_logger("worker")
        try:
            self._send({
                "type": MSG_HELLO,
                "protocol": BROKER_PROTOCOL_VERSION,
                "worker": self.name,
            })
            hello = self._recv()
            if hello.get("type") != MSG_HELLO_OK:
                raise WorkerError(f"unexpected hello reply: {hello!r}")
            self._heartbeat_s = float(hello.get("heartbeat_s", 5.0))  # type: ignore[arg-type]
            log.info(
                f"connected to broker {self.host}:{self.port} "
                f"({hello.get('n_tasks')} task(s) in the sweep)"
            )
            while True:
                self._send({"type": MSG_READY})
                msg = self._recv()
                mtype = msg.get("type")
                if mtype == MSG_DONE:
                    self.summary.events.append("sweep complete")
                    return self.summary
                if mtype == MSG_IDLE:
                    time.sleep(float(msg.get("retry_after_s", 0.5)))  # type: ignore[arg-type]
                    continue
                if mtype != MSG_TASK:
                    raise WorkerError(f"unexpected reply to ready: {msg!r}")
                self._run_cell(msg, log)
                if (
                    self.max_tasks is not None
                    and self.summary.completed >= self.max_tasks
                ):
                    self._send({"type": MSG_GOODBYE})
                    self.summary.events.append(
                        f"reached max_tasks={self.max_tasks}"
                    )
                    return self.summary
        finally:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def _run_cell(self, msg: Dict[str, object], log) -> None:
        from repro.runtime.executor import _run_task_timed

        try:
            index = int(msg["index"])  # type: ignore[arg-type]
            attempt = int(msg["attempt"])  # type: ignore[arg-type]
            expected_key = str(msg["key"])
            task = sweep_task_from_wire(msg["task"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError, ProtocolError) as exc:
            raise WorkerError(f"malformed task frame: {exc}") from None
        if task.key() != expected_key:
            # Version skew or wire infidelity: refuse to compute a cell
            # whose identity does not match what the broker asked for.
            self._send({
                "type": MSG_FAIL, "index": index, "attempt": attempt,
                "error_type": "TaskKeyMismatch",
                "error": (
                    f"rebuilt task key {task.key()[:12]}... does not match "
                    f"broker key {expected_key[:12]}... "
                    f"(mismatched repro versions?)"
                ),
            })
            self._await_ack()
            self.summary.failed += 1
            return
        span_ctx = msg.get("span")
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(index, stop),
            name="sweep-worker-heartbeat", daemon=True,
        )
        beat.start()
        log.info(f"leased {task.label} (attempt {attempt})")
        try:
            payload, elapsed, spans = _run_task_timed(
                task, attempt, span_ctx,  # type: ignore[arg-type]
            )
        except Exception as exc:  # noqa: BLE001 - every failure crosses the wire
            stop.set()
            beat.join()
            self._send({
                "type": MSG_FAIL, "index": index, "attempt": attempt,
                "error_type": type(exc).__name__, "error": str(exc),
            })
            self._await_ack()
            self.summary.failed += 1
            log.warning(f"{task.label} failed: {type(exc).__name__}: {exc}")
            return
        stop.set()
        beat.join()
        if isinstance(payload, CorruptResult):
            self._send({
                "type": MSG_FAIL, "index": index, "attempt": attempt,
                "error_type": "CorruptResultError",
                "error": f"corrupt result for {task.label} (attempt {attempt})",
            })
            self._await_ack()
            self.summary.failed += 1
            return
        from repro.analysis.trace_io import run_result_to_dict

        self._send({
            "type": MSG_RESULT,
            "index": index,
            "attempt": attempt,
            "key": expected_key,
            "wall_s": elapsed,
            "result": result_to_wire(payload),
            "dict": run_result_to_dict(payload),
            "spans": spans or [],
        })
        if self._await_ack():
            self.summary.completed += 1
            log.info(f"{task.label} done in {elapsed:.2f}s")
        else:
            self.summary.rejected += 1
            log.info(f"{task.label} result discarded by broker (late?)")

    def _await_ack(self) -> bool:
        msg = self._recv()
        if msg.get("type") != MSG_ACK:
            raise WorkerError(f"expected ack, got {msg!r}")
        return bool(msg.get("accepted"))

    def _heartbeat_loop(self, index: int, stop: threading.Event) -> None:
        while not stop.wait(self._heartbeat_s):
            try:
                self._send({"type": MSG_HEARTBEAT, "index": index})
            except OSError:
                return  # broker gone; the main loop will notice


__all__ = [
    "BROKER_PROTOCOL_VERSION",
    "DEFAULT_BROKER_PORT",
    "LeaseExpired",
    "RemoteCellError",
    "SweepBroker",
    "SweepWorker",
    "WorkerError",
    "WorkerSummary",
    "error_from_wire",
    "objective_from_wire",
    "result_from_wire",
    "result_to_wire",
    "sweep_task_from_wire",
    "sweep_task_to_wire",
]
