"""Deterministic fault injection for the sweep runtime.

Real sweep fleets lose cells to crashed workers, hung processes and
corrupted transfers; the retry/checkpoint machinery in
:mod:`repro.runtime.executor` exists to absorb exactly that. This module
makes those failures *reproducible* so tests and CI can prove the
machinery end to end:

* A :class:`FaultSpec` says what happens to one cell: ``raise`` (the
  worker throws :class:`InjectedFaultError`), ``hang`` (the worker
  sleeps ``hang_s`` seconds before running, long enough to trip the
  per-cell timeout), or ``corrupt`` (the worker returns a
  :class:`CorruptResult` marker instead of a real result). Faults fire
  on the first ``attempts`` tries of the cell and stop —
  ``attempts=None`` means every try (a *permanent* fault).
* A :class:`FaultPlan` is a set of specs plus an optional seeded random
  sample: ``fraction=0.1, seed=7`` deterministically selects ~10% of
  cell labels (by hashing ``seed:label``, no RNG state) and applies
  ``fraction_mode`` to them on their first ``fraction_attempts`` tries.
* Plans cross the process boundary through the ``REPRO_FAULT_PLAN``
  environment variable as JSON (:meth:`FaultPlan.install` /
  :func:`active_fault_plan`), so pool workers — which inherit the
  parent's environment — observe the same plan without any plumbing
  through task objects or cache keys.

Nothing here is randomised at run time: the same plan against the same
task list always injects the same faults on the same attempts, which is
what makes retry-policy tests assert exact counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

#: Environment variable carrying a JSON-encoded plan into workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Fault modes a spec may name.
MODE_RAISE = "raise"
MODE_HANG = "hang"
MODE_CORRUPT = "corrupt"
_MODES = (MODE_RAISE, MODE_HANG, MODE_CORRUPT)


class InjectedFaultError(RuntimeError):
    """A worker crashed because the active fault plan told it to."""


class CorruptResultError(RuntimeError):
    """A worker returned a corrupt payload instead of a result."""


@dataclass(frozen=True)
class CorruptResult:
    """Marker a faulted worker returns in place of a real result.

    The executor recognises it on collection and raises
    :class:`CorruptResultError`, exercising the same retry path as a
    worker that shipped back garbage over the pipe.
    """

    label: str
    attempt: int


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: which cell, what happens, for how many tries.

    ``cell`` matches a task label (``workload/design``); ``"*"`` on
    either side of the slash is a wildcard, so ``"*/PCSTALL"`` faults
    every PCSTALL cell.
    """

    cell: str
    mode: str = MODE_RAISE
    #: Fault fires while ``attempt <= attempts``; None = every attempt.
    attempts: Optional[int] = 2
    #: Sleep duration for ``hang`` mode (pick it above the sweep's
    #: per-cell timeout so the parent observes a hung worker).
    hang_s: float = 5.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown fault mode {self.mode!r} (use {_MODES})")

    def matches(self, label: str) -> bool:
        if self.cell == label or self.cell == "*":
            return True
        if "/" not in self.cell or "/" not in label:
            return False
        want_w, want_d = self.cell.split("/", 1)
        have_w, have_d = label.split("/", 1)
        return want_w in ("*", have_w) and want_d in ("*", have_d)

    def active_on(self, attempt: int) -> bool:
        return self.attempts is None or attempt <= self.attempts


def _stable_unit(seed: int, label: str) -> float:
    """Deterministic hash of (seed, label) mapped into [0, 1)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into a sweep."""

    specs: Tuple[FaultSpec, ...] = ()
    #: Seed for the sampled fraction below (no run-time RNG involved).
    seed: int = 0
    #: Additionally fault this fraction of cell labels, chosen by
    #: hashing ``seed:label`` — stable across processes and runs.
    fraction: float = 0.0
    fraction_mode: str = MODE_RAISE
    fraction_attempts: Optional[int] = 2

    # -- selection ------------------------------------------------------

    def fault_for(self, label: str, attempt: int) -> Optional[FaultSpec]:
        """The spec that fires for this cell on this attempt, if any."""
        for spec in self.specs:
            if spec.matches(label) and spec.active_on(attempt):
                return spec
        if self.fraction > 0.0 and _stable_unit(self.seed, label) < self.fraction:
            sampled = FaultSpec(label, self.fraction_mode, self.fraction_attempts)
            if sampled.active_on(attempt):
                return sampled
        return None

    def apply(self, label: str, attempt: int) -> Optional[CorruptResult]:
        """Inject the planned fault for (cell, attempt), if any.

        Raises :class:`InjectedFaultError` for ``raise`` mode, sleeps
        then falls through for ``hang`` mode (so the cell eventually
        produces its normal, correct result if nobody timed it out),
        and returns a :class:`CorruptResult` for ``corrupt`` mode.
        Returns None when no fault fires.
        """
        spec = self.fault_for(label, attempt)
        if spec is None:
            return None
        if spec.mode == MODE_RAISE:
            raise InjectedFaultError(
                f"injected crash: {label} attempt {attempt}"
            )
        if spec.mode == MODE_HANG:
            time.sleep(spec.hang_s)
            return None
        return CorruptResult(label, attempt)

    # -- serialisation --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "specs": [
                    {
                        "cell": s.cell,
                        "mode": s.mode,
                        "attempts": s.attempts,
                        "hang_s": s.hang_s,
                    }
                    for s in self.specs
                ],
                "seed": self.seed,
                "fraction": self.fraction,
                "fraction_mode": self.fraction_mode,
                "fraction_attempts": self.fraction_attempts,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        data = json.loads(blob)
        return cls(
            specs=tuple(FaultSpec(**s) for s in data.get("specs", ())),
            seed=data.get("seed", 0),
            fraction=data.get("fraction", 0.0),
            fraction_mode=data.get("fraction_mode", MODE_RAISE),
            fraction_attempts=data.get("fraction_attempts", 2),
        )

    # -- environment plumbing -------------------------------------------

    def install(self) -> None:
        """Publish the plan to this process and future pool workers."""
        os.environ[FAULT_PLAN_ENV] = self.to_json()

    @staticmethod
    def uninstall() -> None:
        os.environ.pop(FAULT_PLAN_ENV, None)

    def __enter__(self) -> "FaultPlan":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()


# Parsed-plan cache keyed on the raw env value, so the hot path costs
# one dict lookup per call and tests that swap plans are still seen.
_plan_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan published via ``REPRO_FAULT_PLAN``, or None."""
    global _plan_cache
    blob = os.environ.get(FAULT_PLAN_ENV)
    if not blob:
        return None
    cached_blob, cached_plan = _plan_cache
    if blob != cached_blob:
        try:
            cached_plan = FaultPlan.from_json(blob)
        except (ValueError, TypeError, KeyError):
            # A malformed plan must never take a real sweep down.
            cached_plan = None
        _plan_cache = (blob, cached_plan)
    return cached_plan


__all__ = [
    "FAULT_PLAN_ENV",
    "CorruptResult",
    "CorruptResultError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "MODE_CORRUPT",
    "MODE_HANG",
    "MODE_RAISE",
    "active_fault_plan",
]
