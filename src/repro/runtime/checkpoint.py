"""Crash-safe sweep checkpointing: a JSONL manifest of completed cells.

A figure sweep is a grid of deterministic cells; losing the process at
cell 180 of 200 should cost 20 cells, not 200. The
:class:`SweepCheckpoint` makes that true:

* Every completed cell appends **one JSON line** — its cache key, label,
  source and wall time — to a manifest file. Each append is flushed and
  ``fsync``'d before the executor moves on, so a kill -9 can lose at
  most the line being written.
* Loading tolerates a torn final line (the crash signature of an
  append-mode writer): complete lines are honoured, the partial tail is
  ignored. The next run re-executes only that one cell.
* Cell *results* live in the :class:`~repro.runtime.cache.ResultCache`
  (whose writes are atomic-rename, so they are never torn); the
  manifest only proves membership — "this cell of *this sweep* finished"
  — which is what lets ``repro figure --resume`` skip completed cells
  without trusting arbitrary cache contents.

Manifest keys embed ``repro.__version__`` (they are
:func:`~repro.runtime.cache.task_key` digests), so a manifest written by
older simulator code simply stops matching and the cells re-run — stale
checkpoints can never resurrect stale numbers.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterable, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Bump when the manifest line format changes.
MANIFEST_VERSION = 1

#: Default directory (inside the result-cache dir) for CLI manifests.
CHECKPOINT_DIRNAME = "checkpoints"


class SweepCheckpoint:
    """Append-only JSONL manifest of completed sweep-cell keys.

    Open with ``resume=True`` to load previously completed keys and keep
    appending, or ``resume=False`` (the default) to start a fresh
    manifest for a new sweep. Use as a context manager or call
    :meth:`close` so the underlying file handle is released.
    """

    def __init__(
        self,
        path: PathLike,
        sweep: str = "sweep",
        resume: bool = False,
    ) -> None:
        self.path = pathlib.Path(path)
        self.sweep = sweep
        self.completed: Dict[str, dict] = {}
        self._fh = None
        if resume and self.path.exists():
            self._load()
        #: Cells already complete when this run started (resume skips them).
        self.resumed_from = len(self.completed)
        if not resume or not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(self._header() + "\n", encoding="utf-8")

    # -- reading --------------------------------------------------------

    def _header(self) -> str:
        return json.dumps(
            {"manifest": MANIFEST_VERSION, "sweep": self.sweep},
            sort_keys=True,
        )

    def _load(self) -> None:
        try:
            blob = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in blob.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn trailing line is the expected crash artifact;
                # anything unparsable is simply not a completed cell.
                continue
            key = record.get("key")
            if key:
                self.completed[str(key)] = record

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)

    def keys(self) -> Iterable[str]:
        return self.completed.keys()

    # -- writing --------------------------------------------------------

    def record(
        self,
        key: str,
        label: str = "",
        source: str = "",
        wall_s: float = 0.0,
    ) -> None:
        """Durably mark one cell complete (flush + fsync per line)."""
        if key in self.completed:
            return
        record = {"key": key, "label": label, "source": source,
                  "wall_s": round(wall_s, 6)}
        self.completed[key] = record
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError:
            # Checkpointing is belt-and-braces on top of the result
            # cache; a full or read-only disk must not fail the sweep.
            pass

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def default_checkpoint_path(cache_dir: PathLike, sweep: str) -> pathlib.Path:
    """Where the CLI keeps the manifest for a named sweep."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in sweep)
    return pathlib.Path(cache_dir) / CHECKPOINT_DIRNAME / f"{safe}.manifest.jsonl"


__all__ = [
    "CHECKPOINT_DIRNAME",
    "MANIFEST_VERSION",
    "SweepCheckpoint",
    "default_checkpoint_path",
]
