"""repro: a reproduction of "Predict; Don't React for Enabling Efficient
Fine-Grain DVFS in GPUs" (PCSTALL, ASPLOS 2023).

Public API tour:

* :mod:`repro.config` - platform configuration (``small_config`` /
  ``paper_config``).
* :mod:`repro.gpu` - the GPU timing-simulator substrate.
* :mod:`repro.power` - power/energy model.
* :mod:`repro.core` - sensitivity metric, estimation models, the PC
  table, predictors, objectives, controller.
* :mod:`repro.dvfs` - the fork-and-pre-execute oracle, design registry,
  end-to-end simulation.
* :mod:`repro.workloads` - the 16-app synthetic suite.
* :mod:`repro.analysis` - experiment drivers for every paper figure.
* :mod:`repro.runtime` - parallel sweep executor, on-disk result cache,
  sweep instrumentation.
* :mod:`repro.telemetry` - zero-overhead-when-off observability:
  mergeable metrics registry, per-epoch decision trace, Perfetto
  export, prediction-accuracy drill-down.
* :mod:`repro.service` - the online decision service: ``repro serve``
  exposes PCSTALL (any servable design) over a length-prefixed JSON
  protocol with micro-batching and backpressure; ``repro replay``
  verifies it against offline traces bit-for-bit.
* :mod:`repro.validation` - differential validation: post-hoc invariant
  auditors over run artifacts, cross-checkers for the repo's
  bit-exactness claims, and the executable specs behind the property
  suites; wired into ``repro check``.
* :mod:`repro.bench` - the performance-regression benchmark suite:
  ``repro bench`` times the hot paths, emits versioned ``BENCH_*.json``
  reports, and gates them against committed baselines in CI.

Quickstart::

    from repro import small_config, make_controller, DvfsSimulation
    from repro.workloads import workload, build_workload
    from repro.core import EDnPObjective

    cfg = small_config()
    kernels = build_workload(workload("comd"), scale=0.5)
    ctrl = make_controller("PCSTALL", cfg, EDnPObjective(2))
    result = DvfsSimulation(kernels, ctrl, cfg).run()
    print(result.ed2p, result.prediction_accuracy)
"""

from repro.config import (
    DvfsConfig,
    GpuConfig,
    MemoryConfig,
    PowerConfig,
    SimConfig,
    default_frequency_grid,
    paper_config,
    small_config,
)
from repro.dvfs import DESIGN_NAMES, DvfsSimulation, OracleSampler, make_controller
from repro.runtime import ResultCache, SweepExecutor, SweepInstrumentation, SweepTask
from repro.telemetry import (
    AccuracyReport,
    EpochTraceRecorder,
    MetricsRegistry,
    TelemetryConfig,
)

__version__ = "1.10.0"

__all__ = [
    "DvfsConfig",
    "GpuConfig",
    "MemoryConfig",
    "PowerConfig",
    "SimConfig",
    "default_frequency_grid",
    "paper_config",
    "small_config",
    "DESIGN_NAMES",
    "DvfsSimulation",
    "OracleSampler",
    "make_controller",
    "ResultCache",
    "SweepExecutor",
    "SweepInstrumentation",
    "SweepTask",
    "AccuracyReport",
    "EpochTraceRecorder",
    "MetricsRegistry",
    "TelemetryConfig",
    "__version__",
]
