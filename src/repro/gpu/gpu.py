"""Top-level GPU: CUs + shared memory + V/f domains, epoch stepping.

The :class:`Gpu` orchestrates the CUs through fixed-time epochs. CUs in
different V/f domains advance in interleaved time quanta so the shared
memory subsystem observes requests in near-global-time order, which keeps
inter-domain contention effects (Section 5.1) intact without a global
per-cycle event queue.

``Gpu.clone()`` produces a deterministic deep snapshot: running the clone
and the original with the same frequencies yields bit-identical results.
This is the substrate for the paper's fork-and-pre-execute oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.config import GpuConfig
from repro.gpu.clock import DomainMap
from repro.gpu.cu import ComputeUnit, CuEpochStats
from repro.gpu.kernel import Kernel
from repro.gpu.memory import MemorySubsystem
from repro.gpu.wavefront import WavefrontStats


@dataclass(frozen=True)
class WaveEpochRecord:
    """What one wavefront did during an epoch (input to PCSTALL)."""

    wf_id: int
    age_rank: int
    start_pc_idx: int
    next_pc_idx: int
    stats: WavefrontStats


@dataclass(frozen=True)
class GpuSnapshot:
    """Flat-state snapshot of a :class:`Gpu` (see :meth:`Gpu.snapshot`).

    Everything mutable is captured as plain tuples of scalars; immutable
    structures (``Program`` objects, configs) are shared by reference -
    copy-on-write in spirit, since nothing ever mutates them. Restoring
    into a live GPU (:meth:`Gpu.restore`) reuses its wavefront/stats
    objects, so replaying an epoch many times from one snapshot - the
    oracle's fork-and-pre-execute loop - allocates almost nothing.
    """

    config: "GpuConfig"
    time: float
    pending_transitions: int
    next_wg_base: int
    domains: tuple
    memory: tuple
    cus: Tuple[tuple, ...]
    #: Estimated payload size (bytes) for the hot-path profiler.
    nbytes: int


@dataclass(frozen=True)
class EpochResult:
    """Everything observable about one elapsed epoch."""

    t_start: float
    t_end: float
    frequencies_ghz: Tuple[float, ...]
    cu_stats: Tuple[CuEpochStats, ...]
    wave_records: Tuple[Tuple[WaveEpochRecord, ...], ...]
    transitions: int

    @property
    def duration_ns(self) -> float:
        return self.t_end - self.t_start

    def committed_per_cu(self) -> List[int]:
        return [s.committed for s in self.cu_stats]

    def total_committed(self) -> int:
        return sum(s.committed for s in self.cu_stats)


class Gpu:
    """The simulated GPU."""

    def __init__(self, config: GpuConfig, initial_freq_ghz: float = 1.7) -> None:
        self.config = config
        self.memory = MemorySubsystem(config.memory)
        self.cus = [ComputeUnit(i, config) for i in range(config.n_cus)]
        self.domains = DomainMap(config, initial_freq_ghz)
        for cu in self.cus:
            cu.frequency_ghz = initial_freq_ghz
        self.time = 0.0
        self._pending_transitions = 0
        self._next_wg_base = 0
        # Hot-path counters (observational only; see repro.runtime.profiling).
        self.ctr_clones = 0
        self.ctr_clone_bytes = 0
        self.ctr_snapshots = 0
        self.ctr_snapshot_bytes = 0
        self.ctr_restores = 0

    # ------------------------------------------------------------------
    # Workload loading

    def load_kernel(self, kernel: Kernel, cu_ids: Optional[Sequence[int]] = None) -> None:
        """Distribute the kernel's workgroups across CUs round-robin.

        ``cu_ids`` restricts dispatch to a subset of CUs - the
        co-location scenario where different tenants own different CUs
        (and, with per-CU V/f domains, get independently tuned
        frequencies). Workgroup ids are globally unique across loads so
        concurrent kernels cannot collide in barrier bookkeeping.
        """
        targets = list(cu_ids) if cu_ids is not None else list(range(len(self.cus)))
        for cu_id in targets:
            if not 0 <= cu_id < len(self.cus):
                raise ValueError(f"cu id {cu_id} out of range")
        base = self._next_wg_base
        for wg in range(kernel.geometry.n_workgroups):
            cu = self.cus[targets[wg % len(targets)]]
            # Compile at load time: every wave of the kernel shares the
            # program's cached decode table by reference.
            waves = [
                (base + wg, w, kernel.program_for(wg, w).compiled)
                for w in range(kernel.geometry.waves_per_workgroup)
            ]
            cu.enqueue_workgroup(waves)
        self._next_wg_base = base + kernel.geometry.n_workgroups
        for cu in self.cus:
            cu.try_dispatch(self.time)

    @property
    def done(self) -> bool:
        return all(cu.idle for cu in self.cus)

    def resident_wave_count(self) -> int:
        return sum(cu.resident_wave_count for cu in self.cus)

    @property
    def completion_time(self) -> float:
        """Time the last wavefront retired (valid once ``done``)."""
        return max(cu.last_retire_time for cu in self.cus)

    # ------------------------------------------------------------------
    # Frequency control

    def set_domain_frequencies(
        self, freqs_ghz: Sequence[float], transition_latency_ns: float = 0.0
    ) -> int:
        """Apply per-domain frequencies for the next epoch.

        A domain whose frequency actually changes is frozen for
        ``transition_latency_ns`` (its CUs cannot issue until the V/f
        transition settles). Returns the number of domains that changed.
        """
        if len(freqs_ghz) != len(self.domains):
            raise ValueError(
                f"expected {len(self.domains)} frequencies, got {len(freqs_ghz)}"
            )
        changed = 0
        for domain, f in zip(self.domains, freqs_ghz):
            if f != domain.frequency_ghz:
                changed += 1
                domain.frequency_ghz = f
                domain.transitions += 1
                for cu_id in domain.cu_ids:
                    cu = self.cus[cu_id]
                    cu.frequency_ghz = f
                    if transition_latency_ns > 0.0:
                        cu.now = max(cu.now, self.time + transition_latency_ns)
        self._pending_transitions += changed
        return changed

    def domain_frequencies(self) -> List[float]:
        return self.domains.frequencies()

    # ------------------------------------------------------------------
    # Epoch stepping

    def run_epoch(self, epoch_ns: float, collect_waves: bool = True) -> EpochResult:
        """Advance all CUs by one fixed-time epoch and collect stats.

        ``collect_waves=False`` skips materialising the per-wavefront
        :class:`WaveEpochRecord` tuples (one stats clone per resident
        wave). Callers that only consume CU-level aggregates - the
        oracle's forked pre-executions read nothing but
        :meth:`committed_per_domain` - use this to keep the sampling
        loop allocation-free; ``wave_records`` is then empty.
        """
        t0 = self.time
        t1 = t0 + epoch_ns
        for cu in self.cus:
            cu.begin_epoch(t0)
        quantum = min(self.config.sync_quantum_ns, epoch_ns)
        t = t0
        while t < t1 - 1e-9:
            t = min(t + quantum, t1)
            for cu in self.cus:
                cu.run_until(t, self.memory)
        for cu in self.cus:
            cu.settle_epoch(t1)
        self.time = t1

        wave_records: List[Tuple[WaveEpochRecord, ...]] = []
        cu_stats: List[CuEpochStats] = []
        for cu in self.cus:
            if collect_waves:
                records = tuple(
                    WaveEpochRecord(
                        wf_id=wf.wf_id,
                        age_rank=rank,
                        start_pc_idx=wf.stats.epoch_start_pc_idx,
                        next_pc_idx=wf.pc_idx,
                        stats=wf.stats.clone(),
                    )
                    for rank, wf in enumerate(cu.waves)
                )
                wave_records.append(records)
            cu_stats.append(cu.stats.clone())

        transitions = self._pending_transitions
        self._pending_transitions = 0
        return EpochResult(
            t_start=t0,
            t_end=t1,
            frequencies_ghz=tuple(self.domains.frequencies()),
            cu_stats=tuple(cu_stats),
            wave_records=tuple(wave_records),
            transitions=transitions,
        )

    def run_to_completion(self, epoch_ns: float, max_epochs: int = 1_000_000) -> List[EpochResult]:
        """Run epochs at current frequencies until all work finishes."""
        results: List[EpochResult] = []
        for _ in range(max_epochs):
            if self.done:
                break
            results.append(self.run_epoch(epoch_ns))
        return results

    # ------------------------------------------------------------------
    # Domain-level aggregation helpers

    def committed_per_domain(self, result: EpochResult) -> List[int]:
        out = []
        for domain in self.domains:
            out.append(sum(result.cu_stats[cu_id].committed for cu_id in domain.cu_ids))
        return out

    # ------------------------------------------------------------------
    # Snapshot

    def state_nbytes(self) -> int:
        """Estimated size (bytes) of the mutable simulator state."""
        return self.memory.capture_nbytes() + 8 * 3 + 16 * len(self.domains) + sum(
            cu.capture_nbytes() for cu in self.cus
        )

    def clone(self) -> "Gpu":
        self.ctr_clones += 1
        self.ctr_clone_bytes += self.state_nbytes()
        out = Gpu.__new__(Gpu)
        out.config = self.config
        out.memory = self.memory.clone()
        out.cus = [cu.clone() for cu in self.cus]
        out.domains = self.domains.clone()
        out.time = self.time
        out._pending_transitions = self._pending_transitions
        out._next_wg_base = self._next_wg_base
        out.ctr_clones = 0
        out.ctr_clone_bytes = 0
        out.ctr_snapshots = 0
        out.ctr_snapshot_bytes = 0
        out.ctr_restores = 0
        return out

    def snapshot(self) -> GpuSnapshot:
        """Capture the full mutable state as a :class:`GpuSnapshot`.

        Unlike :meth:`clone`, no simulator objects are allocated: the
        snapshot is flat tuples plus shared immutable references, and
        :meth:`restore` writes it back into existing objects. This is
        what makes the oracle's ~10 forks per epoch cheap.
        """
        cus = tuple(cu.capture() for cu in self.cus)
        snap = GpuSnapshot(
            config=self.config,
            time=self.time,
            pending_transitions=self._pending_transitions,
            next_wg_base=self._next_wg_base,
            domains=self.domains.capture(),
            memory=self.memory.capture(),
            cus=cus,
            nbytes=self.state_nbytes(),
        )
        self.ctr_snapshots += 1
        self.ctr_snapshot_bytes += snap.nbytes
        return snap

    def restore(self, snap: GpuSnapshot) -> None:
        """Overwrite this GPU's state from a snapshot, reusing objects.

        The snapshot must come from a GPU built on the same config
        (same geometry); wavefront objects still resident under their
        snapshot ``wf_id`` are reused rather than reallocated.
        """
        if snap.config is not self.config:
            raise ValueError("snapshot comes from a different platform config")
        self.time = snap.time
        self._pending_transitions = snap.pending_transitions
        self._next_wg_base = snap.next_wg_base
        self.domains.restore_capture(snap.domains)
        self.memory.restore_capture(snap.memory)
        for cu, cap in zip(self.cus, snap.cus):
            cu.restore_capture(cap)
        self.ctr_restores += 1

    @classmethod
    def from_snapshot(cls, snap: GpuSnapshot) -> "Gpu":
        """Materialise a fresh GPU from a snapshot."""
        out = cls(snap.config)
        out.restore(snap)
        return out


__all__ = ["Gpu", "GpuSnapshot", "EpochResult", "WaveEpochRecord"]
