"""Cycle-approximate GPU timing-simulator substrate.

This subpackage provides the execution substrate the DVFS study runs on:
an AMD GCN/Vega-flavoured GPU with compute units (CUs) that schedule many
in-order wavefronts ("oldest-first"), ``s_waitcnt``-style memory counters,
and a shared L2/DRAM memory subsystem in its own fixed-frequency domain.

It replaces the gem5 GCN3 model used by the paper; see DESIGN.md for the
substitution argument.
"""

from repro.gpu.isa import Instruction, InstructionKind, Program, waitcnt, valu, salu, load, store, barrier, branch
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.gpu.wavefront import Wavefront, WavefrontStats
from repro.gpu.memory import MemorySubsystem, MemoryRequest
from repro.gpu.cu import ComputeUnit
from repro.gpu.clock import ClockDomain, DomainMap
from repro.gpu.gpu import Gpu, EpochResult

__all__ = [
    "Instruction",
    "InstructionKind",
    "Program",
    "waitcnt",
    "valu",
    "salu",
    "load",
    "store",
    "barrier",
    "branch",
    "Kernel",
    "WorkgroupGeometry",
    "Wavefront",
    "WavefrontStats",
    "MemorySubsystem",
    "MemoryRequest",
    "ComputeUnit",
    "ClockDomain",
    "DomainMap",
    "Gpu",
    "EpochResult",
]
