"""A minimal GCN/Vega-flavoured instruction set for the timing simulator.

The DVFS predictor only observes timing events (commits, stalls, PCs), so
the ISA models *timing semantics*, not data values:

* ``VALU``/``SALU`` — compute; cost is CU cycles, so wall-clock time scales
  inversely with the CU's frequency.
* ``LOAD``/``STORE`` — issue in one cycle, complete after a latency mostly
  paid in the fixed-frequency memory domain; tracked by the wavefront's
  outstanding-operation counters (``vmcnt`` analogue).
* ``WAITCNT`` — block the wavefront until its outstanding counter drops to
  the operand; this is where memory stall time is observable (the STALL
  model measures time blocked here, exactly as the paper measures time
  blocked at ``s_waitcnt``).
* ``BARRIER`` — block until all wavefronts of the workgroup arrive.
* ``BRANCH`` — a backwards loop branch with a per-wavefront trip count;
  this is what makes kernel execution iterative, which the PC-indexed
  predictor exploits.
* ``ENDPGM`` — terminates the wavefront.

Instructions are 4 bytes (``GpuConfig.instruction_bytes``), so the
PC-table's 4-bit offset covers 4 instructions per entry as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class InstructionKind(enum.IntEnum):
    """Timing classes of instructions."""

    VALU = 0
    SALU = 1
    LOAD = 2
    STORE = 3
    WAITCNT = 4
    BARRIER = 5
    BRANCH = 6
    ENDPGM = 7


#: Kinds that occupy an issue slot for a compute latency.
COMPUTE_KINDS = (InstructionKind.VALU, InstructionKind.SALU)
#: Kinds that create outstanding memory operations.
MEMORY_KINDS = (InstructionKind.LOAD, InstructionKind.STORE)

# Class-level membership tables: O(1) frozenset lookups instead of tuple
# scans in `Instruction.is_compute`/`is_memory` (hot in the estimation
# models). Attached after class creation - EnumMeta allows new non-member
# attributes, it only protects the members themselves.
InstructionKind.COMPUTE_SET = frozenset(COMPUTE_KINDS)  # type: ignore[attr-defined]
InstructionKind.MEMORY_SET = frozenset(MEMORY_KINDS)  # type: ignore[attr-defined]
_COMPUTE_SET = InstructionKind.COMPUTE_SET  # type: ignore[attr-defined]
_MEMORY_SET = InstructionKind.MEMORY_SET  # type: ignore[attr-defined]


@dataclass(frozen=True)
class Instruction:
    """One static instruction of a kernel.

    Attributes:
        kind: timing class.
        cycles: CU cycles the instruction occupies its wavefront for
            (compute kinds); issue cost for memory kinds.
        l1_hit_rate: probability-like fraction of accesses that hit in L1
            (memory kinds). Realised deterministically by the wavefront's
            access counters so execution is reproducible and snapshotable.
        l2_hit_rate: fraction of L1 misses that hit in L2.
        pattern_jitter: fraction of this access's hit/miss outcome that
            varies from loop iteration to loop iteration (0 = the static
            instruction always hits or always misses, like a fixed access
            pattern; 1 = fully iteration-dependent, like data-dependent
            random lookups). Memory kinds only.
        wait_target: for ``WAITCNT``, the outstanding count the wavefront
            must drain to before proceeding (0 = wait for all).
        branch_target: for ``BRANCH``, the *instruction index* jumped to
            while iterations remain.
        trip_count: for ``BRANCH``, how many times the backwards jump is
            taken before falling through.
    """

    kind: InstructionKind
    cycles: int = 1
    l1_hit_rate: float = 0.0
    l2_hit_rate: float = 0.0
    pattern_jitter: float = 0.15
    wait_target: int = 0
    branch_target: int = 0
    trip_count: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("instruction cost must be at least one cycle")
        if not 0.0 <= self.l1_hit_rate <= 1.0:
            raise ValueError("l1_hit_rate must be within [0, 1]")
        if not 0.0 <= self.l2_hit_rate <= 1.0:
            raise ValueError("l2_hit_rate must be within [0, 1]")
        if not 0.0 <= self.pattern_jitter <= 1.0:
            raise ValueError("pattern_jitter must be within [0, 1]")
        if self.kind is InstructionKind.BRANCH:
            if self.trip_count < 0:
                raise ValueError("trip_count must be non-negative")
            if self.branch_target < 0:
                raise ValueError("branch_target must be non-negative")

    @property
    def is_compute(self) -> bool:
        return self.kind in _COMPUTE_SET

    @property
    def is_memory(self) -> bool:
        return self.kind in _MEMORY_SET


def valu(cycles: int = 4) -> Instruction:
    """A vector-ALU instruction (default 4-cycle pipeline occupancy)."""
    return Instruction(InstructionKind.VALU, cycles=cycles)


def salu(cycles: int = 1) -> Instruction:
    """A scalar-ALU instruction."""
    return Instruction(InstructionKind.SALU, cycles=cycles)


def load(
    l1_hit_rate: float = 0.5,
    l2_hit_rate: float = 0.5,
    cycles: int = 1,
    pattern_jitter: float = 0.15,
) -> Instruction:
    """A vector memory load."""
    return Instruction(
        InstructionKind.LOAD,
        cycles=cycles,
        l1_hit_rate=l1_hit_rate,
        l2_hit_rate=l2_hit_rate,
        pattern_jitter=pattern_jitter,
    )


def store(
    l1_hit_rate: float = 0.7,
    l2_hit_rate: float = 0.6,
    cycles: int = 1,
    pattern_jitter: float = 0.15,
) -> Instruction:
    """A vector memory store (write-through; completion still tracked)."""
    return Instruction(
        InstructionKind.STORE,
        cycles=cycles,
        l1_hit_rate=l1_hit_rate,
        l2_hit_rate=l2_hit_rate,
        pattern_jitter=pattern_jitter,
    )


def waitcnt(target: int = 0) -> Instruction:
    """An ``s_waitcnt``-style fence on outstanding memory operations."""
    return Instruction(InstructionKind.WAITCNT, wait_target=target)


def barrier() -> Instruction:
    """A workgroup execution barrier (``s_barrier``)."""
    return Instruction(InstructionKind.BARRIER)


def branch(target: int, trip_count: int) -> Instruction:
    """A backwards branch forming a loop taken ``trip_count`` times."""
    return Instruction(InstructionKind.BRANCH, branch_target=target, trip_count=trip_count)


def endpgm() -> Instruction:
    return Instruction(InstructionKind.ENDPGM)


@dataclass(frozen=True)
class Program:
    """An immutable sequence of instructions shared by all wavefronts.

    The program is validated on construction: it must end with ``ENDPGM``
    and all branch targets must be backwards and in range (forward control
    flow is modelled by generating different programs, which is sufficient
    for phase-behaviour studies).
    """

    instructions: Tuple[Instruction, ...]
    name: str = "kernel"

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("program must not be empty")
        if self.instructions[-1].kind is not InstructionKind.ENDPGM:
            raise ValueError("program must end with ENDPGM")
        for idx, instr in enumerate(self.instructions):
            if instr.kind is InstructionKind.BRANCH:
                if instr.branch_target >= idx:
                    raise ValueError(
                        f"branch at {idx} must jump backwards (target {instr.branch_target})"
                    )
            if instr.kind is InstructionKind.ENDPGM and idx != len(self.instructions) - 1:
                raise ValueError("ENDPGM must be the final instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    def pc_of(self, idx: int, instruction_bytes: int = 4) -> int:
        """Byte address of the instruction at ``idx``."""
        return idx * instruction_bytes

    @property
    def compiled(self) -> "CompiledProgram":
        """This program's flat decode table, built once and cached.

        The cache lives in the instance ``__dict__`` (dict mutation
        bypasses the frozen ``__setattr__``) and is excluded from pickles
        by ``__getstate__``, so a program and its table never recurse
        through the pickle memo.
        """
        out = self.__dict__.get("_compiled")
        if out is None:
            out = CompiledProgram(self)
            self.__dict__["_compiled"] = out
        return out

    def __getstate__(self) -> Tuple[Tuple[Instruction, ...], str]:
        return (self.instructions, self.name)

    def __setstate__(self, state: Tuple[Tuple[Instruction, ...], str]) -> None:
        object.__setattr__(self, "instructions", state[0])
        object.__setattr__(self, "name", state[1])

    @staticmethod
    def from_list(instrs: Sequence[Instruction], name: str = "kernel") -> "Program":
        return Program(tuple(instrs), name=name)


def compile_program(program: Program) -> "CompiledProgram":
    """The program's cached decode table (also the pickle reconstructor)."""
    return program.compiled


class CompiledProgram:
    """Immutable flat decode table of a :class:`Program`.

    Built once per program at kernel-load time, then indexed by
    ``pc_idx`` on every issue instead of materialising an
    :class:`Instruction` per commit: parallel tuples of plain ints and
    floats, so the hot issue paths dispatch on an int compare and chase
    no dataclass attributes. ``batchable[pc]`` marks the kinds the
    event engine's single-wave straight-line batcher may retire
    (VALU/SALU/BRANCH).

    :meth:`costs_for` precomputes ``cycles * cycle_ns`` per frequency:
    each entry is produced by exactly the float multiply the dataclass
    path evaluates (``instr.cycles * cycle``), so timing stays
    bit-identical - the table only hoists the multiply out of the loop.

    Tables are shared by reference across ``clone()``/``snapshot()``/
    ``from_snapshot()`` (zero bytes per oracle fork) and compare equal
    by their source program, so separately-built engines with equal
    programs still agree on captured state.
    """

    __slots__ = (
        "source",
        "kinds",
        "cycles",
        "l1_hit_rates",
        "l2_hit_rates",
        "pattern_jitters",
        "wait_targets",
        "branch_targets",
        "trip_counts",
        "batchable",
        "_cost_cache",
    )

    def __init__(self, source: Program) -> None:
        instrs = source.instructions
        self.source = source
        self.kinds: Tuple[int, ...] = tuple(int(i.kind) for i in instrs)
        self.cycles: Tuple[int, ...] = tuple(i.cycles for i in instrs)
        self.l1_hit_rates: Tuple[float, ...] = tuple(i.l1_hit_rate for i in instrs)
        self.l2_hit_rates: Tuple[float, ...] = tuple(i.l2_hit_rate for i in instrs)
        self.pattern_jitters: Tuple[float, ...] = tuple(i.pattern_jitter for i in instrs)
        self.wait_targets: Tuple[int, ...] = tuple(i.wait_target for i in instrs)
        self.branch_targets: Tuple[int, ...] = tuple(i.branch_target for i in instrs)
        self.trip_counts: Tuple[int, ...] = tuple(i.trip_count for i in instrs)
        batch_kinds = (
            int(InstructionKind.VALU),
            int(InstructionKind.SALU),
            int(InstructionKind.BRANCH),
        )
        self.batchable: Tuple[bool, ...] = tuple(k in batch_kinds for k in self.kinds)
        #: Per-frequency cost tables, keyed by cycle period (ns). The DVFS
        #: grid is small (10 states), so this saturates immediately.
        self._cost_cache: Dict[float, Tuple[float, ...]] = {}

    def costs_for(self, cycle: float) -> Tuple[float, ...]:
        """Per-instruction ``cycles * cycle`` (ns) at one cycle period."""
        costs = self._cost_cache.get(cycle)
        if costs is None:
            costs = self._cost_cache[cycle] = tuple(c * cycle for c in self.cycles)
        return costs

    @property
    def name(self) -> str:
        return self.source.name

    def __len__(self) -> int:
        return len(self.kinds)

    def decompile(self) -> Tuple[Instruction, ...]:
        """Rebuild the instruction list purely from the flat arrays.

        Exists for the round-trip property tests: equality with
        ``source.instructions`` proves the table lost nothing.
        """
        return tuple(
            Instruction(
                kind=InstructionKind(k),
                cycles=cy,
                l1_hit_rate=l1,
                l2_hit_rate=l2,
                pattern_jitter=j,
                wait_target=w,
                branch_target=b,
                trip_count=t,
            )
            for k, cy, l1, l2, j, w, b, t in zip(
                self.kinds,
                self.cycles,
                self.l1_hit_rates,
                self.l2_hit_rates,
                self.pattern_jitters,
                self.wait_targets,
                self.branch_targets,
                self.trip_counts,
            )
        )

    def canonical_key(self):
        """Cache-key identity: the table is a pure function of its source
        program, so it canonicalises as that program (see
        :func:`repro.runtime.cache.canonicalize`)."""
        return self.source

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CompiledProgram):
            return NotImplemented
        return self.source == other.source

    def __hash__(self) -> int:
        return hash(self.source)

    def __reduce__(self):
        # Rebuild through the source program's cache: unpickling a GPU
        # restores one shared table per program, never a copy per wave.
        return (compile_program, (self.source,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledProgram({self.source.name!r}, {len(self)} instrs)"


class ProgramBuilder:
    """Convenience builder for programs with loops.

    Example::

        b = ProgramBuilder()
        top = b.label()
        b.emit(valu(), valu(), load(0.5, 0.5), waitcnt(0))
        b.loop_back(top, trips=100)
        program = b.build("my-kernel")
    """

    def __init__(self) -> None:
        self._instrs: List[Instruction] = []

    def label(self) -> int:
        """Current instruction index, usable as a branch target."""
        return len(self._instrs)

    def emit(self, *instrs: Instruction) -> "ProgramBuilder":
        self._instrs.extend(instrs)
        return self

    def loop_back(self, target: int, trips: int) -> "ProgramBuilder":
        self._instrs.append(branch(target, trips))
        return self

    def build(self, name: str = "kernel") -> Program:
        self._instrs.append(endpgm())
        program = Program(tuple(self._instrs), name=name)
        self._instrs = []
        return program


__all__ = [
    "InstructionKind",
    "Instruction",
    "Program",
    "CompiledProgram",
    "compile_program",
    "ProgramBuilder",
    "COMPUTE_KINDS",
    "MEMORY_KINDS",
    "valu",
    "salu",
    "load",
    "store",
    "waitcnt",
    "barrier",
    "branch",
    "endpgm",
]
