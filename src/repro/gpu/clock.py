"""V/f domains and the domain-to-CU map.

A :class:`ClockDomain` groups one or more CUs (plus their L1 caches,
Figure 4) behind a single IVR + FLL, so all its CUs share one frequency.
Section 6.5 evaluates domain granularities from one CU per domain up to
32; :class:`DomainMap` expresses that mapping.

Frequency changes are only applied at epoch boundaries (fixed-time-epoch
control, Section 3.1) and cost the transition latency of the V/f
technology: the domain's CUs are frozen for that long.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.config import GpuConfig


@dataclass
class ClockDomain:
    """One V/f domain: a set of CU ids sharing a frequency."""

    domain_id: int
    cu_ids: Tuple[int, ...]
    frequency_ghz: float
    transitions: int = 0

    def clone(self) -> "ClockDomain":
        return ClockDomain(self.domain_id, self.cu_ids, self.frequency_ghz, self.transitions)


class DomainMap:
    """All V/f domains of the GPU and their current frequencies."""

    def __init__(self, gpu_config: GpuConfig, initial_freq_ghz: float) -> None:
        self.domains: List[ClockDomain] = []
        per = gpu_config.cus_per_domain
        for d in range(gpu_config.n_domains):
            cu_ids = tuple(range(d * per, (d + 1) * per))
            self.domains.append(ClockDomain(d, cu_ids, initial_freq_ghz))

    def __len__(self) -> int:
        return len(self.domains)

    def __iter__(self):
        return iter(self.domains)

    def __getitem__(self, idx: int) -> ClockDomain:
        return self.domains[idx]

    def frequencies(self) -> List[float]:
        return [d.frequency_ghz for d in self.domains]

    def domain_of_cu(self, cu_id: int) -> ClockDomain:
        for d in self.domains:
            if cu_id in d.cu_ids:
                return d
        raise KeyError(f"cu {cu_id} not in any domain")

    def clone(self) -> "DomainMap":
        out = DomainMap.__new__(DomainMap)
        out.domains = [d.clone() for d in self.domains]
        return out

    def capture(self) -> tuple:
        """Flat-tuple snapshot of the mutable per-domain state."""
        return tuple((d.frequency_ghz, d.transitions) for d in self.domains)

    def restore_capture(self, cap: tuple) -> None:
        for domain, (freq, transitions) in zip(self.domains, cap):
            domain.frequency_ghz = freq
            domain.transitions = transitions


__all__ = ["ClockDomain", "DomainMap"]
