"""Shared memory subsystem: banked L2, DRAM channels, contention, thrash.

The memory subsystem lives in a fixed-frequency V/f domain (1.6 GHz in the
paper, Section 5), so every latency here is expressed in nanoseconds and
is *independent of CU frequency* - this frequency-independence is exactly
what creates frequency-insensitive ("memory-bound") phases.

Contention is modelled with per-bank/per-channel ``busy_until`` service
queues: a request arriving while its bank is busy waits for the backlog.
Because CUs from every V/f domain share these queues, the performance of
one domain depends on the frequencies of the others - the interference
effect that the paper's fork-and-shuffle oracle methodology must cope with
(Section 5.1).

A simple thrash model degrades the effective L2 hit rate when the
aggregate request rate exceeds a threshold, reproducing the second-order
effect reported for ``FwdSoft`` (Section 6.2): running many CUs faster can
*hurt* performance by thrashing the L2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import MemoryConfig

_PHI = 0.6180339887498949


@dataclass(frozen=True)
class MemoryRequest:
    """Outcome of a memory request as seen by the issuing CU."""

    completion_ns: float
    level: str  # "l2" or "dram"
    queue_ns: float


class MemorySubsystem:
    """Banked L2 + DRAM with deterministic contention modelling.

    State is intentionally small (bank/channel ``busy_until`` arrays plus
    a few counters) so oracle snapshots are cheap.
    """

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.bank_busy_until: List[float] = [0.0] * config.n_l2_banks
        self.channel_busy_until: List[float] = [0.0] * config.n_dram_channels
        self.request_counter = 0
        self.thrash_counter = 0
        # Exponential moving average of the aggregate request rate
        # (requests per ns), used by the thrash model.
        self.rate_ema = 0.0
        self.last_request_ns = 0.0

    # ------------------------------------------------------------------

    def _update_rate(self, now: float) -> None:
        gap = now - self.last_request_ns
        self.last_request_ns = now
        if gap < 0:
            # Requests from differently-clocked CUs are processed in
            # near-time order; small reorderings are treated as
            # simultaneous arrivals.
            gap = 0.0
        inst_rate = 1.0 / (gap + 0.5)  # +0.5 ns guards the singularity
        alpha = 0.05
        self.rate_ema = (1 - alpha) * self.rate_ema + alpha * inst_rate

    def thrash_degradation(self) -> float:
        """Fraction of would-be L2 hits converted to misses right now."""
        cfg = self.config
        if self.rate_ema <= cfg.l2_thrash_rate_per_ns:
            return 0.0
        excess = (self.rate_ema - cfg.l2_thrash_rate_per_ns) / cfg.l2_thrash_rate_per_ns
        return min(1.0, excess) * cfg.l2_thrash_max_degradation

    def _draw(self) -> float:
        self.thrash_counter += 1
        return (self.thrash_counter * _PHI) % 1.0

    # ------------------------------------------------------------------

    def request(self, now: float, l2_hit: bool, bank_key: int = 0) -> MemoryRequest:
        """Service an L1 miss arriving at the L2 at time ``now`` (ns).

        Args:
            now: issue time at the CU.
            l2_hit: whether the access would hit in L2 absent thrashing.
            bank_key: address-derived key selecting the L2 bank. Must be
                a pure function of the access (not of arrival order), so
                that one domain's frequency cannot re-map another
                domain's bank conflicts.

        Returns:
            The request outcome including its completion time.
        """
        cfg = self.config
        self.request_counter += 1
        self._update_rate(now)

        if l2_hit and self.thrash_degradation() > 0.0:
            if self._draw() < self.thrash_degradation():
                l2_hit = False

        bank = (bank_key * 2654435761) % cfg.n_l2_banks
        arrive = now + cfg.l2_interconnect_ns
        start = max(arrive, self.bank_busy_until[bank])
        queue_ns = start - arrive
        self.bank_busy_until[bank] = start + cfg.l2_service_ns

        if l2_hit:
            done = start + cfg.l2_service_ns + cfg.l2_hit_extra_ns
            completion = done + cfg.l2_interconnect_ns
            return MemoryRequest(completion, "l2", queue_ns)

        channel = bank % cfg.n_dram_channels
        d_arrive = start + cfg.l2_service_ns
        d_start = max(d_arrive, self.channel_busy_until[channel])
        queue_ns += d_start - d_arrive
        self.channel_busy_until[channel] = d_start + cfg.dram_service_ns
        done = d_start + cfg.dram_service_ns + cfg.dram_extra_ns
        completion = done + cfg.l2_interconnect_ns
        return MemoryRequest(completion, "dram", queue_ns)

    # ------------------------------------------------------------------

    def clone(self) -> "MemorySubsystem":
        out = MemorySubsystem.__new__(MemorySubsystem)
        out.config = self.config
        out.bank_busy_until = list(self.bank_busy_until)
        out.channel_busy_until = list(self.channel_busy_until)
        out.request_counter = self.request_counter
        out.thrash_counter = self.thrash_counter
        out.rate_ema = self.rate_ema
        out.last_request_ns = self.last_request_ns
        return out

    def capture(self) -> tuple:
        """Flat-tuple snapshot (allocation-free restore, see ``Gpu.snapshot``)."""
        return (
            tuple(self.bank_busy_until),
            tuple(self.channel_busy_until),
            self.request_counter,
            self.thrash_counter,
            self.rate_ema,
            self.last_request_ns,
        )

    def restore_capture(self, cap: tuple) -> None:
        """Overwrite state in place from a :meth:`capture` tuple."""
        (
            banks,
            channels,
            self.request_counter,
            self.thrash_counter,
            self.rate_ema,
            self.last_request_ns,
        ) = cap
        self.bank_busy_until[:] = banks
        self.channel_busy_until[:] = channels

    def capture_nbytes(self) -> int:
        """Rough payload size of :meth:`capture` (for the profiler)."""
        return 8 * (4 + len(self.bank_busy_until) + len(self.channel_busy_until))


__all__ = ["MemorySubsystem", "MemoryRequest"]
