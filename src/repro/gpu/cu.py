"""Compute Unit: oldest-first wavefront scheduling, event-driven timing.

Each CU holds up to ``waves_per_cu`` resident wavefronts and issues up to
``issue_width`` instructions per cycle from the oldest ready wavefronts
("oldest-first" scheduling, the policy the paper attributes the
inter-wavefront contention profile to, Section 4.3 / Figure 11a).

The CU runs event-driven: when at least one wavefront is ready it advances
cycle by cycle; when everything is stalled on memory it jumps straight to
the next completion. Compute cycles cost ``1/f`` ns (frequency-dependent);
L1 hits are served inside the CU's V/f domain (cycles); L1 misses go to
the shared :class:`~repro.gpu.memory.MemorySubsystem` (fixed-frequency
nanoseconds).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.config import GpuConfig
from repro.gpu.isa import InstructionKind, Program
from repro.gpu.memory import MemorySubsystem
from repro.gpu.wavefront import Wavefront

#: A pending workgroup: tuple of (workgroup_id, wave_in_group, program).
PendingWave = Tuple[int, int, Program]


@dataclass
class CuEpochStats:
    """CU-level per-epoch aggregates (inputs to CU-level models & power)."""

    committed: int = 0
    committed_compute: int = 0
    committed_memory: int = 0
    issued: int = 0
    active_cycles: int = 0
    #: Time (ns) during which at least one wavefront was executing or
    #: ready to execute (not blocked on memory/barriers). The interval
    #: models use this as the CU's core time: the remainder of the epoch
    #: is asynchronous (memory) time.
    core_busy_ns: float = 0.0
    loads: int = 0
    stores: int = 0

    def reset(self) -> None:
        self.committed = 0
        self.committed_compute = 0
        self.committed_memory = 0
        self.issued = 0
        self.active_cycles = 0
        self.core_busy_ns = 0.0
        self.loads = 0
        self.stores = 0

    def clone(self) -> "CuEpochStats":
        out = CuEpochStats()
        out.__dict__.update(self.__dict__)
        return out


class ComputeUnit:
    """One compute unit of the GPU."""

    def __init__(self, cu_id: int, config: GpuConfig) -> None:
        self.cu_id = cu_id
        self.config = config
        self.frequency_ghz = 1.7
        self.now = 0.0
        self.epoch_start = 0.0
        #: Resident wavefronts in age order (oldest first).
        self.waves: List[Wavefront] = []
        #: Pending workgroups waiting for free slots; each entry is the
        #: full list of that workgroup's waves (dispatched atomically so
        #: barriers cannot deadlock).
        self.pending_workgroups: List[Tuple[PendingWave, ...]] = []
        #: Min-heap of (completion_ns, seq, wf_id, is_store).
        self.completions: List[Tuple[float, int, int, bool]] = []
        self._completion_seq = 0
        #: wavefronts by id for completion delivery.
        self.wave_by_id: Dict[int, Wavefront] = {}
        #: Barrier arrival counts per workgroup id.
        self.barrier_arrived: Dict[int, int] = {}
        #: Alive (not ENDPGM'd) waves per workgroup id.
        self.wg_alive: Dict[int, int] = {}
        self._next_age = 0
        self._next_wf_id = cu_id * 1_000_000
        self.stats = CuEpochStats()
        #: Time the most recent wavefront retired (completion tracking).
        self.last_retire_time = 0.0

    # ------------------------------------------------------------------
    # Dispatch

    def enqueue_workgroup(self, waves: Sequence[PendingWave]) -> None:
        self.pending_workgroups.append(tuple(waves))

    def try_dispatch(self, now: float) -> None:
        """Dispatch whole pending workgroups while slots allow."""
        free = self.config.waves_per_cu - len(self.waves)
        while self.pending_workgroups and len(self.pending_workgroups[0]) <= free:
            group = self.pending_workgroups.pop(0)
            for wg_id, wave_in_group, program in group:
                wf = Wavefront(
                    wf_id=self._next_wf_id,
                    workgroup_id=wg_id,
                    wave_in_group=wave_in_group,
                    program=program,
                    age=self._next_age,
                    start_time=now,
                )
                wf.stats.reset(wf.pc_idx)
                self._next_wf_id += 1
                self._next_age += 1
                self.waves.append(wf)
                self.wave_by_id[wf.wf_id] = wf
                self.wg_alive[wg_id] = self.wg_alive.get(wg_id, 0) + 1
            free = self.config.waves_per_cu - len(self.waves)

    @property
    def idle(self) -> bool:
        """No resident and no pending work."""
        return not self.waves and not self.pending_workgroups

    @property
    def resident_wave_count(self) -> int:
        return len(self.waves)

    # ------------------------------------------------------------------
    # Epoch control

    def begin_epoch(self, epoch_start: float) -> None:
        self.epoch_start = epoch_start
        self.stats.reset()
        for wf in self.waves:
            wf.stats.reset(wf.pc_idx)

    def settle_epoch(self, epoch_end: float) -> None:
        """Charge in-progress stalls so epoch stats are complete."""
        for wf in self.waves:
            wf.settle_stall(epoch_end, self.epoch_start)

    # ------------------------------------------------------------------
    # Execution

    def run_until(self, t_end: float, mem: MemorySubsystem) -> None:
        """Advance this CU's local clock to ``t_end``."""
        if self.now >= t_end:
            self.now = t_end
            return
        cycle = 1.0 / self.frequency_ghz
        issue_width = self.config.issue_width
        now = self.now
        while now < t_end:
            self._deliver_completions(now)
            issued = 0
            for wf in self.waves:
                if issued >= issue_width:
                    break
                if wf.is_ready(now):
                    self._issue(wf, now, cycle, mem)
                    issued += 1
            if issued:
                self.stats.issued += issued
                self.stats.active_cycles += 1
                self.stats.core_busy_ns += cycle
                now += cycle
                continue
            nxt = self._next_wakeup(now, t_end)
            if nxt <= now:
                now += cycle
                self.stats.core_busy_ns += cycle
            else:
                if any(not wf.done and not wf.blocked for wf in self.waves):
                    # Waves are mid-pipeline (busy), not memory-blocked:
                    # this gap is core time, not asynchronous time.
                    self.stats.core_busy_ns += nxt - now
                now = nxt
        self.now = t_end

    def _next_wakeup(self, now: float, t_end: float) -> float:
        nxt = t_end
        if self.completions and self.completions[0][0] < nxt:
            nxt = self.completions[0][0]
        for wf in self.waves:
            if not wf.done and not wf.blocked and now < wf.ready_at < nxt:
                nxt = wf.ready_at
        return nxt

    def _deliver_completions(self, now: float) -> None:
        heap = self.completions
        while heap and heap[0][0] <= now:
            completion, _seq, wf_id, is_store = heapq.heappop(heap)
            wf = self.wave_by_id.get(wf_id)
            if wf is None:
                continue
            wf.note_mem_complete(is_store)
            if wf.blocked_wait_target is not None and wf.waitcnt_satisfied():
                wf.unblock_wait(completion, self.epoch_start)

    def _issue(self, wf: Wavefront, now: float, cycle: float, mem: MemorySubsystem) -> None:
        instr = wf.current_instruction()
        kind = instr.kind
        if kind is InstructionKind.VALU or kind is InstructionKind.SALU:
            cost = instr.cycles * cycle
            wf.ready_at = now + cost
            wf.stats.busy_ns += cost
            wf.stats.committed += 1
            wf.stats.committed_compute += 1
            self.stats.committed += 1
            self.stats.committed_compute += 1
            wf.advance_pc()
        elif kind is InstructionKind.LOAD or kind is InstructionKind.STORE:
            is_store = kind is InstructionKind.STORE
            l1_hit, l2_hit, visit = wf.draw_hits(
                wf.pc_idx, instr.l1_hit_rate, instr.l2_hit_rate, instr.pattern_jitter
            )
            if l1_hit:
                completion = now + self.config.memory.l1_hit_cycles * cycle
            else:
                # Address-derived bank key: a pure function of which
                # access this is, independent of global arrival order.
                bank_key = wf.pc_idx * 131 + visit * 7 + wf.workgroup_id * 13 + wf.wave_in_group
                completion = mem.request(now, l2_hit, bank_key).completion_ns
            wf.note_mem_issue(now, completion, is_store)
            self._completion_seq += 1
            heapq.heappush(
                self.completions, (completion, self._completion_seq, wf.wf_id, is_store)
            )
            cost = instr.cycles * cycle
            wf.ready_at = now + cost
            wf.stats.busy_ns += cost
            wf.stats.committed += 1
            wf.stats.committed_memory += 1
            self.stats.committed += 1
            self.stats.committed_memory += 1
            if is_store:
                self.stats.stores += 1
            else:
                self.stats.loads += 1
            wf.advance_pc()
        elif kind is InstructionKind.WAITCNT:
            if wf.outstanding <= instr.wait_target:
                wf.ready_at = now + cycle
                wf.advance_pc()
            else:
                wf.block_wait(instr.wait_target, now)
        elif kind is InstructionKind.BARRIER:
            wg = wf.workgroup_id
            wf.block_barrier(now)
            arrived = self.barrier_arrived.get(wg, 0) + 1
            self.barrier_arrived[wg] = arrived
            if arrived >= self.wg_alive.get(wg, 0):
                self._release_barrier(wg, now + cycle)
        elif kind is InstructionKind.BRANCH:
            wf.take_branch(wf.pc_idx, instr)
            wf.ready_at = now + cycle
            wf.stats.committed += 1
            wf.stats.committed_compute += 1
            self.stats.committed += 1
            self.stats.committed_compute += 1
        elif kind is InstructionKind.ENDPGM:
            self._retire_wave(wf, now)
        else:  # pragma: no cover - enum is closed
            raise RuntimeError(f"unhandled instruction kind {kind}")

    def _release_barrier(self, wg: int, release_time: float) -> None:
        for other in self.waves:
            if other.workgroup_id == wg and other.blocked_barrier:
                other.unblock_barrier(release_time, self.epoch_start)
        self.barrier_arrived[wg] = 0

    def _retire_wave(self, wf: Wavefront, now: float) -> None:
        wf.done = True
        self.last_retire_time = now
        wg = wf.workgroup_id
        self.wg_alive[wg] = self.wg_alive.get(wg, 1) - 1
        self.waves.remove(wf)
        self.wave_by_id.pop(wf.wf_id, None)
        if self.wg_alive[wg] <= 0:
            self.wg_alive.pop(wg, None)
            self.barrier_arrived.pop(wg, None)
        elif self.barrier_arrived.get(wg, 0) >= self.wg_alive[wg] > 0:
            # The retiring wave may have been the last one a barrier was
            # waiting on.
            self._release_barrier(wg, now)
        self.try_dispatch(now)

    # ------------------------------------------------------------------
    # Snapshot

    def clone(self) -> "ComputeUnit":
        out = ComputeUnit.__new__(ComputeUnit)
        out.cu_id = self.cu_id
        out.config = self.config
        out.frequency_ghz = self.frequency_ghz
        out.now = self.now
        out.epoch_start = self.epoch_start
        out.waves = [wf.clone() for wf in self.waves]
        out.pending_workgroups = list(self.pending_workgroups)
        out.completions = list(self.completions)
        out._completion_seq = self._completion_seq
        out.wave_by_id = {wf.wf_id: wf for wf in out.waves}
        out.barrier_arrived = dict(self.barrier_arrived)
        out.wg_alive = dict(self.wg_alive)
        out._next_age = self._next_age
        out._next_wf_id = self._next_wf_id
        out.stats = self.stats.clone()
        out.last_retire_time = self.last_retire_time
        return out


__all__ = ["ComputeUnit", "CuEpochStats", "PendingWave"]
