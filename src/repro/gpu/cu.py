"""Compute Unit: oldest-first wavefront scheduling, event-driven timing.

Each CU holds up to ``waves_per_cu`` resident wavefronts and issues up to
``issue_width`` instructions per cycle from the oldest ready wavefronts
("oldest-first" scheduling, the policy the paper attributes the
inter-wavefront contention profile to, Section 4.3 / Figure 11a).

The CU runs event-driven: when at least one wavefront is ready it advances
cycle by cycle; when everything is stalled on memory it jumps straight to
the next completion. Compute cycles cost ``1/f`` ns (frequency-dependent);
L1 hits are served inside the CU's V/f domain (cycles); L1 misses go to
the shared :class:`~repro.gpu.memory.MemorySubsystem` (fixed-frequency
nanoseconds).

Two scheduler implementations share all issue/retire/memory semantics
(selected by ``GpuConfig.engine``):

* ``"event"`` (default): maintained event state. Runnable wavefronts live
  in exactly one of two heaps - a ready pool ordered by age and a wakeup
  heap ordered by ``ready_at`` - so each cycle touches only the waves
  that can actually issue, and ``_next_wakeup`` is a heap peek instead of
  a scan over every resident wave. When a single wavefront is runnable
  and no wakeup is pending, consecutive compute/branch instructions are
  batched through :meth:`ComputeUnit._run_batch` as one timing event
  stream. Both paths replay the reference loop's float operations in the
  same order, so results are bit-identical.
* ``"reference"``: the original per-cycle rescan loop, kept verbatim as
  the golden baseline for the equivalence tests (including its
  scheduling quirk: retiring a wave mid-scan skips the wave that shifts
  into its list position for the remainder of that cycle's scan - the
  event engine reproduces this with an explicit skip mark).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.config import GpuConfig
from repro.gpu.isa import CompiledProgram, InstructionKind, Program
from repro.gpu.memory import MemorySubsystem
from repro.gpu.wavefront import Wavefront

#: A pending workgroup: tuple of (workgroup_id, wave_in_group, program).
#: The program may be a raw :class:`Program` or its compiled decode table;
#: dispatch normalises either into a :class:`CompiledProgram`-backed wave.
PendingWave = Tuple[int, int, "Program | CompiledProgram"]

# Interned enum members for the legacy (reference-engine) decode path:
# module-global loads beat repeated EnumMeta attribute lookups.
_VALU = InstructionKind.VALU
_SALU = InstructionKind.SALU
_LOAD = InstructionKind.LOAD
_STORE = InstructionKind.STORE
_WAITCNT = InstructionKind.WAITCNT
_BRANCH = InstructionKind.BRANCH
_BARRIER = InstructionKind.BARRIER
_ENDPGM = InstructionKind.ENDPGM

# Plain-int twins for the compiled decode path: ``CompiledProgram.kinds``
# stores ints, so dispatch is an int compare with no enum machinery.
_K_VALU = int(_VALU)
_K_SALU = int(_SALU)
_K_LOAD = int(_LOAD)
_K_STORE = int(_STORE)
_K_WAITCNT = int(_WAITCNT)
_K_BRANCH = int(_BRANCH)
_K_BARRIER = int(_BARRIER)
_K_ENDPGM = int(_ENDPGM)


@dataclass(slots=True)
class CuEpochStats:
    """CU-level per-epoch aggregates (inputs to CU-level models & power).

    Slotted: every committed instruction bumps these counters.
    """

    committed: int = 0
    committed_compute: int = 0
    committed_memory: int = 0
    issued: int = 0
    active_cycles: int = 0
    #: Time (ns) during which at least one wavefront was executing or
    #: ready to execute (not blocked on memory/barriers). The interval
    #: models use this as the CU's core time: the remainder of the epoch
    #: is asynchronous (memory) time.
    core_busy_ns: float = 0.0
    loads: int = 0
    stores: int = 0

    def reset(self) -> None:
        self.committed = 0
        self.committed_compute = 0
        self.committed_memory = 0
        self.issued = 0
        self.active_cycles = 0
        self.core_busy_ns = 0.0
        self.loads = 0
        self.stores = 0

    def clone(self) -> "CuEpochStats":
        # Positional, in field order (slotted dataclasses have no __dict__).
        return CuEpochStats(
            self.committed,
            self.committed_compute,
            self.committed_memory,
            self.issued,
            self.active_cycles,
            self.core_busy_ns,
            self.loads,
            self.stores,
        )

    def stall_breakdown(self, duration_ns: float) -> Dict[str, float]:
        """Split an epoch into core-busy vs stalled (memory/idle) time.

        ``core_busy_ns`` already excludes time blocked on memory and
        barriers, so the remainder of the epoch window is the CU's
        asynchronous stall time. Clamped so float drift at epoch edges
        can never produce a negative stall.
        """
        busy = min(self.core_busy_ns, duration_ns)
        return {"busy_ns": busy, "stall_ns": max(0.0, duration_ns - busy)}

    def capture(self) -> tuple:
        return (
            self.committed,
            self.committed_compute,
            self.committed_memory,
            self.issued,
            self.active_cycles,
            self.core_busy_ns,
            self.loads,
            self.stores,
        )

    def restore_capture(self, cap: tuple) -> None:
        (
            self.committed,
            self.committed_compute,
            self.committed_memory,
            self.issued,
            self.active_cycles,
            self.core_busy_ns,
            self.loads,
            self.stores,
        ) = cap


class ComputeUnit:
    """One compute unit of the GPU."""

    def __init__(self, cu_id: int, config: GpuConfig) -> None:
        self.cu_id = cu_id
        self.config = config
        self.frequency_ghz = 1.7
        self.now = 0.0
        self.epoch_start = 0.0
        #: Resident wavefronts in age order (oldest first).
        self.waves: List[Wavefront] = []
        #: Pending workgroups waiting for free slots; each entry is the
        #: full list of that workgroup's waves (dispatched atomically so
        #: barriers cannot deadlock).
        self.pending_workgroups: Deque[Tuple[PendingWave, ...]] = deque()
        #: Min-heap of (completion_ns, seq, wf_id, is_store).
        self.completions: List[Tuple[float, int, int, bool]] = []
        self._completion_seq = 0
        #: wavefronts by id for completion delivery.
        self.wave_by_id: Dict[int, Wavefront] = {}
        #: Barrier arrival counts per workgroup id.
        self.barrier_arrived: Dict[int, int] = {}
        #: Alive (not ENDPGM'd) waves per workgroup id.
        self.wg_alive: Dict[int, int] = {}
        self._next_age = 0
        self._next_wf_id = cu_id * 1_000_000
        self.stats = CuEpochStats()
        #: Time the most recent wavefront retired (completion tracking).
        self.last_retire_time = 0.0
        #: Position of each resident wave in ``waves`` (O(1) retire).
        self._wave_pos: Dict[int, int] = {}
        # --- event-engine state -------------------------------------
        # Invariant between scheduler steps: every runnable (not done,
        # not blocked) resident wave sits in exactly one of the two
        # heaps; ages (and (ready_at, age) pairs) are unique, so heap
        # pop order never depends on internal array layout.
        self._event_engine = config.engine != "reference"
        #: Ready pool: (age, wf) for runnable waves with ready_at due.
        self._ready: List[Tuple[int, Wavefront]] = []
        #: Wakeup heap: (ready_at, age, wf) for runnable waves not yet due.
        self._wakeups: List[Tuple[float, int, Wavefront]] = []
        #: Count of runnable resident waves (maintained in both engines).
        self._runnable = 0
        #: Current scheduler time, used by ``_wake`` to route pushes.
        self._cycle_now = 0.0
        #: Waves to skip for the remainder of the current issue scan
        #: (reproduces the reference loop's retire-shift quirk).
        self._skip: Optional[List[Wavefront]] = None
        self._in_scan = False
        # --- hot-path counters (observational only; never read by the
        # timing model - see repro.runtime.profiling) -----------------
        self.ctr_cycles = 0
        self.ctr_waves_scanned = 0
        self.ctr_batched = 0
        self.ctr_completions = 0

    # ------------------------------------------------------------------
    # Dispatch

    def enqueue_workgroup(self, waves: Sequence[PendingWave]) -> None:
        self.pending_workgroups.append(tuple(waves))

    def try_dispatch(self, now: float) -> None:
        """Dispatch whole pending workgroups while slots allow."""
        free = self.config.waves_per_cu - len(self.waves)
        while self.pending_workgroups and len(self.pending_workgroups[0]) <= free:
            group = self.pending_workgroups.popleft()
            for wg_id, wave_in_group, program in group:
                wf = Wavefront(
                    wf_id=self._next_wf_id,
                    workgroup_id=wg_id,
                    wave_in_group=wave_in_group,
                    program=program,
                    age=self._next_age,
                    start_time=now,
                )
                wf.stats.reset(wf.pc_idx)
                self._next_wf_id += 1
                self._next_age += 1
                self._wave_pos[wf.wf_id] = len(self.waves)
                self.waves.append(wf)
                self.wave_by_id[wf.wf_id] = wf
                self.wg_alive[wg_id] = self.wg_alive.get(wg_id, 0) + 1
                self._wake(wf)
            free = self.config.waves_per_cu - len(self.waves)

    @property
    def idle(self) -> bool:
        """No resident and no pending work."""
        return not self.waves and not self.pending_workgroups

    @property
    def resident_wave_count(self) -> int:
        return len(self.waves)

    # ------------------------------------------------------------------
    # Epoch control

    def begin_epoch(self, epoch_start: float) -> None:
        self.epoch_start = epoch_start
        self.stats.reset()
        for wf in self.waves:
            wf.stats.reset(wf.pc_idx)

    def settle_epoch(self, epoch_end: float) -> None:
        """Charge in-progress stalls so epoch stats are complete."""
        for wf in self.waves:
            wf.settle_stall(epoch_end, self.epoch_start)

    # ------------------------------------------------------------------
    # Event bookkeeping

    def _wake(self, wf: Wavefront) -> None:
        """A resident wave became runnable (dispatched or unblocked)."""
        self._runnable += 1
        if self._event_engine:
            if wf.ready_at <= self._cycle_now:
                heapq.heappush(self._ready, (wf.age, wf))
            else:
                heapq.heappush(self._wakeups, (wf.ready_at, wf.age, wf))

    def _rebuild_event_state(self) -> None:
        """Reclassify runnable waves into the two heaps (clone/restore).

        Valid because heap keys are unique: the next refill merges the
        pools exactly as the original schedule would have.
        """
        ready: List[Tuple[int, Wavefront]] = []
        wakeups: List[Tuple[float, int, Wavefront]] = []
        runnable = 0
        now = self._cycle_now
        event = self._event_engine
        for wf in self.waves:
            if wf.done or wf.blocked:
                continue
            runnable += 1
            if event:
                if wf.ready_at <= now:
                    ready.append((wf.age, wf))
                else:
                    wakeups.append((wf.ready_at, wf.age, wf))
        heapq.heapify(ready)
        heapq.heapify(wakeups)
        self._ready = ready
        self._wakeups = wakeups
        self._runnable = runnable

    # ------------------------------------------------------------------
    # Execution

    def run_until(self, t_end: float, mem: MemorySubsystem) -> None:
        """Advance this CU's local clock to ``t_end``."""
        if not self._event_engine:
            self._run_until_reference(t_end, mem)
            return
        if self.now >= t_end:
            self.now = t_end
            return
        cycle = 1.0 / self.frequency_ghz
        issue_width = self.config.issue_width
        ready = self._ready
        wakeups = self._wakeups
        completions = self.completions
        stats = self.stats
        now = self.now
        while now < t_end:
            self._cycle_now = now
            self.ctr_cycles += 1
            if completions and completions[0][0] <= now:
                self._deliver_completions(now)
            while wakeups and wakeups[0][0] <= now:
                _, age, wf = heapq.heappop(wakeups)
                heapq.heappush(ready, (age, wf))
            if len(ready) == 1 and not wakeups:
                wf = ready[0][1]
                if wf.code.batchable[wf.pc_idx]:
                    heapq.heappop(ready)
                    now = self._run_batch(wf, now, t_end, cycle)
                    # Always re-file via the wakeup heap: ``now`` may have
                    # overshot ``t_end``, in which case the wave is *not*
                    # ready at the start of the next quantum. The refill
                    # at the top of the loop promotes it the moment
                    # ``ready_at`` actually passes.
                    heapq.heappush(wakeups, (wf.ready_at, wf.age, wf))
                    continue
            issued = 0
            scanned = 0
            cursor = -1
            deferred: Optional[List[Tuple[int, Wavefront]]] = None
            self._skip = None
            self._in_scan = True
            while ready and issued < issue_width:
                age, wf = heapq.heappop(ready)
                scanned += 1
                if age <= cursor:
                    # Became ready behind the scan position: next cycle.
                    if deferred is None:
                        deferred = []
                    deferred.append((age, wf))
                    continue
                cursor = age
                skip = self._skip
                if skip is not None and any(s is wf for s in skip):
                    if deferred is None:
                        deferred = []
                    deferred.append((age, wf))
                    continue
                code = wf.code
                kind = code.kinds[wf.pc_idx]
                self._issue_fast(wf, code, kind, now, cycle, mem)
                issued += 1
                if kind == _K_ENDPGM or kind == _K_BARRIER or wf.blocked:
                    continue  # retired / barrier or waitcnt handled above
                heapq.heappush(wakeups, (wf.ready_at, wf.age, wf))
            self._in_scan = False
            self._skip = None
            if deferred is not None:
                for entry in deferred:
                    heapq.heappush(ready, entry)
            self.ctr_waves_scanned += scanned
            if issued:
                stats.issued += issued
                stats.active_cycles += 1
                stats.core_busy_ns += cycle
                now += cycle
                continue
            nxt = t_end
            if completions and completions[0][0] < nxt:
                nxt = completions[0][0]
            if wakeups and wakeups[0][0] < nxt:
                nxt = wakeups[0][0]
            if nxt <= now:  # pragma: no cover - mirrors the reference loop
                now += cycle
                stats.core_busy_ns += cycle
            else:
                if self._runnable:
                    # Waves are mid-pipeline (busy), not memory-blocked:
                    # this gap is core time, not asynchronous time.
                    stats.core_busy_ns += nxt - now
                now = nxt
        self.now = t_end
        self._cycle_now = t_end

    def _run_batch(self, wf: Wavefront, now: float, t_end: float, cycle: float) -> float:
        """Issue consecutive compute/branch instructions of the only
        runnable wavefront as one timing event stream.

        Replays the per-cycle loop's float operations in the same order
        (issue, ``core_busy_ns += cycle``, ``now += cycle``, then the gap
        arithmetic), so the result is bit-identical; only the readiness
        rescans are skipped. Stops at ``t_end``, at the next memory
        completion, on a multi-cycle gap that something else bounds, or
        at the first non-batchable instruction.

        The loop works entirely on the compiled decode arrays and local
        accumulators: ``busy``/``core_busy`` are seeded from the current
        stat fields and flushed on exit, so they replay exactly the float
        additions the per-instruction path performs on those fields, and
        the integer commit/issue counters (one of each per batchable
        instruction, for every batchable kind) collapse into ``batched``.
        The completions heap cannot change inside a batch (no memory ops
        issue, no completions deliver), so its head is hoisted too.
        """
        stats = self.stats
        wstats = wf.stats
        code = wf.code
        kinds = code.kinds
        batchable = code.batchable
        costs = code.costs_for(cycle)
        trip_counts = code.trip_counts
        branch_targets = code.branch_targets
        counters = wf.loop_counters
        completions = self.completions
        next_comp = completions[0][0] if completions else float("inf")
        pc = wf.pc_idx
        ra = wf.ready_at
        busy = wstats.busy_ns
        core_busy = stats.core_busy_ns
        batched = 0
        while True:
            if not batchable[pc]:
                break
            if kinds[pc] == _K_BRANCH:
                remaining = counters.get(pc)
                if remaining is None:
                    remaining = trip_counts[pc]
                if remaining > 0:
                    counters[pc] = remaining - 1
                    pc = branch_targets[pc]
                else:
                    # Loop exhausted: reset so a future re-entry iterates.
                    counters.pop(pc, None)
                    pc += 1
                ra = now + cycle
            else:  # VALU / SALU
                cost = costs[pc]
                ra = now + cost
                busy += cost
                pc += 1
            core_busy += cycle
            now += cycle
            batched += 1
            if now >= t_end:
                break
            if next_comp <= now:
                break
            if ra > now:
                # Multi-cycle instruction: jump the issue gap exactly as
                # the reference loop's no-issue branch would.
                nxt = t_end
                if next_comp < nxt:
                    nxt = next_comp
                if ra < nxt:
                    nxt = ra
                core_busy += nxt - now
                now = nxt
                if now >= t_end:
                    break
                if next_comp <= now:
                    break
                if nxt != ra:  # pragma: no cover - both bounds checked above
                    break
        wf.pc_idx = pc
        wf.ready_at = ra
        wstats.busy_ns = busy
        wstats.committed += batched
        wstats.committed_compute += batched
        stats.committed += batched
        stats.committed_compute += batched
        stats.issued += batched
        stats.active_cycles += batched
        stats.core_busy_ns = core_busy
        self.ctr_cycles += batched - 1 if batched else 0
        self.ctr_batched += batched
        return now

    def _run_until_reference(self, t_end: float, mem: MemorySubsystem) -> None:
        """The pre-event-engine scheduler loop, kept verbatim (golden
        baseline for the equivalence tests); only counters were added."""
        if self.now >= t_end:
            self.now = t_end
            return
        cycle = 1.0 / self.frequency_ghz
        issue_width = self.config.issue_width
        now = self.now
        while now < t_end:
            self.ctr_cycles += 1
            self._deliver_completions(now)
            issued = 0
            scanned = 0
            for wf in self.waves:
                scanned += 1
                if issued >= issue_width:
                    break
                if wf.is_ready(now):
                    self._issue(wf, now, cycle, mem)
                    issued += 1
            self.ctr_waves_scanned += scanned
            if issued:
                self.stats.issued += issued
                self.stats.active_cycles += 1
                self.stats.core_busy_ns += cycle
                now += cycle
                continue
            nxt = self._next_wakeup(now, t_end)
            self.ctr_waves_scanned += len(self.waves)
            if nxt <= now:
                now += cycle
                self.stats.core_busy_ns += cycle
            else:
                if any(not wf.done and not wf.blocked for wf in self.waves):
                    # Waves are mid-pipeline (busy), not memory-blocked:
                    # this gap is core time, not asynchronous time.
                    self.stats.core_busy_ns += nxt - now
                now = nxt
        self.now = t_end
        self._cycle_now = t_end

    def _next_wakeup(self, now: float, t_end: float) -> float:
        nxt = t_end
        if self.completions and self.completions[0][0] < nxt:
            nxt = self.completions[0][0]
        for wf in self.waves:
            if not wf.done and not wf.blocked and now < wf.ready_at < nxt:
                nxt = wf.ready_at
        return nxt

    def _deliver_completions(self, now: float) -> None:
        heap = self.completions
        while heap and heap[0][0] <= now:
            completion, _seq, wf_id, is_store = heapq.heappop(heap)
            wf = self.wave_by_id.get(wf_id)
            if wf is None:
                continue
            self.ctr_completions += 1
            wf.note_mem_complete(is_store)
            if wf.blocked_wait_target is not None and wf.waitcnt_satisfied():
                wf.unblock_wait(completion, self.epoch_start)
                self._wake(wf)

    def _issue_fast(
        self,
        wf: Wavefront,
        code: CompiledProgram,
        kind: int,
        now: float,
        cycle: float,
        mem: MemorySubsystem,
    ) -> None:
        """Issue one instruction from the compiled decode table.

        Semantics (and float-operation order) are identical to
        :meth:`_issue`; the only differences are mechanical: fields come
        from the flat per-pc arrays instead of a materialised
        :class:`Instruction`, dispatch compares plain ints, and the
        per-frequency ``cycles * cycle`` product comes precomputed from
        :meth:`CompiledProgram.costs_for` (the same multiply, hoisted).
        The event engine calls this; the reference engine keeps the
        dataclass-decode :meth:`_issue`, which is what makes the
        engine-equivalence suite a continuous compiled-vs-dataclass
        decode check.
        """
        pc = wf.pc_idx
        wstats = wf.stats
        stats = self.stats
        if kind == _K_VALU or kind == _K_SALU:
            cost = code.costs_for(cycle)[pc]
            wf.ready_at = now + cost
            wstats.busy_ns += cost
            wstats.committed += 1
            wstats.committed_compute += 1
            stats.committed += 1
            stats.committed_compute += 1
            wf.pc_idx = pc + 1
        elif kind == _K_LOAD or kind == _K_STORE:
            is_store = kind == _K_STORE
            l1_hit, l2_hit, visit = wf.draw_hits(
                pc, code.l1_hit_rates[pc], code.l2_hit_rates[pc], code.pattern_jitters[pc]
            )
            if l1_hit:
                completion = now + self.config.memory.l1_hit_cycles * cycle
            else:
                # Address-derived bank key: a pure function of which
                # access this is, independent of global arrival order.
                bank_key = pc * 131 + visit * 7 + wf.workgroup_id * 13 + wf.wave_in_group
                completion = mem.request(now, l2_hit, bank_key).completion_ns
            wf.note_mem_issue(now, completion, is_store)
            self._completion_seq += 1
            heapq.heappush(
                self.completions, (completion, self._completion_seq, wf.wf_id, is_store)
            )
            cost = code.costs_for(cycle)[pc]
            wf.ready_at = now + cost
            wstats.busy_ns += cost
            wstats.committed += 1
            wstats.committed_memory += 1
            stats.committed += 1
            stats.committed_memory += 1
            if is_store:
                stats.stores += 1
            else:
                stats.loads += 1
            wf.pc_idx = pc + 1
        elif kind == _K_WAITCNT:
            target = code.wait_targets[pc]
            if wf.outstanding <= target:
                wf.ready_at = now + cycle
                wf.pc_idx = pc + 1
            else:
                wf.block_wait(target, now)
                self._runnable -= 1
        elif kind == _K_BARRIER:
            wg = wf.workgroup_id
            wf.block_barrier(now)
            self._runnable -= 1
            arrived = self.barrier_arrived.get(wg, 0) + 1
            self.barrier_arrived[wg] = arrived
            if arrived >= self.wg_alive.get(wg, 0):
                self._release_barrier(wg, now + cycle)
        elif kind == _K_BRANCH:
            counters = wf.loop_counters
            remaining = counters.get(pc)
            if remaining is None:
                remaining = code.trip_counts[pc]
            if remaining > 0:
                counters[pc] = remaining - 1
                wf.pc_idx = code.branch_targets[pc]
            else:
                # Loop exhausted: reset so a future re-entry iterates.
                counters.pop(pc, None)
                wf.pc_idx = pc + 1
            wf.ready_at = now + cycle
            wstats.committed += 1
            wstats.committed_compute += 1
            stats.committed += 1
            stats.committed_compute += 1
        elif kind == _K_ENDPGM:
            self._retire_wave(wf, now)
        else:  # pragma: no cover - enum is closed
            raise RuntimeError(f"unhandled instruction kind {kind}")

    def _issue(self, wf: Wavefront, now: float, cycle: float, mem: MemorySubsystem) -> None:
        instr = wf.current_instruction()
        kind = instr.kind
        if kind is _VALU or kind is _SALU:
            cost = instr.cycles * cycle
            wf.ready_at = now + cost
            wf.stats.busy_ns += cost
            wf.stats.committed += 1
            wf.stats.committed_compute += 1
            self.stats.committed += 1
            self.stats.committed_compute += 1
            wf.advance_pc()
        elif kind is _LOAD or kind is _STORE:
            is_store = kind is _STORE
            l1_hit, l2_hit, visit = wf.draw_hits(
                wf.pc_idx, instr.l1_hit_rate, instr.l2_hit_rate, instr.pattern_jitter
            )
            if l1_hit:
                completion = now + self.config.memory.l1_hit_cycles * cycle
            else:
                # Address-derived bank key: a pure function of which
                # access this is, independent of global arrival order.
                bank_key = wf.pc_idx * 131 + visit * 7 + wf.workgroup_id * 13 + wf.wave_in_group
                completion = mem.request(now, l2_hit, bank_key).completion_ns
            wf.note_mem_issue(now, completion, is_store)
            self._completion_seq += 1
            heapq.heappush(
                self.completions, (completion, self._completion_seq, wf.wf_id, is_store)
            )
            cost = instr.cycles * cycle
            wf.ready_at = now + cost
            wf.stats.busy_ns += cost
            wf.stats.committed += 1
            wf.stats.committed_memory += 1
            self.stats.committed += 1
            self.stats.committed_memory += 1
            if is_store:
                self.stats.stores += 1
            else:
                self.stats.loads += 1
            wf.advance_pc()
        elif kind is _WAITCNT:
            if wf.outstanding <= instr.wait_target:
                wf.ready_at = now + cycle
                wf.advance_pc()
            else:
                wf.block_wait(instr.wait_target, now)
                self._runnable -= 1
        elif kind is _BARRIER:
            wg = wf.workgroup_id
            wf.block_barrier(now)
            self._runnable -= 1
            arrived = self.barrier_arrived.get(wg, 0) + 1
            self.barrier_arrived[wg] = arrived
            if arrived >= self.wg_alive.get(wg, 0):
                self._release_barrier(wg, now + cycle)
        elif kind is _BRANCH:
            wf.take_branch(wf.pc_idx, instr)
            wf.ready_at = now + cycle
            wf.stats.committed += 1
            wf.stats.committed_compute += 1
            self.stats.committed += 1
            self.stats.committed_compute += 1
        elif kind is _ENDPGM:
            self._retire_wave(wf, now)
        else:  # pragma: no cover - enum is closed
            raise RuntimeError(f"unhandled instruction kind {kind}")

    def _release_barrier(self, wg: int, release_time: float) -> None:
        for other in self.waves:
            if other.workgroup_id == wg and other.blocked_barrier:
                other.unblock_barrier(release_time, self.epoch_start)
                self._wake(other)
        self.barrier_arrived[wg] = 0

    def _retire_wave(self, wf: Wavefront, now: float) -> None:
        wf.done = True
        self._runnable -= 1
        self.last_retire_time = now
        wg = wf.workgroup_id
        self.wg_alive[wg] = self.wg_alive.get(wg, 1) - 1
        waves = self.waves
        pos = self._wave_pos
        idx = pos.pop(wf.wf_id)
        del waves[idx]
        for i in range(idx, len(waves)):
            pos[waves[i].wf_id] = i
        self.wave_by_id.pop(wf.wf_id, None)
        if self.wg_alive[wg] <= 0:
            self.wg_alive.pop(wg, None)
            self.barrier_arrived.pop(wg, None)
        elif self.barrier_arrived.get(wg, 0) >= self.wg_alive[wg] > 0:
            # The retiring wave may have been the last one a barrier was
            # waiting on.
            self._release_barrier(wg, now)
        self.try_dispatch(now)
        if self._in_scan and idx < len(waves):
            # Reference-loop fidelity: the wave that shifted into the
            # retired slot is not examined again during this scan.
            skip = self._skip
            if skip is None:
                skip = self._skip = []
            skip.append(waves[idx])

    # ------------------------------------------------------------------
    # Snapshot

    def clone(self) -> "ComputeUnit":
        out = ComputeUnit.__new__(ComputeUnit)
        out.cu_id = self.cu_id
        out.config = self.config
        out.frequency_ghz = self.frequency_ghz
        out.now = self.now
        out.epoch_start = self.epoch_start
        out.waves = [wf.clone() for wf in self.waves]
        out.pending_workgroups = deque(self.pending_workgroups)
        out.completions = list(self.completions)
        out._completion_seq = self._completion_seq
        out.wave_by_id = {wf.wf_id: wf for wf in out.waves}
        out.barrier_arrived = dict(self.barrier_arrived)
        out.wg_alive = dict(self.wg_alive)
        out._next_age = self._next_age
        out._next_wf_id = self._next_wf_id
        out.stats = self.stats.clone()
        out.last_retire_time = self.last_retire_time
        out._wave_pos = {wf.wf_id: i for i, wf in enumerate(out.waves)}
        out._event_engine = self._event_engine
        out._cycle_now = self.now
        out._skip = None
        out._in_scan = False
        out._rebuild_event_state()
        out.ctr_cycles = 0
        out.ctr_waves_scanned = 0
        out.ctr_batched = 0
        out.ctr_completions = 0
        return out

    def capture(self) -> tuple:
        """Flat-tuple snapshot of all mutable state (no object cloning).

        Wave state is captured via :meth:`Wavefront.capture`; immutable
        ``Program``/config objects are shared by reference. Restoring
        with :meth:`restore_capture` reuses the existing wavefront and
        stats objects, so forking an epoch many times allocates almost
        nothing after the first restore.
        """
        return (
            self.frequency_ghz,
            self.now,
            self.epoch_start,
            tuple(wf.capture() for wf in self.waves),
            tuple(self.pending_workgroups),
            tuple(self.completions),
            self._completion_seq,
            tuple(self.barrier_arrived.items()),
            tuple(self.wg_alive.items()),
            self._next_age,
            self._next_wf_id,
            self.stats.capture(),
            self.last_retire_time,
        )

    def restore_capture(self, cap: tuple) -> None:
        """Overwrite this CU's state from a :meth:`capture` tuple."""
        (
            self.frequency_ghz,
            self.now,
            self.epoch_start,
            wave_caps,
            pending,
            completions,
            self._completion_seq,
            barrier,
            alive,
            self._next_age,
            self._next_wf_id,
            stats_cap,
            self.last_retire_time,
        ) = cap
        old_by_id = self.wave_by_id
        waves: List[Wavefront] = []
        by_id: Dict[int, Wavefront] = {}
        pos: Dict[int, int] = {}
        for wc in wave_caps:
            wf = old_by_id.get(wc[0])
            if wf is not None and wf.code is wc[3]:
                wf.restore_capture(wc)
            else:
                wf = Wavefront.from_capture(wc)
            pos[wf.wf_id] = len(waves)
            waves.append(wf)
            by_id[wf.wf_id] = wf
        self.waves = waves
        self.wave_by_id = by_id
        self._wave_pos = pos
        self.pending_workgroups = deque(pending)
        self.completions = list(completions)
        self.barrier_arrived = dict(barrier)
        self.wg_alive = dict(alive)
        self.stats.restore_capture(stats_cap)
        self._cycle_now = self.now
        self._skip = None
        self._in_scan = False
        self._rebuild_event_state()

    def capture_nbytes(self) -> int:
        """Rough payload size of :meth:`capture` (for the profiler)."""
        n = 8 * 13
        for wf in self.waves:
            n += wf.capture_nbytes()
        n += 32 * len(self.completions)
        n += 16 * (len(self.barrier_arrived) + len(self.wg_alive))
        n += 24 * sum(len(g) for g in self.pending_workgroups)
        return n


__all__ = ["ComputeUnit", "CuEpochStats", "PendingWave"]
