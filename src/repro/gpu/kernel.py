"""Kernels and workgroup geometry.

A :class:`Kernel` pairs a :class:`~repro.gpu.isa.Program` with launch
geometry: how many workgroups are dispatched, how many wavefronts each
workgroup contains, and optional per-wavefront heterogeneity (a different
program variant per wavefront class, used by heterogeneous workloads such
as ``dgemm`` in the suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.gpu.isa import Program


@dataclass(frozen=True)
class WorkgroupGeometry:
    """Launch geometry of a kernel."""

    n_workgroups: int
    waves_per_workgroup: int = 4

    def __post_init__(self) -> None:
        if self.n_workgroups < 1:
            raise ValueError("n_workgroups must be positive")
        if self.waves_per_workgroup < 1:
            raise ValueError("waves_per_workgroup must be positive")

    @property
    def total_waves(self) -> int:
        return self.n_workgroups * self.waves_per_workgroup


@dataclass(frozen=True)
class Kernel:
    """A GPU kernel: one or more program variants plus launch geometry.

    ``variants`` allows heterogeneous kernels: wavefront ``w`` of workgroup
    ``g`` executes ``variants[(g + w) % len(variants)]``. Homogeneous
    kernels pass a single program.
    """

    variants: Tuple[Program, ...]
    geometry: WorkgroupGeometry
    name: str = "kernel"

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError("kernel needs at least one program variant")

    @staticmethod
    def homogeneous(program: Program, geometry: WorkgroupGeometry, name: Optional[str] = None) -> "Kernel":
        return Kernel((program,), geometry, name=name or program.name)

    def program_for(self, workgroup_id: int, wave_in_group: int) -> Program:
        """Program variant executed by a given wavefront."""
        return self.variants[(workgroup_id + wave_in_group) % len(self.variants)]

    @property
    def total_waves(self) -> int:
        return self.geometry.total_waves

    def static_instruction_count(self) -> int:
        """Static code size across variants (for PC-table coverage studies)."""
        return max(len(v) for v in self.variants)


__all__ = ["WorkgroupGeometry", "Kernel"]
