"""In-order wavefront execution state.

A wavefront executes its program strictly in order. Loads and stores are
tracked with an outstanding-operation counter (the analogue of GCN's
``vmcnt``); the wavefront only blocks when it reaches a ``WAITCNT`` whose
target is below the current outstanding count — time spent blocked there
is *memory stall time*, the quantity the STALL estimation model measures
(the paper measures time blocked at ``s_waitcnt``, Section 4.4).

Per-epoch statistics are accumulated in :class:`WavefrontStats` and reset
at every epoch boundary by the owning CU. The stats deliberately include
the raw inputs of every estimation model evaluated in the paper:

* ``stall_ns`` - STALL model input,
* ``store_stall_ns`` / ``overlap_ns`` - CRISP model inputs,
* ``leading_load_ns`` - LEAD model input,
* ``critical_mem_ns`` - CRIT model input,
* ``committed`` and ``epoch_start_pc_idx`` - PCSTALL inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.gpu.isa import CompiledProgram, Instruction, Program

#: Golden-ratio fraction used by the deterministic low-discrepancy hit
#: sequence (see `Wavefront.draw_hit`).
_PHI = 0.6180339887498949


@dataclass(slots=True)
class WavefrontStats:
    """Per-epoch counters for one wavefront. Reset each epoch.

    Slotted: the event engine touches these counters on every commit, and
    slot access skips the per-instance ``__dict__`` lookup.
    """

    committed: int = 0
    committed_compute: int = 0
    committed_memory: int = 0
    stall_ns: float = 0.0
    store_stall_ns: float = 0.0
    barrier_stall_ns: float = 0.0
    leading_load_ns: float = 0.0
    critical_mem_ns: float = 0.0
    busy_ns: float = 0.0
    epoch_start_pc_idx: int = 0
    loads_issued: int = 0
    stores_issued: int = 0

    def reset(self, pc_idx: int) -> None:
        self.committed = 0
        self.committed_compute = 0
        self.committed_memory = 0
        self.stall_ns = 0.0
        self.store_stall_ns = 0.0
        self.barrier_stall_ns = 0.0
        self.leading_load_ns = 0.0
        self.critical_mem_ns = 0.0
        self.busy_ns = 0.0
        self.epoch_start_pc_idx = pc_idx
        self.loads_issued = 0
        self.stores_issued = 0

    def clone(self) -> "WavefrontStats":
        # Positional, in field order (slotted dataclasses have no __dict__).
        return WavefrontStats(
            self.committed,
            self.committed_compute,
            self.committed_memory,
            self.stall_ns,
            self.store_stall_ns,
            self.barrier_stall_ns,
            self.leading_load_ns,
            self.critical_mem_ns,
            self.busy_ns,
            self.epoch_start_pc_idx,
            self.loads_issued,
            self.stores_issued,
        )

    def capture(self) -> tuple:
        """Flat, immutable value snapshot (see :meth:`Wavefront.capture`)."""
        return (
            self.committed,
            self.committed_compute,
            self.committed_memory,
            self.stall_ns,
            self.store_stall_ns,
            self.barrier_stall_ns,
            self.leading_load_ns,
            self.critical_mem_ns,
            self.busy_ns,
            self.epoch_start_pc_idx,
            self.loads_issued,
            self.stores_issued,
        )

    def restore_capture(self, cap: tuple) -> None:
        (
            self.committed,
            self.committed_compute,
            self.committed_memory,
            self.stall_ns,
            self.store_stall_ns,
            self.barrier_stall_ns,
            self.leading_load_ns,
            self.critical_mem_ns,
            self.busy_ns,
            self.epoch_start_pc_idx,
            self.loads_issued,
            self.stores_issued,
        ) = cap


class Wavefront:
    """Execution state of one wavefront resident on a CU.

    Attributes (state that must survive snapshot/rollback):
        pc_idx: index of the next instruction to execute.
        loop_counters: remaining trip counts per BRANCH instruction index.
        ready_at: earliest time (ns) the wavefront can issue again.
        outstanding: in-flight memory operations (loads + stores).
        outstanding_stores: in-flight stores (CRISP's store-stall input).
        blocked_wait_target: not None while blocked at a WAITCNT.
        blocked_barrier: True while waiting at a workgroup barrier.
        blocked_since: time the current block began (stall accounting).
        age: global dispatch sequence number; lower = older = scheduled
            first ("oldest-first" policy, Section 4.3).
    """

    __slots__ = (
        "wf_id",
        "workgroup_id",
        "wave_in_group",
        "code",
        "pc_idx",
        "loop_counters",
        "ready_at",
        "outstanding",
        "outstanding_stores",
        "blocked_wait_target",
        "blocked_barrier",
        "blocked_since",
        "age",
        "done",
        "pc_visits",
        "last_mem_completion",
        "stats",
    )

    def __init__(
        self,
        wf_id: int,
        workgroup_id: int,
        wave_in_group: int,
        program: Union[Program, CompiledProgram],
        age: int,
        start_time: float = 0.0,
    ) -> None:
        self.wf_id = wf_id
        self.workgroup_id = workgroup_id
        self.wave_in_group = wave_in_group
        # The wave executes the compiled decode table; a raw Program is
        # compiled on the spot (cached on the program, so waves of the
        # same kernel share one table by reference).
        self.code = program.compiled if isinstance(program, Program) else program
        self.pc_idx = 0
        self.loop_counters: Dict[int, int] = {}
        self.ready_at = start_time
        self.outstanding = 0
        self.outstanding_stores = 0
        self.blocked_wait_target: Optional[int] = None
        self.blocked_barrier = False
        self.blocked_since = 0.0
        self.age = age
        self.done = False
        self.pc_visits: Dict[int, int] = {}
        self.last_mem_completion = start_time
        self.stats = WavefrontStats()
        self.stats.reset(0)

    # ------------------------------------------------------------------
    # Introspection helpers

    @property
    def blocked(self) -> bool:
        return self.blocked_wait_target is not None or self.blocked_barrier

    def is_ready(self, now: float) -> bool:
        """True when the wavefront can issue its next instruction."""
        return not self.done and not self.blocked and self.ready_at <= now

    @property
    def program(self) -> Program:
        """The source :class:`Program` this wave executes (compat shim)."""
        return self.code.source

    def current_instruction(self) -> Instruction:
        return self.code.source.instructions[self.pc_idx]

    def current_pc(self, instruction_bytes: int = 4) -> int:
        return self.pc_idx * instruction_bytes

    # ------------------------------------------------------------------
    # Deterministic "randomness"

    def draw_hits(
        self, pc_idx: int, l1_rate: float, l2_rate: float, jitter: float
    ) -> "tuple[bool, bool, int]":
        """Deterministic low-discrepancy (L1 hit, L2 hit) draw.

        Each static memory instruction has a *fixed* hit/miss outcome per
        wavefront (a regular access pattern); with probability ``jitter``
        a visit instead uses an iteration-dependent draw (data-dependent
        access, e.g. random table lookups). Everything is a pure function
        of (PC, wavefront, visit count), so the memory behaviour of an
        epoch is essentially determined by its starting PC - the
        repetitive-kernel property the PC-indexed predictor exploits
        (Figures 9/10) - and forked (oracle) executions replay
        bit-identically. Realised rates converge to the configured ones
        across the static instructions of a program.
        """
        count = self.pc_visits.get(pc_idx, 0)
        self.pc_visits[pc_idx] = count + 1
        salt = ((self.workgroup_id * 7 + self.wave_in_group) * 0.23606797749979) % 1.0
        static_base = (pc_idx * 0.3819660112501051 + salt) % 1.0
        dynamic = ((count * _PHI + pc_idx * 0.7548776662466927) % 1.0) < jitter
        if dynamic:
            base = (static_base + count * _PHI) % 1.0
        else:
            base = static_base
        l1 = base < l1_rate
        l2 = ((base + 0.5) % 1.0) < l2_rate
        return l1, l2, count

    # ------------------------------------------------------------------
    # Control flow

    def advance_pc(self) -> None:
        self.pc_idx += 1

    def take_branch(self, idx: int, instr: Instruction) -> None:
        """Execute a BRANCH at instruction index ``idx``."""
        remaining = self.loop_counters.get(idx)
        if remaining is None:
            remaining = instr.trip_count
        if remaining > 0:
            self.loop_counters[idx] = remaining - 1
            self.pc_idx = instr.branch_target
        else:
            # Loop exhausted: reset so a future re-entry iterates again.
            self.loop_counters.pop(idx, None)
            self.pc_idx = idx + 1

    # ------------------------------------------------------------------
    # Blocking / unblocking

    def block_wait(self, target: int, now: float) -> None:
        self.blocked_wait_target = target
        self.blocked_since = now

    def block_barrier(self, now: float) -> None:
        self.blocked_barrier = True
        self.blocked_since = now

    def waitcnt_satisfied(self) -> bool:
        return (
            self.blocked_wait_target is not None
            and self.outstanding <= self.blocked_wait_target
        )

    def unblock_wait(self, now: float, epoch_start: float) -> None:
        """Release a WAITCNT block, charging stall time within the epoch."""
        start = max(self.blocked_since, epoch_start)
        if now > start:
            stalled = now - start
            self.stats.stall_ns += stalled
            if self.outstanding_stores > 0:
                self.stats.store_stall_ns += stalled
        self.blocked_wait_target = None
        self.blocked_since = now
        if self.ready_at < now:
            self.ready_at = now
        # The WAITCNT itself retires now.
        self.advance_pc()

    def unblock_barrier(self, now: float, epoch_start: float) -> None:
        start = max(self.blocked_since, epoch_start)
        if now > start:
            self.stats.barrier_stall_ns += now - start
        self.blocked_barrier = False
        self.blocked_since = now
        if self.ready_at < now:
            self.ready_at = now
        self.advance_pc()

    def settle_stall(self, now: float, epoch_start: float) -> None:
        """Charge in-progress stall time at an epoch boundary."""
        if not self.blocked:
            return
        start = max(self.blocked_since, epoch_start)
        if now <= start:
            return
        stalled = now - start
        if self.blocked_wait_target is not None:
            self.stats.stall_ns += stalled
            if self.outstanding_stores > 0:
                self.stats.store_stall_ns += stalled
        else:
            self.stats.barrier_stall_ns += stalled
        self.blocked_since = now

    # ------------------------------------------------------------------
    # Memory bookkeeping

    def note_mem_issue(self, now: float, completion: float, is_store: bool) -> None:
        """Record accounting for a memory operation issued now."""
        if self.outstanding == 0:
            # A leading load/store: no other memory op in flight.
            self.stats.leading_load_ns += completion - now
        # Critical-path approximation: the non-overlapped part of this
        # access extends the wavefront's memory critical path.
        overlap_from = max(now, self.last_mem_completion)
        if completion > overlap_from:
            self.stats.critical_mem_ns += completion - overlap_from
        if completion > self.last_mem_completion:
            self.last_mem_completion = completion
        self.outstanding += 1
        if is_store:
            self.outstanding_stores += 1
            self.stats.stores_issued += 1
        else:
            self.stats.loads_issued += 1

    def note_mem_complete(self, is_store: bool) -> None:
        self.outstanding -= 1
        if is_store:
            self.outstanding_stores -= 1
        if self.outstanding < 0:
            raise RuntimeError("memory completion underflow")

    # ------------------------------------------------------------------
    # Snapshot support

    def clone(self) -> "Wavefront":
        out = Wavefront.__new__(Wavefront)
        out.wf_id = self.wf_id
        out.workgroup_id = self.workgroup_id
        out.wave_in_group = self.wave_in_group
        out.code = self.code  # immutable decode table, shared
        out.pc_idx = self.pc_idx
        out.loop_counters = dict(self.loop_counters)
        out.ready_at = self.ready_at
        out.outstanding = self.outstanding
        out.outstanding_stores = self.outstanding_stores
        out.blocked_wait_target = self.blocked_wait_target
        out.blocked_barrier = self.blocked_barrier
        out.blocked_since = self.blocked_since
        out.age = self.age
        out.done = self.done
        out.pc_visits = dict(self.pc_visits)
        out.last_mem_completion = self.last_mem_completion
        out.stats = self.stats.clone()
        return out

    def capture(self) -> tuple:
        """Flat-tuple snapshot of all mutable state.

        Unlike :meth:`clone`, no ``Wavefront`` (or stats) object is
        allocated: the snapshot is a plain tuple of scalars plus shared
        references to the immutable :class:`~repro.gpu.isa.Program`. The
        oracle uses this to fork an epoch many times from one capture
        (see ``Gpu.snapshot``). Restoring into an existing wavefront via
        :meth:`restore_capture` allocates only the two small dicts.
        """
        return (
            self.wf_id,
            self.workgroup_id,
            self.wave_in_group,
            self.code,  # immutable decode table, shared
            self.age,
            self.pc_idx,
            tuple(self.loop_counters.items()),
            self.ready_at,
            self.outstanding,
            self.outstanding_stores,
            self.blocked_wait_target,
            self.blocked_barrier,
            self.blocked_since,
            self.done,
            tuple(self.pc_visits.items()),
            self.last_mem_completion,
            self.stats.capture(),
        )

    def restore_capture(self, cap: tuple) -> None:
        """Overwrite mutable state from a :meth:`capture` tuple in place.

        Identity fields (ids, program, age) are assumed to match; callers
        reuse a wavefront only for the same ``wf_id``/``program``.
        """
        (
            _,
            _,
            _,
            _,
            _,
            self.pc_idx,
            loops,
            self.ready_at,
            self.outstanding,
            self.outstanding_stores,
            self.blocked_wait_target,
            self.blocked_barrier,
            self.blocked_since,
            self.done,
            visits,
            self.last_mem_completion,
            stats_cap,
        ) = cap
        self.loop_counters = dict(loops)
        self.pc_visits = dict(visits)
        self.stats.restore_capture(stats_cap)

    @classmethod
    def from_capture(cls, cap: tuple) -> "Wavefront":
        """Materialise a fresh wavefront from a :meth:`capture` tuple."""
        out = cls.__new__(cls)
        out.wf_id, out.workgroup_id, out.wave_in_group, code, out.age = cap[:5]
        # Old captures carried the raw Program at index 3; normalise.
        out.code = code.compiled if isinstance(code, Program) else code
        out.stats = WavefrontStats()
        out.restore_capture(cap)
        return out

    def capture_nbytes(self) -> int:
        """Rough payload size of :meth:`capture` (8 bytes per scalar)."""
        return 8 * (28 + 2 * (len(self.loop_counters) + len(self.pc_visits)))


__all__ = ["Wavefront", "WavefrontStats"]
