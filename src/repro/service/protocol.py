"""Wire protocol of the online DVFS decision service.

Framing
-------
Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON (one object per frame). The
framing helpers (and the exact-float-round-trip rationale) live in
:mod:`repro.runtime.wire`, shared with the distributed sweep broker;
this module re-exports them so service code and existing callers keep
one import site.

Message vocabulary
------------------
Client -> server:

``open``
    Start a session: ``design`` (registry name), ``config`` (the wire
    form of a :class:`~repro.config.SimConfig`, see
    :func:`sim_config_from_wire`), optional ``objective`` (display
    name, see :func:`objective_from_name`). The reply carries the
    decision for epoch 0 - mirroring the offline loop, which calls
    ``controller.decide()`` before the first epoch runs.
``observe``
    One elapsed epoch: ``epoch`` (index), ``result`` (wire
    :class:`~repro.gpu.gpu.EpochResult`), optional ``truth`` (oracle
    sensitivity lines, required by truth-consuming designs), ``seq``
    (client-chosen correlator echoed in the reply). The reply is the
    decision for ``epoch + 1``.
``ping`` / ``close``
    Liveness probe / orderly goodbye.

Server -> client: ``open_ok``, ``decision``, ``pong``, ``bye``,
``shed`` (backpressure - resend after a backoff), ``error`` (carries
``code`` + ``error``; the session survives unless the error says
otherwise), ``shutdown`` (server is draining; no more requests will be
served).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional

from repro.config import DvfsConfig, GpuConfig, MemoryConfig, PowerConfig, SimConfig
from repro.runtime.wire import (  # noqa: F401  (re-exported public surface)
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)
from repro.core.objectives import (
    EDnPObjective,
    Objective,
    PerformanceCapObjective,
    QoSDeadlineObjective,
    StaticObjective,
)
from repro.core.sensitivity import LinearSensitivity
from repro.gpu.cu import CuEpochStats
from repro.gpu.gpu import EpochResult, WaveEpochRecord
from repro.gpu.wavefront import WavefrontStats

#: Protocol revision; an ``open`` carrying a different one is rejected.
PROTOCOL_VERSION = 1

#: Default decision-service port (and health port right above it).
DEFAULT_PORT = 8472
DEFAULT_HEALTH_PORT = 8473

# Client -> server message types.
MSG_OPEN = "open"
MSG_OBSERVE = "observe"
MSG_PING = "ping"
MSG_CLOSE = "close"

# Server -> client message types.
MSG_OPEN_OK = "open_ok"
MSG_DECISION = "decision"
MSG_PONG = "pong"
MSG_BYE = "bye"
MSG_SHED = "shed"
MSG_ERROR = "error"
MSG_SHUTDOWN = "shutdown"


# ----------------------------------------------------------------------
# Wire <-> simulator objects
#
# The *_to_wire encoders live in repro.telemetry.schema (the recorder
# writes them into traces without importing gpu/dvfs modules); the
# decoders live here because reconstructing live simulator objects is
# exactly the service's job.

def lines_to_wire(
    lines: Optional[List[LinearSensitivity]],
) -> Optional[List[List[float]]]:
    if lines is None:
        return None
    return [[ln.i0, ln.slope] for ln in lines]


def lines_from_wire(wire: Any) -> List[LinearSensitivity]:
    try:
        return [LinearSensitivity(float(i0), float(slope)) for i0, slope in wire]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed truth lines: {exc}") from None


def sim_config_from_wire(wire: Mapping[str, Any]) -> SimConfig:
    """Rebuild a :class:`~repro.config.SimConfig` from its wire form.

    Inverse of :func:`repro.telemetry.schema.sim_config_to_wire`. Field
    names are applied as keyword arguments, so an unknown field (a
    config from a different repro version) fails loudly instead of
    being silently dropped.
    """
    try:
        gpu_wire = dict(wire["gpu"])
        gpu_wire["memory"] = MemoryConfig(**wire["gpu"]["memory"])
        dvfs_wire = dict(wire["dvfs"])
        dvfs_wire["frequencies_ghz"] = tuple(dvfs_wire["frequencies_ghz"])
        return SimConfig(
            gpu=GpuConfig(**gpu_wire),
            dvfs=DvfsConfig(**dvfs_wire),
            power=PowerConfig(**wire["power"]),
            seed=int(wire["seed"]),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed sim config: {exc}") from None


def epoch_result_from_wire(wire: Mapping[str, Any]) -> EpochResult:
    """Rebuild an :class:`~repro.gpu.gpu.EpochResult` from its wire form.

    Inverse of :func:`repro.telemetry.schema.epoch_result_to_wire`;
    restores the per-CU and per-wavefront stats through the same
    ``restore_capture`` paths the GPU snapshot machinery uses.
    """
    try:
        cu_stats = []
        for cap in wire["cu_stats"]:
            stats = CuEpochStats()
            stats.restore_capture(tuple(cap))
            cu_stats.append(stats)
        wave_records = []
        for cu_records in wire["wave_records"]:
            records = []
            for wf_id, age_rank, start_pc_idx, next_pc_idx, cap in cu_records:
                wstats = WavefrontStats()
                wstats.restore_capture(tuple(cap))
                records.append(
                    WaveEpochRecord(
                        wf_id=int(wf_id),
                        age_rank=int(age_rank),
                        start_pc_idx=int(start_pc_idx),
                        next_pc_idx=int(next_pc_idx),
                        stats=wstats,
                    )
                )
            wave_records.append(tuple(records))
        return EpochResult(
            t_start=float(wire["t_start"]),
            t_end=float(wire["t_end"]),
            frequencies_ghz=tuple(wire["frequencies_ghz"]),
            cu_stats=tuple(cu_stats),
            wave_records=tuple(wave_records),
            transitions=int(wire["transitions"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed epoch result: {exc}") from None


#: Display-name patterns for the objective registry (see
#: ``repro.core.objectives``; each class stamps ``self.name``).
_EDNP_RE = re.compile(r"^ED(\d+)P$")
_ENERGY_RE = re.compile(r"^ENERGY@(\d+(?:\.\d+)?)%$")
_QOS_RE = re.compile(r"^QOS@(\d+(?:\.\d+)?)$")
_STATIC_RE = re.compile(r"^STATIC@(\d+(?:\.\d+)?)(?:GHz)?$", re.IGNORECASE)
_CLI_CAP_RE = re.compile(r"^cap(\d+(?:\.\d+)?)$")
_CLI_EDNP_RE = re.compile(r"^ed(\d*)p$")


def objective_from_name(name: str) -> Optional[Objective]:
    """Objective instance for a display or CLI name; None = default.

    Accepts the display names objectives stamp on themselves (``EDP``,
    ``ED2P``, ``ENERGY@5%``, ``QOS@1000``, ``STATIC@1.7GHz``) - which is
    what run headers record - plus the CLI spellings (``ed2p``,
    ``cap5``). The empty string means "driver default" (ED2P, matching
    :func:`repro.dvfs.designs.make_controller`).
    """
    name = name.strip()
    if not name:
        return None
    if name == "EDP":
        return EDnPObjective(1)
    m = _EDNP_RE.match(name)
    if m:
        return EDnPObjective(int(m.group(1)))
    m = _CLI_EDNP_RE.match(name)
    if m:
        return EDnPObjective(int(m.group(1) or 1))
    m = _ENERGY_RE.match(name)
    if m:
        return PerformanceCapObjective(float(m.group(1)) / 100.0)
    m = _CLI_CAP_RE.match(name)
    if m:
        return PerformanceCapObjective(float(m.group(1)) / 100.0)
    m = _QOS_RE.match(name)
    if m:
        return QoSDeadlineObjective(float(m.group(1)))
    m = _STATIC_RE.match(name)
    if m:
        return StaticObjective(float(m.group(1)))
    raise ProtocolError(f"unknown objective name {name!r}")


__all__ = [
    "DEFAULT_HEALTH_PORT",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "MSG_BYE",
    "MSG_CLOSE",
    "MSG_DECISION",
    "MSG_ERROR",
    "MSG_OBSERVE",
    "MSG_OPEN",
    "MSG_OPEN_OK",
    "MSG_PING",
    "MSG_PONG",
    "MSG_SHED",
    "MSG_SHUTDOWN",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_payload",
    "encode_frame",
    "epoch_result_from_wire",
    "lines_from_wire",
    "lines_to_wire",
    "objective_from_name",
    "read_frame",
    "recv_frame",
    "send_frame",
    "sim_config_from_wire",
]
