"""Blocking client for the decision service, with timeout and retry.

:class:`DecisionClient` speaks the :mod:`repro.service.protocol` frame
protocol over a plain socket (blocking I/O - the client is the "GPU
side" of the loop and has nothing useful to do while a decision is in
flight). Transient failures reuse the sweep runtime's
:class:`~repro.runtime.executor.RetryPolicy` semantics: jitterless
exponential backoff, a bounded attempt budget, deterministic schedule.
Two things retry:

* **connect** - a refused/unreachable server (it may still be binding);
* **shed observations** - the server answered ``shed`` (backpressure).
  Resending is safe by construction: the server applies an observation
  only at the exact expected epoch index, so a shed-then-resent epoch
  can never be double-applied.

Everything else (protocol errors, rejected sessions, shutdown notices)
surfaces as a :class:`ServiceError` subclass immediately.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional

from repro.runtime.executor import RetryPolicy
from repro.service import protocol as proto
from repro.telemetry.schema import epoch_result_to_wire, sim_config_to_wire


class ServiceError(RuntimeError):
    """Base class for decision-service client errors."""


class SessionRejected(ServiceError):
    """The server refused to open a session (capacity, bad config...)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class RequestShed(ServiceError):
    """An observation was shed and the retry budget ran out."""


class ServiceShutdown(ServiceError):
    """The server announced shutdown or closed the connection."""


def default_retry() -> RetryPolicy:
    """Client-side policy: a few quick attempts, sub-second backoff.

    ``retryable`` lists the client-visible transient failures;
    :meth:`RetryPolicy.delay_for` supplies the same jitterless
    exponential schedule the sweep executor uses.
    """
    return RetryPolicy(
        max_attempts=5,
        backoff_base_s=0.05,
        backoff_factor=2.0,
        backoff_max_s=1.0,
        retryable=(ConnectionError, OSError),
        serial_final_attempt=False,
    )


class DecisionClient:
    """One session against a live :class:`~repro.service.server.DecisionService`.

    Usage::

        with DecisionClient(port=port).connect() as client:
            freqs = client.open_session("PCSTALL", sim_config)
            for epoch in range(n_epochs):
                result = run_the_epoch_at(freqs)
                freqs = client.observe(epoch, result)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = proto.DEFAULT_PORT,
        timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry or default_retry()
        self._sock: Optional[socket.socket] = None
        self._seq = 0
        self.session_id: Optional[int] = None
        self.n_domains = 0
        #: Observability for callers (the replay report prints these).
        self.sheds = 0
        self.connect_retries = 0

    # ------------------------------------------------------------------

    def connect(self) -> "DecisionClient":
        """Open the TCP connection, retrying refused connects."""
        attempt = 0
        while True:
            attempt += 1
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
                self._sock.settimeout(self.timeout_s)
                return self
            except OSError as exc:
                if attempt >= self.retry.max_attempts or not self.retry.is_retryable(exc):
                    raise
                self.connect_retries += 1
                time.sleep(self.retry.delay_for(attempt + 1))

    def open_session(
        self,
        design: str,
        sim_config: Any,
        objective: str = "",
    ) -> List[float]:
        """Open a session; returns the decision for epoch 0.

        ``sim_config`` may be a :class:`~repro.config.SimConfig` or an
        already-wire-form dict (e.g. straight out of a trace header).
        """
        wire_config = (
            sim_config if isinstance(sim_config, dict)
            else sim_config_to_wire(sim_config)
        )
        self._send({
            "type": proto.MSG_OPEN,
            "protocol": proto.PROTOCOL_VERSION,
            "design": design,
            "config": wire_config,
            "objective": objective,
        })
        reply = self._recv()
        if reply.get("type") == proto.MSG_ERROR:
            raise SessionRejected(str(reply.get("code")), str(reply.get("error")))
        if reply.get("type") != proto.MSG_OPEN_OK:
            raise ServiceError(f"unexpected open reply: {reply!r}")
        self.session_id = int(reply["session"])  # type: ignore[arg-type]
        self.n_domains = int(reply["n_domains"])  # type: ignore[arg-type]
        return [float(f) for f in reply["decision"]]  # type: ignore[union-attr]

    def observe(
        self,
        epoch: int,
        result: Any,
        truth_lines: Any = None,
    ) -> List[float]:
        """Report epoch ``epoch``; returns the decision for ``epoch + 1``.

        ``result`` may be a live :class:`~repro.gpu.gpu.EpochResult` or
        its wire dict; ``truth_lines`` a list of
        :class:`~repro.core.sensitivity.LinearSensitivity`, a wire
        ``[[i0, slope], ...]`` list, or None. A ``shed`` reply is
        retried with backoff up to the policy's attempt budget.
        """
        wire_result = (
            result if isinstance(result, dict) else epoch_result_to_wire(result)
        )
        wire_truth = (
            truth_lines
            if truth_lines is None or isinstance(truth_lines, list)
            and all(isinstance(x, (list, tuple)) for x in truth_lines)
            else proto.lines_to_wire(truth_lines)
        )
        attempt = 0
        while True:
            attempt += 1
            self._seq += 1
            self._send({
                "type": proto.MSG_OBSERVE,
                "seq": self._seq,
                "epoch": epoch,
                "result": wire_result,
                "truth": wire_truth,
            })
            reply = self._recv_for(self._seq)
            rtype = reply.get("type")
            if rtype == proto.MSG_DECISION:
                return [float(f) for f in reply["decision"]]  # type: ignore[union-attr]
            if rtype == proto.MSG_SHED:
                self.sheds += 1
                if attempt >= self.retry.max_attempts:
                    raise RequestShed(
                        f"epoch {epoch} shed {attempt} times "
                        f"(reason {reply.get('reason')!r})"
                    )
                time.sleep(self.retry.delay_for(attempt + 1))
                continue
            if rtype == proto.MSG_ERROR:
                raise ServiceError(
                    f"{reply.get('code')}: {reply.get('error')}"
                )
            raise ServiceError(f"unexpected reply to observe: {reply!r}")

    def ping(self) -> None:
        self._send({"type": proto.MSG_PING})
        reply = self._recv()
        if reply.get("type") != proto.MSG_PONG:
            raise ServiceError(f"unexpected ping reply: {reply!r}")

    def close(self) -> None:
        """Orderly goodbye; quiet on a server that already went away."""
        if self._sock is None:
            return
        try:
            self._send({"type": proto.MSG_CLOSE})
            proto.recv_frame(self._sock)  # bye (or EOF), best-effort
        except (OSError, ServiceError, proto.ProtocolError):
            pass
        finally:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "DecisionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _send(self, message: Dict[str, object]) -> None:
        if self._sock is None:
            raise ServiceError("client is not connected; call connect() first")
        try:
            proto.send_frame(self._sock, message)
        except OSError as exc:
            raise ServiceShutdown(f"server connection lost: {exc}") from None

    def _recv(self) -> Dict[str, object]:
        if self._sock is None:
            raise ServiceError("client is not connected; call connect() first")
        try:
            reply = proto.recv_frame(self._sock)
        except socket.timeout:
            raise ServiceError(
                f"no reply within {self.timeout_s}s"
            ) from None
        if reply is None:
            raise ServiceShutdown("server closed the connection")
        if reply.get("type") == proto.MSG_SHUTDOWN:
            raise ServiceShutdown("server is shutting down")
        return reply

    def _recv_for(self, seq: int) -> Dict[str, object]:
        """Next reply correlated to ``seq`` (skips stray pongs)."""
        while True:
            reply = self._recv()
            if reply.get("type") == proto.MSG_PONG:
                continue
            reply_seq = reply.get("seq")
            if reply_seq is None or reply_seq == seq:
                return reply
            # A reply to an older (superseded) request: drop it.


# ----------------------------------------------------------------------
# Health helpers (plain HTTP against the service's second listener)

def check_health(
    host: str = "127.0.0.1",
    port: int = proto.DEFAULT_HEALTH_PORT,
    timeout_s: float = 2.0,
) -> Dict[str, object]:
    """GET /healthz; returns the parsed body (raises on refusal)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        body["http_status"] = response.status
        return body
    finally:
        conn.close()


def wait_until_healthy(
    host: str = "127.0.0.1",
    port: int = proto.DEFAULT_HEALTH_PORT,
    timeout_s: float = 10.0,
    interval_s: float = 0.1,
) -> Dict[str, object]:
    """Poll /healthz until it answers 200, or raise after ``timeout_s``."""
    deadline = time.monotonic() + timeout_s
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            body = check_health(host, port, timeout_s=interval_s * 5)
            if body.get("http_status") == 200:
                return body
        except (OSError, ValueError) as exc:
            last_error = exc
        time.sleep(interval_s)
    raise ServiceError(
        f"service on {host}:{port} not healthy after {timeout_s}s "
        f"(last error: {last_error})"
    )


__all__ = [
    "DecisionClient",
    "RequestShed",
    "ServiceError",
    "ServiceShutdown",
    "SessionRejected",
    "check_health",
    "default_retry",
    "wait_until_healthy",
]
