"""``repro replay``: verify a live server against an offline trace.

A trace recorded with ``repro trace ... --jsonl FILE --observations``
holds, per epoch, both sides of the decision loop: the frequencies the
offline :class:`~repro.dvfs.simulation.DvfsSimulation` chose (``domain``
records) and the complete predictor input that produced them
(``observation`` records), plus the full platform config in the run
header. Replay reconstructs the loop against a *live* server:

1. ``open`` a session with the trace's design/config/objective - the
   reply must equal the offline decision for epoch 0;
2. stream observation ``e``, compare the returned decision with the
   offline decision for epoch ``e + 1``;
3. report every mismatch, per (epoch, domain), bit-for-bit.

Because the wire protocol round-trips floats exactly (see
:mod:`repro.service.protocol`) and the server rebuilds its controller
through the same :func:`~repro.dvfs.designs.make_controller` path the
simulation used, the comparison is exact equality - any drift between
the service and the simulator is a bug, and this is the tripwire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.executor import RetryPolicy
from repro.service.client import DecisionClient
from repro.telemetry.schema import check_meta, load_trace_jsonl


@dataclass(frozen=True)
class Mismatch:
    """One decision that differed between offline trace and live server."""

    epoch: int
    domain: int
    offline_ghz: float
    online_ghz: float


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    workload: str
    design: str
    objective: str
    epochs_streamed: int = 0
    decisions_compared: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    sheds: int = 0
    connect_retries: int = 0

    @property
    def bit_identical(self) -> bool:
        return not self.mismatches and self.decisions_compared > 0

    def render(self) -> str:
        head = (
            f"{self.workload}/{self.design}"
            f"{f' ({self.objective})' if self.objective else ''}: "
            f"{self.epochs_streamed} epochs streamed, "
            f"{self.decisions_compared} decisions compared"
        )
        if self.sheds or self.connect_retries:
            head += (f" ({self.sheds} shed/resent, "
                     f"{self.connect_retries} connect retries)")
        if self.bit_identical:
            return head + "\nonline decisions are bit-identical to the offline run"
        lines = [head, f"{len(self.mismatches)} MISMATCHED decision(s):"]
        for m in self.mismatches[:20]:
            lines.append(
                f"  epoch {m.epoch} domain {m.domain}: "
                f"offline {m.offline_ghz!r} != online {m.online_ghz!r}"
            )
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class ReplayTrace:
    """The replayable content of one epoch-trace JSONL."""

    workload: str
    design: str
    objective: str
    sim_config_wire: Dict[str, Any]
    n_domains: int
    #: observations[e] = {"result": wire EpochResult, "truth": wire lines}
    observations: List[Dict[str, Any]]
    #: chosen[e][d] = the offline decision (GHz) for epoch e, domain d.
    chosen: List[List[float]]


def load_replay_trace(path: str) -> ReplayTrace:
    """Load and cross-check a trace for replay.

    Raises ``ValueError`` with an actionable message when the trace
    lacks what replay needs (old schema, missing ``--observations``,
    gaps in the epoch sequence).
    """
    records = load_trace_jsonl(path)
    if not records or records[0].get("type") != "run":
        raise ValueError(f"{path}: not an epoch trace (no run header)")
    header = check_meta(records[0])

    sim_config_wire = header.get("sim_config")
    if not isinstance(sim_config_wire, dict):
        raise ValueError(
            f"{path}: run header has no embedded sim_config; re-record "
            f"with: repro trace <workload> --jsonl FILE --observations"
        )
    n_domains = int(header["n_domains"])  # type: ignore[arg-type]

    observations: Dict[int, Dict[str, Any]] = {}
    chosen: Dict[int, Dict[int, float]] = {}
    for record in records[1:]:
        rtype = record.get("type")
        if rtype == "observation":
            observations[int(record["epoch"])] = {  # type: ignore[arg-type]
                "result": record["result"],
                "truth": record.get("truth"),
            }
        elif rtype == "domain":
            epoch = int(record["epoch"])  # type: ignore[arg-type]
            chosen.setdefault(epoch, {})[int(record["domain"])] = (  # type: ignore[arg-type]
                float(record["freq_ghz"])  # type: ignore[arg-type]
            )

    if not observations:
        raise ValueError(
            f"{path}: no observation records; re-record with: "
            f"repro trace <workload> --jsonl FILE --observations"
        )
    n_epochs = len(observations)
    for collection, what in ((observations, "observation"), (chosen, "domain")):
        missing = [e for e in range(n_epochs) if e not in collection]
        if missing:
            raise ValueError(
                f"{path}: {what} records missing for epochs {missing[:5]} "
                f"(trace truncated?)"
            )
    chosen_lists: List[List[float]] = []
    for e in range(n_epochs):
        per_domain = chosen[e]
        if sorted(per_domain) != list(range(n_domains)):
            raise ValueError(
                f"{path}: epoch {e} has domain records for {sorted(per_domain)}, "
                f"expected 0..{n_domains - 1}"
            )
        chosen_lists.append([per_domain[d] for d in range(n_domains)])

    return ReplayTrace(
        workload=str(header.get("workload", "?")),
        design=str(header.get("design", "?")),
        objective=str(header.get("objective", "")),
        sim_config_wire=sim_config_wire,
        n_domains=n_domains,
        observations=[observations[e] for e in range(n_epochs)],
        chosen=chosen_lists,
    )


def replay_trace(
    path: str,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    timeout_s: float = 30.0,
    retry: Optional[RetryPolicy] = None,
) -> ReplayReport:
    """Stream a recorded trace through a live server; compare decisions.

    Comparison is exact float equality: the recorded ``freq_ghz`` and
    the served decision both round-tripped through JSON's
    shortest-repr encoding, so equal decisions compare equal and any
    difference is a real divergence, not noise.
    """
    from repro.service.protocol import DEFAULT_PORT

    trace = load_replay_trace(path)
    report = ReplayReport(
        workload=trace.workload, design=trace.design, objective=trace.objective
    )

    client = DecisionClient(
        host=host,
        port=DEFAULT_PORT if port is None else port,
        timeout_s=timeout_s,
        retry=retry,
    ).connect()
    try:
        decision = client.open_session(
            trace.design, trace.sim_config_wire, objective=trace.objective
        )
        _compare(report, 0, decision, trace.chosen[0])
        n_epochs = len(trace.observations)
        for epoch in range(n_epochs):
            obs = trace.observations[epoch]
            decision = client.observe(epoch, obs["result"], truth_lines=obs["truth"])
            report.epochs_streamed += 1
            if epoch + 1 < n_epochs:
                # The decision for the final epoch + 1 has no offline
                # counterpart (the run ended there); nothing to compare.
                _compare(report, epoch + 1, decision, trace.chosen[epoch + 1])
    finally:
        report.sheds = client.sheds
        report.connect_retries = client.connect_retries
        client.close()
    return report


def _compare(
    report: ReplayReport,
    epoch: int,
    online: List[float],
    offline: List[float],
) -> None:
    report.decisions_compared += 1
    for domain, (got, expected) in enumerate(zip(online, offline)):
        if got != expected:
            report.mismatches.append(
                Mismatch(epoch=epoch, domain=domain,
                         offline_ghz=expected, online_ghz=got)
            )


__all__ = ["Mismatch", "ReplayReport", "ReplayTrace", "load_replay_trace", "replay_trace"]
