"""The asyncio decision server: per-session controllers, micro-batched.

One :class:`DecisionService` owns:

* **Sessions** - each ``open`` builds a fresh controller via
  :func:`~repro.dvfs.designs.make_controller` from the client-supplied
  design + config, so session state (PC tables, objective feedback,
  current frequencies) is exactly the state an offline
  :class:`~repro.dvfs.simulation.DvfsSimulation` would hold. Designs
  needing *future* oracle truth (ORACLE) are rejected at open: an
  online service cannot pre-execute its clients' next epoch.
* **Micro-batching** - observations from all sessions funnel into one
  queue drained by a single batch worker, up to ``batch_max`` per
  pass. One worker means predictor updates never need locks, and a
  pass over N sessions amortises scheduling the way the paper's DVFS
  manager amortises per-domain decisions within an epoch boundary.
* **Admission control & backpressure** - at most ``max_sessions``
  concurrent sessions; per session at most ``max_inflight`` queued
  observations, beyond which (or when the client stops reading its
  responses, detected via the transport write buffer) the reader
  answers ``shed`` immediately *without touching predictor state*, so
  a shed epoch can simply be resent. Responses are written without
  awaiting drain - a slow consumer can therefore never deadlock the
  batch worker; memory stays bounded because overflowing sessions are
  shed, not buffered.
* **Graceful shutdown** - :meth:`DecisionService.shutdown` stops
  accepting, lets the batch worker finish everything already admitted
  (bounded by ``drain_timeout_s``), notifies every session with a
  ``shutdown`` frame and closes. ``repro serve`` wires SIGTERM/SIGINT
  to it.
* **Observability** - ``/healthz`` (200 serving / 503 draining) and
  ``/metrics`` (a :class:`~repro.telemetry.metrics.MetricsRegistry`
  snapshot with build meta + config hash as JSON, or Prometheus text
  exposition via ``?format=prometheus`` / ``Accept: text/plain``) over
  minimal hand-rolled HTTP on a second listener. An optional
  :class:`~repro.obs.trace.Tracer` spans every connect -> session ->
  request -> decision, and an optional
  :class:`~repro.obs.drift.DriftMonitor` watches the shed rate - both
  strictly observational: decisions are bit-identical with or without
  them (``repro replay`` against a traced server pins this down).

Epoch ordering is enforced per session: an ``observe`` whose epoch
index is not the next expected one gets an ``error`` reply and changes
nothing, which is what makes SHED-and-resend sound - a resent epoch is
either the expected one (applied once) or stale (rejected).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.dvfs.designs import make_controller
from repro.obs.log import get_logger
from repro.service import protocol as proto
from repro.telemetry.metrics import BATCH_BUCKETS, MetricsRegistry

if TYPE_CHECKING:
    from repro.obs.drift import DriftMonitor
    from repro.obs.trace import Span, Tracer

_log = get_logger("service")

_HTTP_STATUS_TEXT = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of one :class:`DecisionService`."""

    host: str = "127.0.0.1"
    #: Decision port; 0 binds an ephemeral port (tests).
    port: int = proto.DEFAULT_PORT
    #: Health/metrics HTTP port; 0 = ephemeral, None = disabled.
    health_port: Optional[int] = proto.DEFAULT_HEALTH_PORT
    #: Admission cap: concurrent sessions beyond this are rejected.
    max_sessions: int = 64
    #: Per-session cap on admitted-but-unanswered observations; the
    #: overflow is shed (backpressure to the client, not memory growth).
    max_inflight: int = 8
    #: Most observations one batch-worker pass decides.
    batch_max: int = 32
    #: Transport write-buffer bytes beyond which a session counts as a
    #: slow consumer and its observations are shed.
    write_buffer_limit: int = 1 << 20
    #: How long shutdown waits for admitted work to finish.
    drain_timeout_s: float = 10.0
    #: Default model-registry reference served to sessions opening the
    #: bare ``LEARNED`` design (``repro serve --model``). Sessions that
    #: pin a model via ``LEARNED@<ref>`` override this per open.
    model_ref: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")


class _Session:
    """Server-side state of one client connection."""

    __slots__ = ("sid", "writer", "controller", "design", "inflight",
                 "expected_epoch", "closed", "span")

    def __init__(self, sid: int, writer: asyncio.StreamWriter, controller, design: str):
        self.sid = sid
        self.writer = writer
        self.controller = controller
        self.design = design
        #: Observations admitted to the batch queue, not yet answered.
        self.inflight = 0
        #: The only epoch index the next observe may carry.
        self.expected_epoch = 0
        self.closed = False
        #: The session's tracing span, when the service has a tracer.
        self.span: Optional["Span"] = None


class DecisionService:
    """The serving loop. ``await start()``, then ``await wait_closed()``."""

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional["Tracer"] = None,
        drift: Optional["DriftMonitor"] = None,
    ) -> None:
        self.config = config
        self.registry = registry or MetricsRegistry()
        #: Optional span tracer: connect -> session -> request ->
        #: decision. Spans only observe; decisions are bit-identical
        #: with or without one (``repro replay`` pins this down).
        self.tracer = tracer
        #: Optional drift monitor; fed one shed_rate observation per
        #: observe frame (shed=1, admitted=0).
        self.drift = drift
        self._sessions: Dict[int, _Session] = {}
        self._next_sid = 0
        self._queue: "asyncio.Queue[tuple]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_server: Optional[asyncio.AbstractServer] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._draining = False
        self._closed = asyncio.Event()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        if self.config.health_port is not None:
            self._health_server = await asyncio.start_server(
                self._handle_health, self.config.host, self.config.health_port
            )
        self._batch_task = asyncio.get_running_loop().create_task(self._batch_loop())

    @property
    def port(self) -> int:
        """The bound decision port (resolves ephemeral port 0)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def health_port(self) -> Optional[int]:
        if self._health_server is None:
            return None
        return self._health_server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish admitted work, notify.

        Idempotent; a second call awaits the first one's completion.
        """
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()

        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            if self._queue.empty() and not any(
                s.inflight for s in self._sessions.values()
            ):
                break
            await asyncio.sleep(0.01)
        drained = self._queue.empty() and not any(
            s.inflight for s in self._sessions.values()
        )
        self.registry.inc(
            "service_drain_clean" if drained else "service_drain_timeout"
        )

        for session in list(self._sessions.values()):
            self._write(session, {"type": proto.MSG_SHUTDOWN, "drained": drained})
            session.closed = True
        for session in list(self._sessions.values()):
            try:
                # Bounded flush: the notify frame should reach clients,
                # but one wedged consumer must not stall the shutdown.
                await asyncio.wait_for(session.writer.drain(), timeout=1.0)
            except (asyncio.TimeoutError, ConnectionError):
                pass
            session.writer.close()

        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
        if self._health_server is not None:
            self._health_server.close()
            await self._health_server.wait_closed()
        if self._server is not None:
            await self._server.wait_closed()
        self._closed.set()

    # ------------------------------------------------------------------
    # Decision protocol

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        reg = self.registry
        tr = self.tracer
        conn_span = tr.start("connect") if tr is not None else None
        session: Optional[_Session] = None
        try:
            try:
                msg = await proto.read_frame(reader)
            except proto.ProtocolError as exc:
                self._reply(writer, {"type": proto.MSG_ERROR,
                                     "code": "protocol", "error": str(exc)})
                return
            if msg is None:
                return
            session = self._open_session(msg, writer)
            if session is None:
                return
            if tr is not None:
                session.span = tr.start(
                    "session", parent=conn_span,
                    session=session.sid, design=session.design,
                )

            while True:
                try:
                    msg = await proto.read_frame(reader)
                except proto.ProtocolError as exc:
                    self._write(session, {"type": proto.MSG_ERROR,
                                          "code": "protocol", "error": str(exc)})
                    break
                if msg is None:
                    # EOF without a close frame: an abrupt disconnect
                    # (unless we closed the transport ourselves to drain).
                    if not self._draining:
                        reg.inc("service_disconnects")
                    break
                mtype = msg.get("type")
                if mtype == proto.MSG_OBSERVE:
                    self._admit(session, msg)
                elif mtype == proto.MSG_PING:
                    self._write(session, {"type": proto.MSG_PONG})
                elif mtype == proto.MSG_CLOSE:
                    self._write(session, {"type": proto.MSG_BYE})
                    break
                else:
                    self._write(session, {
                        "type": proto.MSG_ERROR, "code": "unknown_type",
                        "error": f"unknown message type {mtype!r}",
                    })
        finally:
            if session is not None:
                session.closed = True
                self._sessions.pop(session.sid, None)
                reg.inc("service_sessions_closed")
                _log.info(
                    "session closed",
                    extra={"session": session.sid,
                           "epochs": session.expected_epoch},
                )
                if session.span is not None:
                    tr.finish(session.span, epochs=session.expected_epoch)
            if conn_span is not None:
                tr.finish(conn_span)
            writer.close()

    def _open_session(self, msg, writer: asyncio.StreamWriter) -> Optional[_Session]:
        """Admission + controller construction for an ``open`` frame."""
        reg = self.registry

        def reject(code: str, error: str) -> None:
            reg.inc("service_rejects")
            _log.warning(f"open rejected: {error}", extra={"code": code})
            self._reply(writer, {"type": proto.MSG_ERROR, "code": code,
                                 "error": error})

        if msg.get("type") != proto.MSG_OPEN:
            reject("expected_open",
                   f"first frame must be {proto.MSG_OPEN!r}, got {msg.get('type')!r}")
            return None
        version = msg.get("protocol", proto.PROTOCOL_VERSION)
        if version != proto.PROTOCOL_VERSION:
            reject("protocol_version",
                   f"server speaks protocol {proto.PROTOCOL_VERSION}, "
                   f"client sent {version!r}")
            return None
        if self._draining:
            reject("draining", "server is shutting down")
            return None
        if len(self._sessions) >= self.config.max_sessions:
            reject("capacity",
                   f"session cap reached ({self.config.max_sessions})")
            return None

        design = str(msg.get("design", ""))
        try:
            sim_config = proto.sim_config_from_wire(msg["config"])
            objective = proto.objective_from_name(str(msg.get("objective", "")))
            # Unknown designs and unresolvable LEARNED model references
            # both surface as ValueError and reject as bad opens.
            controller = make_controller(
                design, sim_config, objective,
                model_ref=self.config.model_ref,
            )
        except (proto.ProtocolError, KeyError, ValueError) as exc:
            reject("bad_open", str(exc))
            return None
        if controller.predictor.needs_future_truth:
            # ORACLE samples the *upcoming* epoch by forking the GPU;
            # a server only ever sees epochs that already happened.
            reject("unservable_design",
                   f"design {design!r} needs future oracle truth and "
                   f"cannot be served online")
            return None

        self._next_sid += 1
        session = _Session(self._next_sid, writer, controller, design)
        self._sessions[session.sid] = session
        reg.inc("service_sessions_opened")
        gauge = reg.gauge("service_sessions_peak")
        gauge.set(max(gauge.value, len(self._sessions)))
        _log.info(
            "session opened",
            extra={"session": session.sid, "design": design},
        )

        # Mirror the offline loop: decide() runs before the first epoch.
        decision = controller.decide()
        self._write(session, {
            "type": proto.MSG_OPEN_OK,
            "session": session.sid,
            "protocol": proto.PROTOCOL_VERSION,
            "design": design,
            "n_domains": sim_config.gpu.n_domains,
            "epoch": 0,
            "decision": list(decision),
        })
        return session

    def _admit(self, session: _Session, msg) -> None:
        """Queue an observation, or shed it when the session is over cap."""
        reg = self.registry
        tr = self.tracer
        reg.inc("service_requests")
        transport = session.writer.transport
        slow = (
            transport is not None
            and transport.get_write_buffer_size() > self.config.write_buffer_limit
        )
        if self._draining or session.inflight >= self.config.max_inflight or slow:
            reg.inc("service_shed")
            reason = ("draining" if self._draining
                      else "slow_consumer" if slow else "inflight_cap")
            if self.drift is not None:
                self.drift.observe_shed(True)
            if tr is not None:
                tr.event(
                    "shed", parent=session.span,
                    session=session.sid, reason=reason,
                    epoch=msg.get("epoch"),
                )
            _log.warning(
                "observation shed",
                extra={"session": session.sid, "reason": reason,
                       "epoch": msg.get("epoch")},
            )
            self._write(session, {
                "type": proto.MSG_SHED,
                "seq": msg.get("seq"),
                "epoch": msg.get("epoch"),
                "reason": reason,
            })
            return
        if self.drift is not None:
            self.drift.observe_shed(False)
        req_span = None
        if tr is not None:
            req_span = tr.start(
                "request", parent=session.span,
                session=session.sid, epoch=msg.get("epoch"),
            )
        session.inflight += 1
        self._queue.put_nowait((session, msg, req_span))

    async def _batch_loop(self) -> None:
        """Single consumer of the observation queue.

        Waits for one item, then opportunistically drains up to
        ``batch_max`` - one pass decides for every session that had
        work pending, which is the micro-batching: under concurrent
        load the per-wakeup cost is shared across sessions.
        """
        reg = self.registry
        tr = self.tracer
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            reg.inc("service_batches")
            reg.histogram("service_batch_size", BATCH_BUCKETS).observe(len(batch))
            for session, msg, req_span in batch:
                dec_span = (
                    tr.start("decision", parent=req_span)
                    if tr is not None and req_span is not None
                    else None
                )
                try:
                    reply = self._decide(session, msg)
                except Exception as exc:  # never let one request kill the loop
                    reg.inc("service_internal_errors")
                    _log.error(
                        f"internal error deciding for session {session.sid}: {exc}",
                        extra={"session": session.sid},
                    )
                    reply = {"type": proto.MSG_ERROR, "code": "internal",
                             "seq": msg.get("seq"), "error": str(exc)}
                if dec_span is not None:
                    tr.finish(dec_span)
                session.inflight -= 1
                self._write(session, reply)
                if req_span is not None:
                    tr.finish(
                        req_span,
                        status=(reply or {}).get("type", "none"),
                    )

    def _decide(self, session: _Session, msg) -> Optional[Dict[str, object]]:
        """observe() + decide() for one admitted observation."""
        reg = self.registry
        if session.closed:
            return None
        seq = msg.get("seq")
        epoch = msg.get("epoch")
        if epoch != session.expected_epoch:
            # No state change: stale or out-of-order epochs (e.g. a
            # client retrying an epoch that was actually applied) are
            # rejected, never double-applied.
            reg.inc("service_out_of_order")
            return {
                "type": proto.MSG_ERROR, "code": "out_of_order", "seq": seq,
                "expected_epoch": session.expected_epoch,
                "error": f"expected epoch {session.expected_epoch}, got {epoch!r}",
            }
        controller = session.controller
        try:
            result = proto.epoch_result_from_wire(msg["result"])
            if len(result.cu_stats) != controller.config.gpu.n_cus:
                raise proto.ProtocolError(
                    f"observation has {len(result.cu_stats)} CUs, "
                    f"session platform has {controller.config.gpu.n_cus}"
                )
            truth = None
            if controller.predictor.needs_elapsed_truth:
                if msg.get("truth") is None:
                    raise proto.ProtocolError(
                        f"design {session.design!r} requires oracle truth "
                        f"lines with every observation"
                    )
                truth = proto.lines_from_wire(msg["truth"])
        except (proto.ProtocolError, KeyError) as exc:
            reg.inc("service_bad_requests")
            return {"type": proto.MSG_ERROR, "code": "bad_observation",
                    "seq": seq, "error": str(exc)}

        controller.observe(result, true_domain_lines=truth)
        decision = controller.decide()
        session.expected_epoch = int(epoch) + 1
        reg.inc("service_decisions")
        return {
            "type": proto.MSG_DECISION,
            "seq": seq,
            "epoch": session.expected_epoch,
            "decision": list(decision),
        }

    # ------------------------------------------------------------------
    # Writing

    def _write(self, session: _Session, message: Optional[Dict[str, object]]) -> None:
        """Fire-and-forget frame write.

        Deliberately no ``await drain()``: the batch worker must never
        block on one slow client. Memory stays bounded because a
        session whose write buffer grows past ``write_buffer_limit``
        has its further observations shed rather than answered.
        """
        if message is None or session.closed:
            return
        try:
            session.writer.write(proto.encode_frame(message))
        except (ConnectionError, RuntimeError):
            session.closed = True

    @staticmethod
    def _reply(writer: asyncio.StreamWriter, message: Dict[str, object]) -> None:
        """Pre-session write (open rejections, protocol errors)."""
        try:
            writer.write(proto.encode_frame(message))
        except (ConnectionError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    # Health / metrics HTTP

    async def _handle_health(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            accept = ""
            while True:  # consume headers up to the blank line
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                header = line.decode("latin-1", "replace")
                if header.lower().startswith("accept:"):
                    accept = header.split(":", 1)[1].strip()
            parts = request_line.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else ""
            status, payload, content_type = self._route(method, path, accept)
            head = (
                f"HTTP/1.1 {status} {_HTTP_STATUS_TEXT.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()

    @staticmethod
    def _wants_prometheus(query: str, accept: str) -> bool:
        """Scrape-format negotiation: explicit ``?format=`` wins, then
        an Accept header asking for text/plain (what Prometheus sends)."""
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        fmt = params.get("format", "")
        if fmt:
            return fmt == "prometheus"
        return "text/plain" in accept or "openmetrics" in accept

    def _meta(self) -> Dict[str, object]:
        """Build provenance: what produced these numbers, exactly."""
        from repro.runtime.cache import config_hash
        from repro.telemetry.schema import build_meta

        return build_meta(config_hash=config_hash(self.config))

    def _route(
        self, method: str, path: str, accept: str = ""
    ) -> Tuple[int, bytes, str]:
        from repro import __version__

        def as_json(status: int, body: Dict[str, object]) -> Tuple[int, bytes, str]:
            return (
                status,
                json.dumps(body, sort_keys=True).encode("utf-8"),
                "application/json",
            )

        path, _, query = path.partition("?")
        if method != "GET":
            return as_json(405, {"error": "only GET is served"})
        if path == "/healthz":
            status = 503 if self._draining else 200
            return as_json(status, {
                "status": "draining" if self._draining else "ok",
                "version": __version__,
                "sessions": len(self._sessions),
                "uptime_s": round(time.monotonic() - self._started_at, 3),
            })
        if path == "/metrics":
            meta = self._meta()
            if self._wants_prometheus(query, accept):
                from repro.obs.prom import CONTENT_TYPE, render_prometheus

                reg = self.registry
                reg.gauge("service_sessions").set(len(self._sessions))
                text = render_prometheus(
                    reg,
                    labels={
                        "repro_version": str(meta["repro_version"]),
                        "config_hash": str(meta["config_hash"])[:12],
                    },
                )
                return 200, text.encode("utf-8"), CONTENT_TYPE
            snapshot = self.registry.to_dict()
            snapshot["sessions"] = len(self._sessions)
            snapshot["meta"] = meta
            snapshot["config_hash"] = meta["config_hash"]
            return as_json(200, snapshot)
        return as_json(
            404, {"error": f"no route {path!r} (try /healthz or /metrics)"}
        )


__all__ = ["DecisionService", "ServiceConfig"]
