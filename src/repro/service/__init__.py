"""The online DVFS decision service: PCSTALL as a long-running server.

The paper's contribution is an *online* mechanism - PCSTALL picks every
V/f domain's next-epoch frequency ahead of execution, every epoch. This
package serves that decision loop over a socket so external agents (a
GPU driver shim, a cluster scheduler, a replayed trace) can consume it:

* :mod:`repro.service.protocol` - the length-prefixed JSON wire
  protocol and the wire <-> simulator object codecs.
* :mod:`repro.service.server` - :class:`DecisionService`, the asyncio
  server (``repro serve``): per-session controller state,
  micro-batching, admission control, SHED backpressure, graceful
  drain, ``/healthz`` + ``/metrics``.
* :mod:`repro.service.client` - :class:`DecisionClient`, a blocking
  client with timeout/retry built on the sweep runtime's
  :class:`~repro.runtime.executor.RetryPolicy`.
* :mod:`repro.service.replay` - ``repro replay``: feed a recorded
  epoch trace through a live server and verify every returned decision
  is bit-identical to the offline simulation that produced the trace.

Everything is stdlib-only, like the rest of the repository.
"""

from repro.service.client import (
    DecisionClient,
    RequestShed,
    ServiceError,
    ServiceShutdown,
    SessionRejected,
    check_health,
    wait_until_healthy,
)
from repro.service.protocol import DEFAULT_HEALTH_PORT, DEFAULT_PORT, ProtocolError
from repro.service.replay import ReplayReport, replay_trace
from repro.service.server import DecisionService, ServiceConfig

__all__ = [
    "DEFAULT_HEALTH_PORT",
    "DEFAULT_PORT",
    "DecisionClient",
    "DecisionService",
    "ProtocolError",
    "ReplayReport",
    "RequestShed",
    "ServiceConfig",
    "ServiceError",
    "ServiceShutdown",
    "SessionRejected",
    "check_health",
    "replay_trace",
    "wait_until_healthy",
]
