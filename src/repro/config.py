"""Configuration objects for the GPU simulator, the DVFS system and the power model.

The defaults follow the evaluation platform of the paper (Section 5): a
64-CU AMD Vega-class GPU with 16 shared L2 banks, per-CU V/f domains
spanning 1.3-2.2 GHz in 100 MHz steps, a memory subsystem fixed at
1.6 GHz, and epoch-length-dependent V/f transition latencies.

Tests and benchmarks typically scale ``n_cus`` and workload sizes down so
the whole suite runs quickly; every experiment accepts a config so the
paper-scale platform is a parameter change, not a code change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


def default_frequency_grid() -> Tuple[float, ...]:
    """The paper's 10 V/f states: 1.3 GHz to 2.2 GHz in 100 MHz steps."""
    return tuple(round(1.3 + 0.1 * i, 2) for i in range(10))


#: V/f transition latency (ns) assumed for each epoch duration (ns),
#: from Section 5: 4 ns @ 1 us, 40 ns @ 10 us, 200 ns @ 50 us, 400 ns @ 100 us.
TRANSITION_LATENCY_TABLE_NS = (
    (1_000.0, 4.0),
    (10_000.0, 40.0),
    (50_000.0, 200.0),
    (100_000.0, 400.0),
)


def transition_latency_ns(epoch_ns: float) -> float:
    """Transition latency for a given epoch duration.

    Uses the paper's four calibration points and linear interpolation in
    between; clamps outside the calibrated range.
    """
    table = TRANSITION_LATENCY_TABLE_NS
    if epoch_ns <= table[0][0]:
        return table[0][1]
    if epoch_ns >= table[-1][0]:
        return table[-1][1]
    for (e0, l0), (e1, l1) in zip(table, table[1:]):
        if e0 <= epoch_ns <= e1:
            frac = (epoch_ns - e0) / (e1 - e0)
            return l0 + frac * (l1 - l0)
    return table[-1][1]


@dataclass(frozen=True)
class MemoryConfig:
    """Timing/geometry of the shared memory subsystem (fixed V/f domain).

    The L2 and DRAM operate in a fixed 1.6 GHz domain (paper Section 5),
    so their latencies are expressed in nanoseconds. L1 lives inside the
    CU's V/f domain (Figure 4) and is therefore expressed in CU cycles.
    """

    l1_hit_cycles: int = 16
    n_l2_banks: int = 16
    l2_interconnect_ns: float = 30.0
    l2_service_ns: float = 2.0
    l2_hit_extra_ns: float = 40.0
    n_dram_channels: int = 8
    dram_service_ns: float = 2.0
    dram_extra_ns: float = 180.0
    #: Aggregate L2 request rate (requests/ns) beyond which thrashing
    #: starts degrading the effective hit rate (second-order effect that
    #: produces the FwdSoft behaviour of Section 6.2).
    l2_thrash_rate_per_ns: float = 1.2
    #: Maximum fraction of L2 hits converted to misses under full thrash.
    l2_thrash_max_degradation: float = 0.6


@dataclass(frozen=True)
class GpuConfig:
    """Geometry and microarchitecture of the simulated GPU."""

    n_cus: int = 64
    waves_per_cu: int = 40
    issue_width: int = 2
    instruction_bytes: int = 4
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: CUs per V/f domain (Section 6.5 scales this from 1 to 32).
    cus_per_domain: int = 1
    #: Memory/L2 domain frequency (GHz); fixed, not DVFS-managed.
    memory_freq_ghz: float = 1.6
    #: CUs in different V/f domains are interleaved in time quanta of
    #: this length; the shared memory subsystem sees requests in
    #: near-global-time order within a quantum. Small quanta keep
    #: cross-domain arrival skew (a simulation artifact) well below real
    #: contention effects.
    sync_quantum_ns: float = 10.0
    #: Timing-engine implementation. ``"event"`` (the default) keeps a
    #: maintained ready queue plus a wakeup heap per CU and batches
    #: straight-line compute; ``"reference"`` is the original per-cycle
    #: rescan loop, kept as the golden baseline for the bit-identical
    #: equivalence tests. Both produce identical results.
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.engine not in ("event", "reference"):
            raise ValueError(
                f"engine must be 'event' or 'reference', got {self.engine!r}"
            )
        if self.n_cus <= 0:
            raise ValueError("n_cus must be positive")
        if self.cus_per_domain <= 0 or self.n_cus % self.cus_per_domain:
            raise ValueError(
                f"cus_per_domain ({self.cus_per_domain}) must evenly divide "
                f"n_cus ({self.n_cus})"
            )

    @property
    def n_domains(self) -> int:
        return self.n_cus // self.cus_per_domain


@dataclass(frozen=True)
class DvfsConfig:
    """Parameters of the DVFS control system."""

    epoch_ns: float = 1_000.0
    frequencies_ghz: Tuple[float, ...] = field(default_factory=default_frequency_grid)
    #: Frequency every domain starts at, and the static-baseline reference
    #: used throughout the evaluation (Figures 15-17).
    reference_freq_ghz: float = 1.7
    #: Override; when None the paper's epoch-dependent table is used.
    transition_latency_override_ns: float | None = None

    def __post_init__(self) -> None:
        if self.epoch_ns <= 0:
            raise ValueError("epoch_ns must be positive")
        if not self.frequencies_ghz:
            raise ValueError("frequency grid must not be empty")
        if sorted(self.frequencies_ghz) != list(self.frequencies_ghz):
            raise ValueError("frequency grid must be sorted ascending")
        if self.reference_freq_ghz not in self.frequencies_ghz:
            raise ValueError("reference frequency must be on the grid")

    @property
    def transition_latency_ns(self) -> float:
        if self.transition_latency_override_ns is not None:
            return self.transition_latency_override_ns
        return transition_latency_ns(self.epoch_ns)

    @property
    def f_min(self) -> float:
        return self.frequencies_ghz[0]

    @property
    def f_max(self) -> float:
        return self.frequencies_ghz[-1]


@dataclass(frozen=True)
class PowerConfig:
    """Analytic CMOS power model parameters (see `repro.power.model`).

    The dynamic/leakage split and the voltage-frequency map are calibrated
    so that the 1.3->2.2 GHz range spans roughly a 2.5x dynamic power range,
    consistent with the wide GPU voltage ranges the paper leans on.
    """

    #: Voltage at the bottom/top of the frequency grid (V). Calibrated so
    #: dlnP/dlnf is ~2.5 at mid-range: steep enough that downclocking
    #: memory phases pays, shallow enough that boosting genuinely
    #: compute-bound phases pays too (Figure 16's high-frequency
    #: residency for dgemm/hacc).
    v_min: float = 0.68
    v_max: float = 1.05
    f_min_ghz: float = 1.3
    f_max_ghz: float = 2.2
    #: Effective switched capacitance per CU (arbitrary power units per
    #: V^2*GHz at activity 1.0).
    c_eff_per_cu: float = 1.0
    #: Idle-activity floor: clock tree and always-on logic.
    idle_activity: float = 0.45
    #: Leakage power per CU at v_max and nominal temperature.
    leakage_per_cu_at_vmax: float = 0.35
    #: Leakage voltage exponent (weak sensitivity across the IVR range).
    leakage_voltage_exponent: float = 1.5
    #: Temperature factor applied to leakage (1.0 = nominal).
    temperature_factor: float = 1.0
    #: Constant power of the fixed-frequency memory subsystem, per L2 bank.
    memory_power_per_bank: float = 0.5
    #: IVR efficiency at the best and worst points of its curve.
    ivr_efficiency_peak: float = 0.93
    ivr_efficiency_floor: float = 0.82
    #: Voltage (V) where IVR efficiency peaks.
    ivr_peak_voltage: float = 0.95
    #: Energy charged per V/f transition, per domain (power-units * ns).
    transition_energy: float = 2.0


@dataclass(frozen=True)
class SimConfig:
    """Bundle of all configuration for an end-to-end DVFS simulation."""

    gpu: GpuConfig = field(default_factory=GpuConfig)
    dvfs: DvfsConfig = field(default_factory=DvfsConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    seed: int = 42


def small_config(
    n_cus: int = 4,
    waves_per_cu: int = 8,
    epoch_ns: float = 1_000.0,
    cus_per_domain: int = 1,
    seed: int = 42,
) -> SimConfig:
    """A scaled-down platform used by tests and quick benchmarks."""
    return SimConfig(
        gpu=GpuConfig(
            n_cus=n_cus,
            waves_per_cu=waves_per_cu,
            cus_per_domain=cus_per_domain,
            memory=MemoryConfig(n_l2_banks=max(2, n_cus)),
        ),
        dvfs=DvfsConfig(epoch_ns=epoch_ns),
        seed=seed,
    )


def paper_config(epoch_ns: float = 1_000.0, cus_per_domain: int = 1) -> SimConfig:
    """The paper's evaluation platform: 64 CUs, 16 L2 banks, 40 waves/CU."""
    return SimConfig(
        gpu=GpuConfig(n_cus=64, waves_per_cu=40, cus_per_domain=cus_per_domain),
        dvfs=DvfsConfig(epoch_ns=epoch_ns),
    )


__all__ = [
    "MemoryConfig",
    "GpuConfig",
    "DvfsConfig",
    "PowerConfig",
    "SimConfig",
    "default_frequency_grid",
    "transition_latency_ns",
    "small_config",
    "paper_config",
]
