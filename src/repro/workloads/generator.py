"""Synthesise kernels from declarative phase specifications.

A kernel is described as a sequence of *phases*; each phase is a loop
whose body mixes VALU compute, loads/stores with given cache-hit rates,
``waitcnt`` fences and optional barriers. The phase sequence itself can
be wrapped in an outer loop so the program re-executes its phases over
and over - the iterative structure the PC-indexed predictor exploits
(Figure 9).

Heterogeneity (e.g. ``quickS``'s per-wavefront divergence or ``dgemm``'s
mixed behaviour) is expressed by generating several program *variants*
with deterministically jittered trip counts and mixes; the kernel
round-robins variants across wavefronts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from repro.gpu.isa import (
    Instruction,
    ProgramBuilder,
    Program,
    barrier,
    load,
    store,
    valu,
    waitcnt,
)
from repro.gpu.kernel import Kernel, WorkgroupGeometry


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: a loop with a fixed instruction mix.

    Attributes:
        valu: VALU instructions per iteration.
        valu_cycles: pipeline occupancy of each VALU op.
        loads: loads per iteration.
        stores: stores per iteration.
        l1_hit: L1 hit rate of this phase's accesses.
        l2_hit: L2 hit rate of L1 misses.
        fence_every: a ``waitcnt(0)`` is placed after every N memory ops
            (1 = fully serialised latency; large = deep MLP).
        barrier_at_end: workgroup barrier at the end of the phase
            (after all iterations when unrolled).
        iterations: how many times the body repeats.
        unroll: when True (default) the iterations are emitted as
            straight-line code, so a PC uniquely identifies the upcoming
            instruction sequence - the property the PC-indexed predictor
            relies on (Section 4.4: kernel loop bodies are a few hundred
            instructions). When False a backwards branch is used.
    """

    valu: int = 8
    valu_cycles: int = 4
    loads: int = 2
    stores: int = 0
    l1_hit: float = 0.5
    l2_hit: float = 0.5
    fence_every: int = 2
    barrier_at_end: bool = False
    iterations: int = 10
    unroll: bool = True
    #: Fraction of accesses whose hit/miss outcome is iteration-dependent
    #: (see Instruction.pattern_jitter); 0 = fixed access pattern.
    pattern_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("phase needs at least one iteration")
        if self.fence_every < 1:
            raise ValueError("fence_every must be >= 1")
        if self.valu < 0 or self.loads < 0 or self.stores < 0:
            raise ValueError("instruction counts must be non-negative")
        if self.valu + self.loads + self.stores == 0:
            raise ValueError("phase body must contain at least one instruction")


@dataclass(frozen=True)
class KernelSpec:
    """One kernel: phases, outer repetition, launch geometry."""

    name: str
    phases: Tuple[PhaseSpec, ...]
    outer_iterations: int = 1
    n_workgroups: int = 8
    waves_per_workgroup: int = 4
    #: Number of program variants for wavefront heterogeneity (1 = none).
    n_variants: int = 1
    #: Relative jitter applied to variant trip counts / mixes, in [0, 1).
    variant_jitter: float = 0.0
    #: Variant ``v`` gets a preamble of ``v * stagger_valu`` compute
    #: instructions, de-phasing wavefronts from each other so the CU's
    #: per-epoch instruction mix keeps shifting (Section 4.1's second
    #: source of variation).
    stagger_valu: int = 0
    seed: int = 1234


@dataclass(frozen=True)
class WorkloadSpec:
    """A named application: one or more kernels run back-to-back."""

    name: str
    kernels: Tuple[KernelSpec, ...]
    category: str = "HPC"  # or "MI"
    description: str = ""


def _emit_body(b: ProgramBuilder, phase: PhaseSpec) -> None:
    """One iteration of the phase's instruction mix."""
    mem_ops: List[Instruction] = [
        load(phase.l1_hit, phase.l2_hit, pattern_jitter=phase.pattern_jitter)
        for _ in range(phase.loads)
    ] + [
        store(phase.l1_hit, phase.l2_hit, pattern_jitter=phase.pattern_jitter)
        for _ in range(phase.stores)
    ]
    n_mem = len(mem_ops)
    # Interleave compute between memory ops so issue pressure is spread.
    valu_per_slot = phase.valu // (n_mem + 1) if n_mem else phase.valu
    extra = phase.valu - valu_per_slot * (n_mem + 1) if n_mem else 0

    def emit_compute(count: int) -> None:
        for _ in range(count):
            b.emit(valu(phase.valu_cycles))

    emit_compute(valu_per_slot + extra)
    since_fence = 0
    for op in mem_ops:
        b.emit(op)
        since_fence += 1
        if since_fence >= phase.fence_every:
            b.emit(waitcnt(0))
            since_fence = 0
        emit_compute(valu_per_slot)
    if since_fence:
        b.emit(waitcnt(0))


def _emit_phase(b: ProgramBuilder, phase: PhaseSpec) -> None:
    if phase.unroll:
        for _ in range(phase.iterations):
            _emit_body(b, phase)
    else:
        top = b.label()
        _emit_body(b, phase)
        if phase.iterations > 1:
            b.loop_back(top, trips=phase.iterations - 1)
    if phase.barrier_at_end:
        b.emit(barrier())


def _jitter_phase(phase: PhaseSpec, rng: random.Random, jitter: float) -> PhaseSpec:
    if jitter <= 0.0:
        return phase

    def scale(value: int, lo: int = 0) -> int:
        factor = 1.0 + rng.uniform(-jitter, jitter)
        return max(lo, int(round(value * factor)))

    return replace(
        phase,
        valu=scale(phase.valu) if phase.valu else 0,
        loads=scale(phase.loads) if phase.loads else 0,
        iterations=scale(phase.iterations, lo=1),
    )


def build_program(
    phases: Sequence[PhaseSpec],
    outer_iterations: int = 1,
    name: str = "kernel",
    preamble_valu: int = 0,
) -> Program:
    """Compile a phase sequence into a single program."""
    b = ProgramBuilder()
    for _ in range(preamble_valu):
        b.emit(valu())
    outer_top = b.label()
    for phase in phases:
        _emit_phase(b, phase)
    if outer_iterations > 1:
        b.loop_back(outer_top, trips=outer_iterations - 1)
    return b.build(name)


def build_kernel(spec: KernelSpec, scale: float = 1.0) -> Kernel:
    """Build a :class:`Kernel` from a spec.

    ``scale`` multiplies the outer iteration count (and is the knob the
    experiment harness uses to shrink runs for tests: scale=0.25 runs a
    quarter of the work with identical per-epoch behaviour).
    """
    outer = max(1, int(round(spec.outer_iterations * scale)))
    rng = random.Random(spec.seed)
    variants = []
    for v in range(spec.n_variants):
        phases = tuple(_jitter_phase(p, rng, spec.variant_jitter) for p in spec.phases)
        variants.append(
            build_program(
                phases, outer, name=f"{spec.name}.v{v}", preamble_valu=v * spec.stagger_valu
            )
        )
    geometry = WorkgroupGeometry(spec.n_workgroups, spec.waves_per_workgroup)
    return Kernel(tuple(variants), geometry, name=spec.name)


def build_workload(spec: WorkloadSpec, scale: float = 1.0) -> List[Kernel]:
    """All kernels of a workload, in execution order."""
    return [build_kernel(k, scale) for k in spec.kernels]


__all__ = [
    "PhaseSpec",
    "KernelSpec",
    "WorkloadSpec",
    "build_program",
    "build_kernel",
    "build_workload",
]
