"""The 16-application evaluation suite (TABLE II substitution).

Each application is synthesised to match the first-order character the
paper reports or implies. Programs follow the structure the PC-indexed
predictor relies on (Section 4.4): an outer loop over a body of a few
hundred instructions, whose *unrolled* internal sections (compute bursts,
memory bursts) give different PCs different frequency sensitivity.
Variant preambles de-phase wavefronts so the CU-level instruction mix
keeps shifting epoch to epoch (the paper's second source of variation,
Section 4.1) while each wavefront's behaviour from a given PC stays
repetitive (Figure 10).

HPC (ECP proxy apps):

* ``comd``    - molecular dynamics; compute + neighbour-gather sections
  (Figure 5 uses it for the linearity study).
* ``hpgmg``   - multigrid; memory-bound at several working-set levels
  (sits at low frequencies in Figure 16).
* ``lulesh``  - shock hydro; 27 distinct kernels spanning the spectrum.
* ``minife``  - finite element; 3 kernels (SpMV / dot / axpy).
* ``xsbench`` - Monte Carlo cross-section lookups; latency-bound,
  data-dependent (high pattern jitter), lowest sensitivity (Fig. 6d).
* ``hacc``    - cosmology; strongly compute-bound force bursts
  (Figure 6b), 2 kernels.
* ``quickS``  - Monte Carlo Quicksilver; highest inter-wavefront
  divergence (Figure 11a) - heavily jittered variants.
* ``pennant`` - unstructured mesh; 5 kernels of mixed character.
* ``snapc``   - discrete ordinates sweep; barrier-synchronised.

MI (DeepBench / DNNMark):

* ``dgemm``   - double-precision GEMM; compute-intensive but
  heterogeneous (Section 6.2 notes its lower accuracy).
* ``BwdBN``   - batch-norm backward; strong reduce/elementwise section
  alternation (Figures 6c and 8).
* ``BwdPool`` - pooling backward; near-constant instruction rate (locks
  onto a single mid frequency in Figure 16).
* ``BwdSoft`` - softmax backward; reduction + exp compute.
* ``FwdBN``   - batch-norm forward; lighter BwdBN.
* ``FwdPool`` - pooling forward; streaming loads/stores.
* ``FwdSoft`` - softmax forward; extreme L2 pressure, exhibits the
  L2-thrashing pathology at high frequency (Section 6.2).

Geometry note: the specs use 8 workgroups x 4 waves, which saturates the
default 4-CU test platform; ``build_workload(..., scale=...)`` stretches
or shrinks run length without changing per-epoch behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.generator import KernelSpec, PhaseSpec, WorkloadSpec


def _w(name: str, kernels: List[KernelSpec], category: str, description: str) -> WorkloadSpec:
    return WorkloadSpec(name, tuple(kernels), category, description)


def _lulesh_kernels() -> List[KernelSpec]:
    """27 small kernels sweeping the compute/memory spectrum."""
    kernels = []
    for i in range(27):
        frac = i / 26.0  # 0 = compute-bound, 1 = memory-bound
        valu = max(4, int(round(30 * (1.0 - frac) + 5 * frac)))
        loads = max(1, int(round(1 + 4 * frac)))
        l1 = 0.8 - 0.55 * frac
        kernels.append(
            KernelSpec(
                name=f"lulesh.k{i}",
                phases=(
                    PhaseSpec(
                        valu=valu,
                        loads=loads,
                        l1_hit=l1,
                        l2_hit=0.55,
                        fence_every=3,
                        iterations=12,
                    ),
                ),
                outer_iterations=14,
                n_variants=8,
                stagger_valu=12,
                seed=100 + i,
            )
        )
    return kernels


def _build_suite() -> Dict[str, WorkloadSpec]:
    suite: Dict[str, WorkloadSpec] = {}

    suite["comd"] = _w(
        "comd",
        [
            KernelSpec(
                name="comd.force",
                phases=(
                    PhaseSpec(valu=20, loads=1, l1_hit=0.7, l2_hit=0.7, fence_every=1, iterations=8),
                    PhaseSpec(valu=6, loads=3, l1_hit=0.35, l2_hit=0.5, fence_every=4, iterations=10),
                ),
                outer_iterations=40,
                n_variants=8,
                stagger_valu=24,
                seed=11,
            )
        ],
        "HPC",
        "Molecular dynamics: compute bursts + neighbour-gather sections.",
    )

    suite["hpgmg"] = _w(
        "hpgmg",
        [
            KernelSpec(
                name="hpgmg.vcycle",
                phases=(
                    PhaseSpec(valu=4, loads=4, l1_hit=0.25, l2_hit=0.45, fence_every=4, iterations=8),
                    PhaseSpec(valu=3, loads=4, l1_hit=0.15, l2_hit=0.35, fence_every=4, iterations=8),
                    PhaseSpec(valu=8, loads=1, l1_hit=0.45, l2_hit=0.55, fence_every=2, iterations=6),
                ),
                outer_iterations=36,
                n_variants=8,
                stagger_valu=16,
                seed=12,
            )
        ],
        "HPC",
        "Full multigrid: memory-bound smoothing at multiple grid levels.",
    )

    suite["lulesh"] = _w(
        "lulesh", _lulesh_kernels(), "HPC", "Shock hydrodynamics: 27 kernels."
    )

    suite["minife"] = _w(
        "minife",
        [
            KernelSpec(
                name="minife.spmv",
                phases=(
                    PhaseSpec(valu=3, loads=4, l1_hit=0.3, l2_hit=0.5, fence_every=4, iterations=12,
                              pattern_jitter=0.3),
                ),
                outer_iterations=40,
                n_variants=8,
                stagger_valu=12,
                seed=13,
            ),
            KernelSpec(
                name="minife.dot",
                phases=(
                    PhaseSpec(valu=10, loads=2, l1_hit=0.5, l2_hit=0.6, fence_every=2,
                              iterations=8, barrier_at_end=True),
                ),
                outer_iterations=36,
                seed=14,
            ),
            KernelSpec(
                name="minife.waxpby",
                phases=(
                    PhaseSpec(valu=6, loads=2, stores=1, l1_hit=0.45, l2_hit=0.55, fence_every=3, iterations=10),
                ),
                outer_iterations=30,
                n_variants=8,
                stagger_valu=10,
                seed=15,
            ),
        ],
        "HPC",
        "Finite element mini-app: SpMV + reduction + vector update kernels.",
    )

    suite["xsbench"] = _w(
        "xsbench",
        [
            KernelSpec(
                name="xsbench.lookup",
                phases=(
                    PhaseSpec(valu=2, loads=4, l1_hit=0.05, l2_hit=0.25, fence_every=1,
                              iterations=10, pattern_jitter=0.9),
                ),
                outer_iterations=60,
                n_variants=8,
                stagger_valu=8,
                seed=16,
            )
        ],
        "HPC",
        "Monte Carlo transport: random cross-section lookups, latency-bound.",
    )

    suite["hacc"] = _w(
        "hacc",
        [
            KernelSpec(
                name="hacc.force",
                phases=(
                    PhaseSpec(valu=36, loads=1, l1_hit=0.8, l2_hit=0.8, fence_every=1, iterations=8),
                    PhaseSpec(valu=10, loads=2, l1_hit=0.6, l2_hit=0.7, fence_every=2, iterations=4),
                ),
                outer_iterations=40,
                n_variants=8,
                stagger_valu=32,
                seed=17,
            ),
            KernelSpec(
                name="hacc.stream",
                phases=(
                    PhaseSpec(valu=6, loads=3, stores=1, l1_hit=0.5, l2_hit=0.6, fence_every=4, iterations=8),
                ),
                outer_iterations=20,
                n_variants=8,
                stagger_valu=10,
                seed=18,
            ),
        ],
        "HPC",
        "Cosmology: strongly compute-bound force bursts plus a stream kernel.",
    )

    suite["quickS"] = _w(
        "quickS",
        [
            KernelSpec(
                name="quickS.mc",
                phases=(
                    PhaseSpec(valu=12, loads=2, l1_hit=0.45, l2_hit=0.5, fence_every=2,
                              iterations=6, pattern_jitter=0.6),
                    PhaseSpec(valu=5, loads=3, l1_hit=0.3, l2_hit=0.45, fence_every=3,
                              iterations=6, barrier_at_end=True, pattern_jitter=0.6),
                ),
                outer_iterations=30,
                n_variants=8,
                variant_jitter=0.5,
                stagger_valu=20,
                seed=19,
            )
        ],
        "HPC",
        "Monte Carlo Quicksilver: heavy per-wavefront divergence (Fig. 11a).",
    )

    suite["pennant"] = _w(
        "pennant",
        [
            KernelSpec(
                name=f"pennant.k{i}",
                phases=(
                    PhaseSpec(valu=v, loads=l, l1_hit=h, l2_hit=0.55, fence_every=3,
                              iterations=10, barrier_at_end=(i == 2)),
                ),
                outer_iterations=16,
                n_variants=8,
                stagger_valu=12,
                seed=20 + i,
            )
            for i, (v, l, h) in enumerate(
                [(22, 2, 0.65), (6, 4, 0.3), (14, 2, 0.5), (4, 4, 0.2), (28, 1, 0.7)]
            )
        ],
        "HPC",
        "Unstructured mesh: 5 kernels of mixed character.",
    )

    suite["snapc"] = _w(
        "snapc",
        [
            KernelSpec(
                name="snapc.sweep",
                phases=(
                    PhaseSpec(valu=14, loads=2, l1_hit=0.55, l2_hit=0.6, fence_every=2,
                              iterations=6, barrier_at_end=True),
                    PhaseSpec(valu=5, loads=3, l1_hit=0.35, l2_hit=0.5, fence_every=3, iterations=5),
                ),
                outer_iterations=30,
                seed=25,
            )
        ],
        "HPC",
        "Discrete ordinates: barrier-synchronised wavefront sweeps.",
    )

    # ------------------------------------------------------------- MI --

    suite["dgemm"] = _w(
        "dgemm",
        [
            KernelSpec(
                name="dgemm.tile",
                phases=(
                    PhaseSpec(valu=2, loads=6, l1_hit=0.6, l2_hit=0.9, fence_every=6,
                              iterations=1, barrier_at_end=True),
                    PhaseSpec(valu=40, loads=0, iterations=6),
                ),
                outer_iterations=44,
                n_variants=4,
                variant_jitter=0.35,
                seed=31,
            )
        ],
        "MI",
        "Double-precision GEMM: tile-load bursts + long FMA bursts; heterogeneous.",
    )

    suite["BwdBN"] = _w(
        "BwdBN",
        [
            KernelSpec(
                name="BwdBN.main",
                phases=(
                    PhaseSpec(valu=4, loads=4, l1_hit=0.5, l2_hit=0.7, fence_every=4,
                              iterations=8, barrier_at_end=True),
                    PhaseSpec(valu=24, loads=1, l1_hit=0.7, l2_hit=0.7, fence_every=1, iterations=8),
                ),
                outer_iterations=30,
                seed=32,
            )
        ],
        "MI",
        "Batch-norm backward: reduce/elementwise alternation (Figs. 6c, 8).",
    )

    suite["BwdPool"] = _w(
        "BwdPool",
        [
            KernelSpec(
                name="BwdPool.main",
                phases=(
                    PhaseSpec(valu=10, loads=2, l1_hit=0.5, l2_hit=0.6, fence_every=2, iterations=10),
                ),
                outer_iterations=40,
                n_variants=8,
                stagger_valu=12,
                seed=33,
            )
        ],
        "MI",
        "Pooling backward: constant instruction rate, locks one frequency.",
    )

    suite["BwdSoft"] = _w(
        "BwdSoft",
        [
            KernelSpec(
                name="BwdSoft.main",
                phases=(
                    PhaseSpec(valu=5, loads=3, l1_hit=0.45, l2_hit=0.6, fence_every=3,
                              iterations=6, barrier_at_end=True),
                    PhaseSpec(valu=20, loads=1, l1_hit=0.6, l2_hit=0.6, fence_every=1, iterations=6),
                ),
                outer_iterations=30,
                seed=34,
            )
        ],
        "MI",
        "Softmax backward: reduction plus exp-heavy compute.",
    )

    suite["FwdBN"] = _w(
        "FwdBN",
        [
            KernelSpec(
                name="FwdBN.main",
                phases=(
                    PhaseSpec(valu=4, loads=3, l1_hit=0.5, l2_hit=0.65, fence_every=3,
                              iterations=6, barrier_at_end=True),
                    PhaseSpec(valu=16, loads=1, l1_hit=0.65, l2_hit=0.65, fence_every=1, iterations=6),
                ),
                outer_iterations=30,
                seed=35,
            )
        ],
        "MI",
        "Batch-norm forward: lighter reduce/elementwise alternation.",
    )

    suite["FwdPool"] = _w(
        "FwdPool",
        [
            KernelSpec(
                name="FwdPool.main",
                phases=(
                    PhaseSpec(valu=5, loads=2, stores=1, l1_hit=0.55, l2_hit=0.6, fence_every=3, iterations=10),
                ),
                outer_iterations=36,
                n_variants=8,
                stagger_valu=10,
                seed=36,
            )
        ],
        "MI",
        "Pooling forward: streaming loads and stores.",
    )

    suite["FwdSoft"] = _w(
        "FwdSoft",
        [
            KernelSpec(
                name="FwdSoft.main",
                phases=(
                    PhaseSpec(valu=12, loads=4, l1_hit=0.08, l2_hit=0.85, fence_every=4,
                              iterations=8, pattern_jitter=0.3),
                ),
                outer_iterations=40,
                n_variants=8,
                stagger_valu=12,
                seed=37,
            )
        ],
        "MI",
        "Softmax forward: extreme L2 pressure; thrashes at high frequency.",
    )

    return suite


WORKLOADS: Dict[str, WorkloadSpec] = _build_suite()
HPC_WORKLOADS: Tuple[str, ...] = tuple(
    n for n, s in WORKLOADS.items() if s.category == "HPC"
)
MI_WORKLOADS: Tuple[str, ...] = tuple(
    n for n, s in WORKLOADS.items() if s.category == "MI"
)


def workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None


def workload_names() -> List[str]:
    return list(WORKLOADS)


__all__ = ["WORKLOADS", "HPC_WORKLOADS", "MI_WORKLOADS", "workload", "workload_names"]
