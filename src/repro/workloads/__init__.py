"""Synthetic GPU workload suite (TABLE II substitution).

The paper evaluates ECP proxy apps and DeepBench/DNNMark kernels on a
gem5 GPU model. We synthesise kernels with the same names and the
documented first-order characters (compute- vs memory-bound, phase
structure, heterogeneity, barrier pressure); see
``repro.workloads.suite`` for the per-app rationale.
"""

from repro.workloads.generator import PhaseSpec, KernelSpec, WorkloadSpec, build_kernel, build_workload
from repro.workloads.suite import (
    WORKLOADS,
    HPC_WORKLOADS,
    MI_WORKLOADS,
    workload,
    workload_names,
)

__all__ = [
    "PhaseSpec",
    "KernelSpec",
    "WorkloadSpec",
    "build_kernel",
    "build_workload",
    "WORKLOADS",
    "HPC_WORKLOADS",
    "MI_WORKLOADS",
    "workload",
    "workload_names",
]
