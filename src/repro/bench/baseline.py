"""Versioned machine-readable benchmark reports (``BENCH_*.json``).

A bench report is the perf counterpart of the telemetry trace: it embeds
the same self-describing ``meta`` block (:func:`repro.telemetry.build_meta`)
plus its own ``bench_schema_version``, and every per-benchmark result
carries the canonical ``config_hash`` of the platform it ran on, so a
number archived today is attributable long after defaults move.

Report layout (one JSON object)::

    {
      "meta": {schema_version, repro_version, python, platform, ...},
      "bench_schema_version": 1,
      "suite": "quick" | "full",
      "engine": "event" | "reference",
      "results": {
        "<bench name>": {
          "name", "wall_s", "epochs", "committed", "ns_per_epoch",
          "instr_per_sec",          # null where not meaningful
          "batched_issue_ratio",    # 0.0 on the reference engine
          "hotpath": {...},         # HotPathCounters deltas
          "extra": {...},           # bench-specific throughputs
          "params": {...},          # workload sizing, for traceability
          "config_hash": "..."      # platform the bench ran on
        }, ...
      }
    }

:func:`compare_reports` implements the CI gate: relative to a committed
baseline report, ``instr_per_sec`` and ``batched_issue_ratio`` may not
drop by more than ``gate`` (default 20%). Wall time itself is never
gated - shared runners are too noisy - only the throughput and
work-shape metrics derived from deterministic instruction counts.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Bump when a result field is added/removed or changes meaning.
BENCH_SCHEMA_VERSION = 1

#: Fields every per-benchmark result object must carry.
REQUIRED_RESULT_FIELDS = (
    "name",
    "wall_s",
    "epochs",
    "committed",
    "ns_per_epoch",
    "instr_per_sec",
    "batched_issue_ratio",
    "hotpath",
    "extra",
)

#: Metrics the baseline gate watches (higher is better for all of them).
GATED_METRICS = ("instr_per_sec", "batched_issue_ratio")


def validate_bench_report(report: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a bench report; returns it as a dict, raises ``ValueError``."""
    if not isinstance(report, Mapping):
        raise ValueError(f"bench report must be a mapping, got {type(report).__name__}")
    version = report.get("bench_schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench schema version {version!r} "
            f"(this build reads version {BENCH_SCHEMA_VERSION})"
        )
    from repro.telemetry.schema import check_meta

    check_meta(report.get("meta", {}))
    if report.get("suite") not in ("quick", "full"):
        raise ValueError(f"bad suite {report.get('suite')!r}")
    if report.get("engine") not in ("event", "reference"):
        raise ValueError(f"bad engine {report.get('engine')!r}")
    results = report.get("results")
    if not isinstance(results, Mapping) or not results:
        raise ValueError("bench report has no results")
    for name, res in results.items():
        if not isinstance(res, Mapping):
            raise ValueError(f"result {name!r} is not a mapping")
        missing = [f for f in REQUIRED_RESULT_FIELDS if f not in res]
        if missing:
            raise ValueError(f"result {name!r} missing fields: {missing}")
        if res["name"] != name:
            raise ValueError(f"result {name!r} carries mismatched name {res['name']!r}")
        for metric in ("wall_s", "ns_per_epoch"):
            v = res[metric]
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                raise ValueError(f"result {name!r}: bad {metric} {v!r}")
        ips = res["instr_per_sec"]
        if ips is not None and (not isinstance(ips, (int, float)) or ips < 0):
            raise ValueError(f"result {name!r}: bad instr_per_sec {ips!r}")
    return dict(report)


def save_bench_json(report: Mapping[str, Any], path: PathLike) -> pathlib.Path:
    """Validate and write a bench report (stable key order)."""
    validate_bench_report(report)
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out


def load_bench_json(path: PathLike) -> Dict[str, Any]:
    """Read and validate a bench report file."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_bench_report(json.load(fh))


@dataclass(frozen=True)
class MetricDelta:
    """One gated metric of one benchmark, current vs baseline."""

    bench: str
    metric: str
    baseline: float
    current: float
    regressed: bool

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")


@dataclass
class BenchComparison:
    """Outcome of :func:`compare_reports`."""

    gate: float
    deltas: List[MetricDelta] = field(default_factory=list)
    #: Benchmarks present in only one of the two reports (not gated).
    missing_in_current: List[str] = field(default_factory=list)
    missing_in_baseline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.regressed for d in self.deltas)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    def render(self) -> str:
        from repro.analysis.report import format_table

        rows = []
        for d in self.deltas:
            rows.append([
                d.bench, d.metric, f"{d.baseline:,.1f}", f"{d.current:,.1f}",
                f"{d.ratio:.2f}x", "REGRESSED" if d.regressed else "ok",
            ])
        text = format_table(
            ["bench", "metric", "baseline", "current", "ratio", "gate"],
            rows,
            title=f"baseline comparison (fail below {1.0 - self.gate:.2f}x)",
        )
        notes = []
        if self.missing_in_current:
            notes.append(f"not run here: {', '.join(self.missing_in_current)}")
        if self.missing_in_baseline:
            notes.append(f"new (no baseline): {', '.join(self.missing_in_baseline)}")
        if notes:
            text += "\n" + "\n".join(notes)
        return text


def compare_reports(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    gate: float = 0.20,
) -> BenchComparison:
    """Gate ``current`` against ``baseline`` on the throughput metrics.

    A benchmark regresses when a gated metric falls more than ``gate``
    (fractional) below the baseline value. Metrics that are null/zero in
    the baseline are reported but never gated (nothing to compare to);
    benchmarks present in only one report are listed, not failed, so a
    renamed or added benchmark does not brick CI.
    """
    if not 0.0 < gate < 1.0:
        raise ValueError("gate must be a fraction in (0, 1)")
    cur = validate_bench_report(current)["results"]
    base = validate_bench_report(baseline)["results"]
    cmp = BenchComparison(gate=gate)
    cmp.missing_in_current = sorted(set(base) - set(cur))
    cmp.missing_in_baseline = sorted(set(cur) - set(base))
    for name in sorted(set(cur) & set(base)):
        for metric in GATED_METRICS:
            b, c = base[name].get(metric), cur[name].get(metric)
            if b is None or c is None or b <= 0:
                continue
            cmp.deltas.append(MetricDelta(
                bench=name,
                metric=metric,
                baseline=float(b),
                current=float(c),
                regressed=float(c) < float(b) * (1.0 - gate),
            ))
    return cmp


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "GATED_METRICS",
    "REQUIRED_RESULT_FIELDS",
    "BenchComparison",
    "MetricDelta",
    "compare_reports",
    "load_bench_json",
    "save_bench_json",
    "validate_bench_report",
]
