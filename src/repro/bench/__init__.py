"""Performance-regression benchmark suite (``repro bench``).

Microbenchmarks for the simulator's hot paths, a versioned
machine-readable ``BENCH_*.json`` report format, and the baseline
comparison gate CI runs on every push. See :mod:`repro.bench.micro`
for the benchmarks and :mod:`repro.bench.baseline` for the schema.
"""

from repro.bench.baseline import (
    BENCH_SCHEMA_VERSION,
    GATED_METRICS,
    BenchComparison,
    MetricDelta,
    compare_reports,
    load_bench_json,
    save_bench_json,
    validate_bench_report,
)
from repro.bench.micro import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    BenchResult,
    BenchSettings,
    render_report,
    run_benchmarks,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "BenchComparison",
    "BenchResult",
    "BenchSettings",
    "GATED_METRICS",
    "MetricDelta",
    "compare_reports",
    "load_bench_json",
    "render_report",
    "run_benchmarks",
    "save_bench_json",
    "validate_bench_report",
]
