"""Microbenchmarks for the simulator's hot paths (``repro bench``).

Five benchmarks, each isolating one layer of the per-epoch cost stack:

* ``core_engine``    - a single resident wavefront running straight-line
  compute loops on one CU: the batched-issue fast path, nothing else.
* ``issue_scan``     - many resident waves mixing compute and memory on
  two CUs: the ready-heap scan path plus memory completions.
* ``oracle_sampling``- the fork-and-pre-execute loop (snapshot + restore
  + pre-execution per grid frequency), the multiplier on everything.
* ``predictor_update`` - PCSTALL's observe/predict step over recorded
  epoch results: pure controller-side work, no simulation.
* ``end_to_end``     - one quick workload x design cell through the real
  executor, the number users actually feel.

Each benchmark is run ``repeats`` times from a fresh deterministic setup
and reports the *best* wall time (the run least disturbed by the OS);
instruction counts are identical across repeats, so throughput metrics
stay deterministic up to the clock. Wall time is measured with
``time.perf_counter`` around the timed region only - setup and warmup
are excluded.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.baseline import BENCH_SCHEMA_VERSION
from repro.config import SimConfig, small_config
from repro.gpu.gpu import Gpu
from repro.gpu.isa import ProgramBuilder, load, valu, waitcnt
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.runtime.profiling import collect_gpu, collect_hotpath


@dataclass(frozen=True)
class BenchSettings:
    """Knobs shared by every benchmark."""

    quick: bool = True
    engine: str = "event"
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.engine not in ("event", "reference"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.repeats < 1:
            raise ValueError("repeats must be positive")


@dataclass
class BenchResult:
    """One benchmark's measurements (see the module docstring)."""

    name: str
    wall_s: float
    #: Simulated epochs (or epoch-equivalents) inside the timed region.
    epochs: int
    #: Instructions committed inside the timed region (0 where N/A).
    committed: int
    #: Wall nanoseconds per simulated epoch.
    ns_per_epoch: float
    #: Committed instructions per wall second; None where not meaningful.
    instr_per_sec: Optional[float]
    #: Fraction of commits retired through the batched-issue fast path.
    batched_issue_ratio: float
    #: HotPathCounters delta over the timed region.
    hotpath: Dict[str, int] = field(default_factory=dict)
    #: Bench-specific throughputs (samples/s, updates/s, ...).
    extra: Dict[str, float] = field(default_factory=dict)
    #: Workload sizing, for traceability of archived numbers.
    params: Dict[str, Any] = field(default_factory=dict)
    config_hash: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "epochs": self.epochs,
            "committed": self.committed,
            "ns_per_epoch": self.ns_per_epoch,
            "instr_per_sec": self.instr_per_sec,
            "batched_issue_ratio": self.batched_issue_ratio,
            "hotpath": dict(self.hotpath),
            "extra": dict(self.extra),
            "params": dict(self.params),
            "config_hash": self.config_hash,
        }


def _engine_config(cfg: SimConfig, engine: str) -> SimConfig:
    if cfg.gpu.engine == engine:
        return cfg
    return replace(cfg, gpu=replace(cfg.gpu, engine=engine))


def _compute_program(n_valu: int, trips: int, name: str = "bench-compute"):
    b = ProgramBuilder()
    top = b.label()
    for _ in range(n_valu):
        b.emit(valu())
    b.loop_back(top, trips=trips)
    return b.build(name)


def _mixed_program(n_valu: int, n_loads: int, trips: int, name: str = "bench-mixed"):
    b = ProgramBuilder()
    top = b.label()
    for _ in range(n_valu):
        b.emit(valu())
    for _ in range(n_loads):
        b.emit(load(0.6, 0.5))
    b.emit(waitcnt(0))
    b.loop_back(top, trips=trips)
    return b.build(name)


def _best_of(repeats: int, make_run: Callable[[], Callable[[], Dict[str, Any]]]):
    """Best wall time over fresh runs; payload from the fastest run.

    ``make_run`` builds a fresh deterministic setup (untimed) and returns
    the closure to time. Payload counts are identical across repeats.
    """
    best_wall: Optional[float] = None
    best_payload: Dict[str, Any] = {}
    for _ in range(repeats):
        run = make_run()
        t0 = time.perf_counter()
        payload = run()
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall, best_payload = wall, payload
    assert best_wall is not None
    return best_wall, best_payload


def _finish(
    name: str,
    s: BenchSettings,
    cfg: SimConfig,
    wall: float,
    payload: Dict[str, Any],
    params: Dict[str, Any],
    instr_per_sec: Optional[float] = None,
    extra: Optional[Dict[str, float]] = None,
) -> BenchResult:
    from repro.runtime.cache import config_hash

    epochs = int(payload.get("epochs", 0))
    committed = int(payload.get("committed", 0))
    hotpath = dict(payload.get("hotpath", {}))
    batched = int(hotpath.get("batched_instructions", 0))
    if instr_per_sec is None and committed:
        instr_per_sec = committed / wall if wall > 0 else None
    return BenchResult(
        name=name,
        wall_s=wall,
        epochs=epochs,
        committed=committed,
        ns_per_epoch=(wall * 1e9 / epochs) if epochs else 0.0,
        instr_per_sec=instr_per_sec,
        batched_issue_ratio=(batched / committed) if committed else 0.0,
        hotpath=hotpath,
        extra=dict(extra or {}),
        params=dict(params),
        config_hash=config_hash(cfg),
    )


# ----------------------------------------------------------------------
# Benchmark bodies


def bench_core_engine(s: BenchSettings) -> BenchResult:
    """Single wave, straight-line compute: the batched-issue fast path."""
    epochs = 60 if s.quick else 250
    n_valu, trips = 32, 20_000
    cfg = _engine_config(small_config(n_cus=1, waves_per_cu=1), s.engine)
    program = _compute_program(n_valu, trips)
    kernel = Kernel.homogeneous(program, WorkgroupGeometry(1, 1))
    epoch_ns = cfg.dvfs.epoch_ns

    def make_run():
        gpu = Gpu(cfg.gpu)
        gpu.load_kernel(kernel)
        gpu.run_epoch(epoch_ns)  # warmup (excluded)
        base = collect_gpu(gpu).as_dict()

        def run():
            committed = 0
            done = 0
            for _ in range(epochs):
                committed += gpu.run_epoch(epoch_ns).total_committed()
                done += 1
                if gpu.done:  # pragma: no cover - sized not to finish
                    break
            hot = collect_gpu(gpu).as_dict()
            return {
                "epochs": done,
                "committed": committed,
                "hotpath": {k: hot[k] - base.get(k, 0) for k in hot},
            }

        return run

    wall, payload = _best_of(s.repeats, make_run)
    return _finish("core_engine", s, cfg, wall, payload,
                   params={"epochs": epochs, "n_valu": n_valu, "trips": trips})


def bench_issue_scan(s: BenchSettings) -> BenchResult:
    """Many waves, mixed compute/memory: the ready-scan issue path."""
    epochs = 40 if s.quick else 150
    cfg = _engine_config(small_config(n_cus=2, waves_per_cu=8), s.engine)
    program = _mixed_program(n_valu=6, n_loads=2, trips=8_000)
    kernel = Kernel.homogeneous(program, WorkgroupGeometry(4, 4))
    epoch_ns = cfg.dvfs.epoch_ns

    def make_run():
        gpu = Gpu(cfg.gpu)
        gpu.load_kernel(kernel)
        gpu.run_epoch(epoch_ns)
        base = collect_gpu(gpu).as_dict()

        def run():
            committed = 0
            done = 0
            for _ in range(epochs):
                committed += gpu.run_epoch(epoch_ns).total_committed()
                done += 1
                if gpu.done:  # pragma: no cover - sized not to finish
                    break
            hot = collect_gpu(gpu).as_dict()
            return {
                "epochs": done,
                "committed": committed,
                "hotpath": {k: hot[k] - base.get(k, 0) for k in hot},
            }

        return run

    wall, payload = _best_of(s.repeats, make_run)
    return _finish("issue_scan", s, cfg, wall, payload,
                   params={"epochs": epochs, "workgroups": 4, "waves_per_wg": 4})


def bench_oracle_sampling(s: BenchSettings) -> BenchResult:
    """Fork-and-pre-execute: snapshot, restore, pre-run per frequency."""
    from repro.dvfs.oracle import OracleSampler

    samples = 8 if s.quick else 25
    n_sample_freqs = 4
    cfg = _engine_config(small_config(n_cus=2, waves_per_cu=4), s.engine)
    program = _mixed_program(n_valu=6, n_loads=2, trips=20_000)
    kernel = Kernel.homogeneous(program, WorkgroupGeometry(2, 4))
    epoch_ns = cfg.dvfs.epoch_ns

    def make_run():
        gpu = Gpu(cfg.gpu)
        gpu.load_kernel(kernel)
        for _ in range(3):  # warmup: move past the cold start (excluded)
            gpu.run_epoch(epoch_ns)
        sampler = OracleSampler(cfg, n_sample_freqs=n_sample_freqs)

        def run():
            committed = 0
            for _ in range(samples):
                sample = sampler.sample(gpu, epoch_ns)
                committed += sum(c for dom in sample.points for _, c in dom)
            return {
                # One pre-execution per sampled frequency = one epoch each.
                "epochs": samples * len(sampler.sample_grid),
                "committed": committed,
                "hotpath": collect_hotpath(gpu, sampler),
            }

        return run

    wall, payload = _best_of(s.repeats, make_run)
    return _finish(
        "oracle_sampling", s, cfg, wall, payload,
        params={"samples": samples, "n_sample_freqs": n_sample_freqs},
        extra={"samples_per_sec": samples / wall if wall > 0 else 0.0},
    )


def bench_predictor_update(s: BenchSettings) -> BenchResult:
    """PCSTALL observe + predict over recorded epochs (no simulation)."""
    from repro.core.predictors import ObserveContext, PCBasedPredictor

    updates = 150 if s.quick else 600
    cfg = small_config(n_cus=2, waves_per_cu=4)  # engine-independent work
    program = _mixed_program(n_valu=6, n_loads=2, trips=20_000)
    kernel = Kernel.homogeneous(program, WorkgroupGeometry(2, 4))
    epoch_ns = cfg.dvfs.epoch_ns

    gpu = Gpu(cfg.gpu)
    gpu.load_kernel(kernel)
    results = [gpu.run_epoch(epoch_ns) for _ in range(4)]
    records = sum(len(cu) for r in results for cu in r.wave_records)
    ctx = ObserveContext(
        config=cfg.gpu, f_lo_ghz=cfg.dvfs.f_min, f_hi_ghz=cfg.dvfs.f_max
    )

    def make_run():
        predictor = PCBasedPredictor(cfg.gpu)

        def run():
            n = len(results)
            for i in range(updates):
                predictor.observe(results[i % n], ctx)
                predictor.predict_domains()
            return {"epochs": updates, "committed": 0, "hotpath": {}}

        return run

    wall, payload = _best_of(s.repeats, make_run)
    return _finish(
        "predictor_update", s, cfg, wall, payload,
        params={"updates": updates, "wave_records_per_pass": records // max(1, len(results))},
        extra={"updates_per_sec": updates / wall if wall > 0 else 0.0},
    )


def bench_end_to_end(s: BenchSettings) -> BenchResult:
    """One quick workload x design cell through the real executor."""
    from repro.runtime import SweepTask
    from repro.runtime.executor import run_task

    max_epochs = 40 if s.quick else 120
    cfg = _engine_config(small_config(n_cus=2, waves_per_cu=4), s.engine)
    task = SweepTask(
        workload="comd",
        design="PCSTALL",
        config=cfg,
        scale=0.12,
        max_epochs=max_epochs,
        oracle_sample_freqs=3,
    )

    def make_run():
        def run():
            result = run_task(task)
            return {
                "epochs": result.epochs,
                "committed": result.total_committed,
                "hotpath": dict(result.hotpath or {}),
            }

        return run

    wall, payload = _best_of(s.repeats, make_run)
    epochs = int(payload["epochs"])
    return _finish(
        "end_to_end", s, cfg, wall, payload,
        params={"workload": "comd", "design": "PCSTALL", "max_epochs": max_epochs},
        extra={"epochs_per_sec": epochs / wall if wall > 0 else 0.0},
    )


#: Registry, in report order.
BENCHMARKS: Dict[str, Callable[[BenchSettings], BenchResult]] = {
    "core_engine": bench_core_engine,
    "issue_scan": bench_issue_scan,
    "oracle_sampling": bench_oracle_sampling,
    "predictor_update": bench_predictor_update,
    "end_to_end": bench_end_to_end,
}

BENCHMARK_NAMES: Tuple[str, ...] = tuple(BENCHMARKS)


def run_benchmarks(
    quick: bool = True,
    engine: str = "event",
    only: Optional[Sequence[str]] = None,
    repeats: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the suite and return a validated bench report dict."""
    from repro.telemetry.schema import build_meta

    names = list(only) if only else list(BENCHMARK_NAMES)
    for name in names:
        if name not in BENCHMARKS:
            raise ValueError(f"unknown benchmark {name!r} (have {BENCHMARK_NAMES})")
    settings = BenchSettings(
        quick=quick, engine=engine,
        repeats=repeats if repeats is not None else (2 if quick else 3),
    )
    results: Dict[str, Any] = {}
    for name in names:
        if log:
            log(f"  bench {name} ...")
        res = BENCHMARKS[name](settings)
        results[name] = res.as_dict()
        if log:
            ips = "-" if res.instr_per_sec is None else f"{res.instr_per_sec:,.0f}/s"
            log(f"  bench {name}: {res.wall_s:.3f}s, instr {ips}, "
                f"batched {res.batched_issue_ratio:.2f}")
    report = {
        "meta": build_meta(
            None,
            python=platform.python_version(),
            implementation=platform.python_implementation(),
            machine=platform.machine(),
        ),
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "suite": "quick" if quick else "full",
        "engine": engine,
        "results": results,
    }
    from repro.bench.baseline import validate_bench_report

    return validate_bench_report(report)


def render_report(report: Dict[str, Any]) -> str:
    """The report's results as the repo's standard table."""
    from repro.analysis.report import format_table

    rows = []
    for name, res in report["results"].items():
        ips = res["instr_per_sec"]
        extra = ", ".join(f"{k}={v:,.1f}" for k, v in sorted(res["extra"].items()))
        rows.append([
            name,
            f"{res['wall_s']:.3f}",
            res["epochs"],
            "-" if ips is None else f"{ips:,.0f}",
            f"{res['batched_issue_ratio']:.2f}",
            f"{res['ns_per_epoch']:,.0f}",
            extra or "-",
        ])
    return format_table(
        ["bench", "wall (s)", "epochs", "instr/s", "batched", "ns/epoch", "extra"],
        rows,
        title=f"repro bench ({report['suite']} suite, {report['engine']} engine)",
    )


__all__ = [
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "BenchResult",
    "BenchSettings",
    "render_report",
    "run_benchmarks",
]
