"""Prediction-accuracy drill-down over epoch records.

Turns a recorded epoch stream (in-memory recorder or loaded JSONL) into
the three diagnostics the ``repro report --accuracy`` CLI prints:

* **Error percentiles** - exact p50/p90/p99/mean of the per-(domain,
  epoch) relative prediction error, the distribution behind the
  simulator's single ``prediction_accuracy`` scalar.
* **Decision confusion matrix** - chosen frequency vs the frequency the
  objective would have picked given the oracle's true line; the
  diagonal is "right answer", everything below/above shows whether the
  predictor under- or over-clocks when it misses.
* **Per-PC error attribution** - which program counters the prediction
  error concentrates on (commit-share-weighted), the GPA-style view
  that turns a scoreboard into a diagnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Frequency bucket rounding for confusion-matrix keys (GHz).
_FREQ_DECIMALS = 3


def percentile(values: Sequence[float], q: float) -> float:
    """Exact linear-interpolated percentile of raw samples (q in [0, 100])."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class AccuracyReport:
    """Aggregated accuracy diagnostics for one workload x design run."""

    label: str = ""
    rel_errors: List[float] = field(default_factory=list)
    #: (chosen_ghz, oracle_ghz) -> decision count.
    confusion: Dict[Tuple[float, float], int] = field(default_factory=dict)
    #: pc_idx -> (samples, committed, weighted_error).
    pc_attribution: Dict[int, Tuple[int, int, float]] = field(default_factory=dict)
    epochs: int = 0
    domain_records: int = 0

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, object]], label: str = ""
    ) -> "AccuracyReport":
        """Build from a record stream (see :mod:`repro.telemetry.schema`)."""
        out = cls(label=label)
        for rec in records:
            rtype = rec.get("type")
            if rtype == "run" and not out.label:
                out.label = f"{rec.get('workload', '?')}/{rec.get('design', '?')}"
            elif rtype == "epoch":
                out.epochs += 1
            elif rtype == "domain":
                out._add_domain_record(rec)
            elif rtype == "pc":
                out.pc_attribution[int(rec["pc_idx"])] = (
                    int(rec["samples"]),
                    int(rec["committed"]),
                    float(rec["weighted_error"]),
                )
        return out

    @classmethod
    def from_recorder(cls, recorder, label: str = "") -> "AccuracyReport":
        """Build from a live :class:`~repro.telemetry.recorder.EpochTraceRecorder`.

        Uses the recorder's in-memory ring plus its aggregated PC stats,
        so it works even when no JSONL file was written.
        """
        out = cls.from_records(recorder.records, label=label)
        if not out.label and recorder.meta:
            out.label = (
                f"{recorder.meta.get('workload', '?')}/"
                f"{recorder.meta.get('design', '?')}"
            )
        for pc_idx, stat in recorder.pc_stats.items():
            out.pc_attribution[pc_idx] = (
                stat.samples, stat.committed, stat.weighted_error
            )
        return out

    def _add_domain_record(self, rec: Mapping[str, object]) -> None:
        self.domain_records += 1
        rel = rec.get("rel_error")
        if rel is not None:
            self.rel_errors.append(float(rel))
        chosen = rec.get("freq_ghz")
        oracle = rec.get("oracle_freq_ghz")
        if chosen is not None and oracle is not None:
            key = (
                round(float(chosen), _FREQ_DECIMALS),
                round(float(oracle), _FREQ_DECIMALS),
            )
            self.confusion[key] = self.confusion.get(key, 0) + 1

    def merge(self, other: "AccuracyReport") -> "AccuracyReport":
        """Fold another report in (cross-workload aggregation)."""
        self.rel_errors.extend(other.rel_errors)
        self.epochs += other.epochs
        self.domain_records += other.domain_records
        for key, n in other.confusion.items():
            self.confusion[key] = self.confusion.get(key, 0) + n
        for pc, (s, c, w) in other.pc_attribution.items():
            s0, c0, w0 = self.pc_attribution.get(pc, (0, 0, 0.0))
            self.pc_attribution[pc] = (s0 + s, c0 + c, w0 + w)
        return self

    # ------------------------------------------------------------------
    # Diagnostics

    def error_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> Dict[str, float]:
        out = {f"p{q:g}": percentile(self.rel_errors, q) for q in qs}
        out["mean"] = (
            sum(self.rel_errors) / len(self.rel_errors) if self.rel_errors else 0.0
        )
        return out

    @property
    def decisions(self) -> int:
        return sum(self.confusion.values())

    @property
    def agreement(self) -> float:
        """Fraction of decisions matching the oracle-best frequency."""
        total = self.decisions
        if not total:
            return 0.0
        hits = sum(
            n for (chosen, oracle), n in self.confusion.items()
            if math.isclose(chosen, oracle, abs_tol=1e-6)
        )
        return hits / total

    def confusion_grid(
        self, freqs: Optional[Sequence[float]] = None
    ) -> Tuple[List[float], List[List[int]]]:
        """(axis frequencies, matrix[chosen][oracle]) decision counts."""
        if freqs is None:
            seen = {f for key in self.confusion for f in key}
            freqs = sorted(seen)
        axis = [round(float(f), _FREQ_DECIMALS) for f in freqs]
        index = {f: i for i, f in enumerate(axis)}
        grid = [[0] * len(axis) for _ in axis]
        for (chosen, oracle), n in self.confusion.items():
            i, j = index.get(chosen), index.get(oracle)
            if i is not None and j is not None:
                grid[i][j] += n
        return list(axis), grid

    def top_pcs(self, n: int = 10) -> List[Tuple[int, int, int, float]]:
        """Worst-predicted PCs: (pc_idx, samples, committed, weighted_error)."""
        ranked = sorted(
            (
                (pc, s, c, w)
                for pc, (s, c, w) in self.pc_attribution.items()
            ),
            key=lambda row: -row[3],
        )
        return ranked[:n]

    # ------------------------------------------------------------------
    # Rendering

    def render_confusion(self, freqs: Optional[Sequence[float]] = None) -> str:
        from repro.analysis.report import format_table

        axis, grid = self.confusion_grid(freqs)
        if not axis:
            return f"{self.label}: no oracle-scored decisions recorded"
        headers = ["chosen \\ oracle (GHz)"] + [f"{f:.1f}" for f in axis]
        rows = [
            [f"{f:.1f}"] + [str(n) if n else "." for n in grid[i]]
            for i, f in enumerate(axis)
        ]
        return format_table(
            headers,
            rows,
            title=(
                f"{self.label}: decision confusion matrix "
                f"({self.agreement:.1%} oracle agreement, "
                f"{self.decisions} decisions)"
            ),
        )

    def render_top_pcs(self, n: int = 10) -> str:
        from repro.analysis.report import format_table

        ranked = self.top_pcs(n)
        if not ranked:
            return f"{self.label}: no PC attribution recorded"
        total_w = sum(w for *_, w in ranked) or 1.0
        rows = [
            [f"0x{pc * 4:04x}", pc, s, c, f"{w:.4f}", f"{w / total_w:.1%}"]
            for pc, s, c, w in ranked
        ]
        return format_table(
            ["pc", "pc_idx", "samples", "committed", "weighted error", "share of top"],
            rows,
            title=f"{self.label}: top-{len(rows)} PCs by attributed prediction error",
        )


__all__ = ["AccuracyReport", "percentile"]
