"""The per-epoch decision trace: bounded-memory structured records.

:class:`EpochTraceRecorder` is handed to
:class:`~repro.dvfs.simulation.DvfsSimulation` (``telemetry=`` argument)
and receives one callback per executed epoch. From it the recorder
emits the record stream documented in :mod:`repro.telemetry.schema`:
an ``epoch`` record plus one ``domain`` record per V/f domain, with the
predicted sensitivity line, the chosen and oracle-best frequencies, the
stall/busy split and PC-table deltas.

Memory is bounded two ways, selectable per use:

* a **ring buffer** (``TelemetryConfig.ring_size``) keeps the most
  recent records in memory for programmatic drill-down; older records
  are dropped and counted, never re-allocated;
* a **streaming JSONL writer** (``TelemetryConfig.jsonl_path``) appends
  every record to disk as it is produced, so arbitrarily long runs
  archive fully with O(1) resident records.

When no recorder is attached the simulation takes a single
``is None`` branch per epoch - no recorder, record, or registry objects
are allocated (the overhead-off equivalence test pins this down).

This module deliberately imports nothing from :mod:`repro.dvfs` or
:mod:`repro.gpu`; it receives plain result objects and reads public
attributes, which keeps the dependency arrow pointing from the
simulation into telemetry only.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # duck-typed at runtime; keeps telemetry import-light
    from repro.obs.drift import DriftMonitor

from repro.telemetry.metrics import MetricsRegistry, RATIO_BUCKETS
from repro.telemetry.schema import build_meta, epoch_result_to_wire, sim_config_to_wire

#: Frequency comparison slack (GHz); matches the oracle's grid tolerance.
_FREQ_ABS_TOL_GHZ = 1e-6

#: Cumulative PC-table counter names diffed into per-epoch deltas.
_PC_STAT_KEYS = ("lookups", "hits", "updates", "evictions")


@dataclass(frozen=True)
class TelemetryConfig:
    """What the recorder keeps and where it streams."""

    #: Emit per-epoch ``epoch``/``domain`` records. When False the
    #: recorder still aggregates run-level metrics and PC attribution.
    record_epochs: bool = True
    #: Ring-buffer capacity for in-memory records (0 = keep nothing in
    #: memory; the JSONL stream still receives everything).
    ring_size: int = 4096
    #: Stream every record to this JSONL file as it is produced.
    jsonl_path: Optional[str] = None
    #: Aggregate per-PC prediction-error attribution across the run.
    record_pc_attribution: bool = True
    #: Stream one ``observation`` record per epoch: the full
    #: :class:`~repro.gpu.gpu.EpochResult` in wire form plus oracle
    #: truth lines, and embed the full ``sim_config`` in the run
    #: header - everything ``repro replay`` needs to re-drive a live
    #: decision service through the run. JSONL-only (observations are
    #: too large for the ring), so requires ``jsonl_path``.
    record_observations: bool = False

    def __post_init__(self) -> None:
        if self.ring_size < 0:
            raise ValueError("ring_size must be non-negative")
        if self.record_observations and self.jsonl_path is None:
            raise ValueError(
                "record_observations streams to disk only; set jsonl_path"
            )


@dataclass
class PcErrorStat:
    """Accumulated prediction error attributed to one start PC."""

    pc_idx: int
    samples: int = 0
    committed: int = 0
    #: Sum of (domain relative error x wavefront commit share); the
    #: run-level ranking weight for "which PCs mispredict".
    weighted_error: float = 0.0

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "pc",
            "pc_idx": self.pc_idx,
            "samples": self.samples,
            "committed": self.committed,
            "weighted_error": self.weighted_error,
        }


class EpochTraceRecorder:
    """Collects one structured record per epoch per domain."""

    def __init__(
        self,
        config: TelemetryConfig = TelemetryConfig(),
        drift: Optional["DriftMonitor"] = None,
    ) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        #: Optional online drift monitor; fed one relative-error
        #: observation per scored (epoch, domain). Purely observational.
        self.drift = drift
        self.records: Deque[Dict[str, object]] = deque(
            maxlen=config.ring_size if config.ring_size > 0 else 0
        )
        self.meta: Optional[Dict[str, object]] = None
        #: End-of-run aggregate records (``pc`` + ``summary``). Kept out
        #: of the ring so flushing a large PC table never evicts epoch
        #: records that a timeline export still needs.
        self.final_records: List[Dict[str, object]] = []
        self.pc_stats: Dict[int, PcErrorStat] = {}
        self.total_records = 0
        self.epochs = 0
        self._fh = None
        self._n_domains = 0
        self._cus_per_domain = 1
        self._freq_grid: Sequence[float] = ()
        self._last_pc_cumulative: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle

    def begin_run(
        self,
        workload: str,
        design: str,
        sim_config,
        objective_name: str = "",
    ) -> None:
        """Open the stream for one (workload x design) run."""
        gpu_cfg = sim_config.gpu
        self._n_domains = gpu_cfg.n_domains
        self._cus_per_domain = gpu_cfg.cus_per_domain
        self._freq_grid = tuple(sim_config.dvfs.frequencies_ghz)
        self._last_pc_cumulative = None
        extra: Dict[str, object] = {}
        if self.config.record_observations:
            # Not named "config": build_meta's first parameter owns that
            # word, and replay reads this key explicitly.
            extra["sim_config"] = sim_config_to_wire(sim_config)
        self.meta = build_meta(
            sim_config,
            workload=workload,
            design=design,
            objective=objective_name,
            n_domains=self._n_domains,
            epoch_ns=sim_config.dvfs.epoch_ns,
            frequencies_ghz=list(self._freq_grid),
            **extra,
        )
        self._emit({"type": "run", **self.meta}, count=False)

    def close(self) -> None:
        """Flush and close the JSONL stream, if one is open."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EpochTraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Per-epoch callback (hot path when enabled; never called when off)

    def record_epoch(
        self,
        epoch_index: int,
        result,
        chosen_freqs: Sequence[float],
        predictions: Sequence[object],
        actual_per_domain: Sequence[int],
        sample=None,
        oracle_freqs: Optional[Sequence[float]] = None,
        epoch_energy: float = 0.0,
        pc_cumulative: Optional[Dict[str, int]] = None,
        wall_s: float = 0.0,
    ) -> None:
        """Digest one elapsed epoch.

        ``result`` is an :class:`~repro.gpu.gpu.EpochResult`;
        ``predictions`` the controller's per-domain sensitivity lines
        (None where the design made no prediction); ``sample`` the
        elapsed epoch's :class:`~repro.dvfs.oracle.OracleSample` when
        truth sampling ran; ``oracle_freqs`` the frequency the objective
        would have chosen per domain given the true line;
        ``pc_cumulative`` the predictor's cumulative PC-table counters
        (diffed into per-epoch deltas here).
        """
        self.epochs += 1
        reg = self.registry
        reg.inc("telemetry_epochs")
        duration = result.duration_ns

        epoch_rec: Dict[str, object] = {
            "type": "epoch",
            "epoch": epoch_index,
            "t_start_ns": result.t_start,
            "t_end_ns": result.t_end,
            "wall_s": wall_s,
            "energy": epoch_energy,
            "transitions": result.transitions,
            "committed": result.total_committed(),
        }
        if pc_cumulative is not None:
            last = self._last_pc_cumulative or {k: 0 for k in _PC_STAT_KEYS}
            for k in _PC_STAT_KEYS:
                epoch_rec[f"pc_{k}"] = pc_cumulative.get(k, 0) - last.get(k, 0)
            self._last_pc_cumulative = dict(pc_cumulative)
        if self.config.record_epochs:
            self._emit(epoch_rec)

        if self.config.record_observations:
            # The complete predictor input for this epoch; with the run
            # header's sim_config this is sufficient to replay the run
            # decision-for-decision (repro replay). Stream-only: one
            # observation holds every wavefront's counters, and counting
            # or ring-buffering it would distort the epoch/domain
            # bookkeeping the drill-down tools rely on.
            self._emit(
                {
                    "type": "observation",
                    "epoch": epoch_index,
                    "result": epoch_result_to_wire(result),
                    "truth": (
                        [[ln.i0, ln.slope] for ln in sample.lines]
                        if sample is not None
                        else None
                    ),
                },
                count=False,
                ring=False,
            )

        per = self._cus_per_domain
        rel_errors: List[Optional[float]] = []
        for d in range(self._n_domains):
            line = predictions[d] if d < len(predictions) else None
            actual = int(actual_per_domain[d])
            chosen = float(chosen_freqs[d])
            pred_commits = line.predict(chosen) if line is not None else None
            rel_error: Optional[float] = None
            if pred_commits is not None and actual > 0:
                rel_error = abs(pred_commits - actual) / actual
                reg.inc("telemetry_scored")
                reg.histogram("telemetry_rel_error", RATIO_BUCKETS).observe(rel_error)
                if self.drift is not None:
                    self.drift.observe_error(rel_error)
            rel_errors.append(rel_error)

            busy = 0.0
            issued = 0
            committed = 0
            for cu_id in range(d * per, (d + 1) * per):
                stats = result.cu_stats[cu_id]
                split = stats.stall_breakdown(duration)
                busy += split["busy_ns"]
                issued += stats.issued
                committed += stats.committed

            rec: Dict[str, object] = {
                "type": "domain",
                "epoch": epoch_index,
                "domain": d,
                "freq_ghz": chosen,
                "pred_i0": line.i0 if line is not None else None,
                "pred_slope": line.slope if line is not None else None,
                "pred_commits": pred_commits,
                "actual_commits": actual,
                "rel_error": rel_error,
                "oracle_freq_ghz": None,
                "oracle_i0": None,
                "oracle_slope": None,
                "oracle_r2": None,
                "oracle_commits": None,
                "mispredicted": None,
                "busy_ns": busy,
                "stall_ns": duration * per - busy,
                "issued": issued,
                "committed": committed,
            }
            if sample is not None:
                fit = sample.fits[d]
                rec["oracle_i0"] = fit.model.i0
                rec["oracle_slope"] = fit.model.slope
                rec["oracle_r2"] = fit.r_squared
                rec["oracle_commits"] = sample.commits_at(d, chosen)
            if oracle_freqs is not None:
                oracle_f = float(oracle_freqs[d])
                rec["oracle_freq_ghz"] = oracle_f
                mispredicted = not math.isclose(
                    chosen, oracle_f, abs_tol=_FREQ_ABS_TOL_GHZ
                )
                rec["mispredicted"] = mispredicted
                reg.inc("telemetry_decisions")
                if mispredicted:
                    reg.inc("telemetry_mispredictions")
            if self.config.record_epochs:
                self._emit(rec)

        if self.config.record_pc_attribution:
            self._attribute_pcs(result, rel_errors)

    def _attribute_pcs(
        self, result, rel_errors: Sequence[Optional[float]]
    ) -> None:
        """Distribute each domain's error over the PCs its waves ran."""
        per = self._cus_per_domain
        for d, rel_error in enumerate(rel_errors):
            if rel_error is None:
                continue
            cu_ids = range(d * per, (d + 1) * per)
            domain_committed = sum(
                r.stats.committed
                for cu_id in cu_ids
                for r in result.wave_records[cu_id]
            )
            if domain_committed <= 0:
                continue
            for cu_id in cu_ids:
                for record in result.wave_records[cu_id]:
                    stat = self.pc_stats.get(record.start_pc_idx)
                    if stat is None:
                        stat = self.pc_stats[record.start_pc_idx] = PcErrorStat(
                            record.start_pc_idx
                        )
                    share = record.stats.committed / domain_committed
                    stat.samples += 1
                    stat.committed += record.stats.committed
                    stat.weighted_error += rel_error * share

    # ------------------------------------------------------------------
    # End-of-run

    def end_run(self, run_result) -> None:
        """Record the run digest and flush aggregated PC attribution."""
        for stat in sorted(
            self.pc_stats.values(), key=lambda s: -s.weighted_error
        ):
            self._emit(stat.as_record(), count=False, final=True)
        self._emit(
            {
                "type": "summary",
                "workload": run_result.workload,
                "design": run_result.design,
                "epochs": run_result.epochs,
                "delay_ns": run_result.delay_ns,
                "energy_total": run_result.energy.total,
                # Conservation targets for the validation auditors: the
                # epoch records' committed counts and energies must sum
                # to these (see repro.validation.invariants).
                "elapsed_ns": run_result.energy.elapsed_ns,
                "total_committed": run_result.total_committed,
                "prediction_accuracy": run_result.prediction_accuracy,
                "pc_hit_ratio": run_result.pc_hit_ratio,
                "completed": run_result.completed,
            },
            count=False,
            final=True,
        )

    # ------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records evicted from the ring buffer (still in the JSONL)."""
        return self.total_records - len(
            [r for r in self.records if r["type"] in ("epoch", "domain")]
        )

    def domain_records(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == "domain"]

    def _emit(
        self,
        record: Dict[str, object],
        count: bool = True,
        final: bool = False,
        ring: bool = True,
    ) -> None:
        if count:
            self.total_records += 1
            self.registry.inc("telemetry_records")
        if final:
            self.final_records.append(record)
        elif ring and self.config.ring_size > 0:
            self.records.append(record)
        if self.config.jsonl_path is not None:
            if self._fh is None:
                self._fh = open(self.config.jsonl_path, "w", encoding="utf-8")
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")


__all__ = ["TelemetryConfig", "EpochTraceRecorder", "PcErrorStat"]
