"""Telemetry: a zero-overhead-when-off observability layer.

Four pieces, threaded through the simulation loop, controller,
predictors, PC table, oracle and sweep runtime:

* :mod:`repro.telemetry.metrics` - :class:`MetricsRegistry`: mergeable
  counters/gauges/fixed-bucket histograms, the common sink the sweep
  instrumentation and hot-path profiler report through.
* :mod:`repro.telemetry.recorder` - :class:`EpochTraceRecorder`: one
  structured record per epoch per V/f domain (chosen frequency,
  predicted vs actual commits, oracle truth, PC-table deltas,
  stall/busy split, energy) with bounded memory (ring buffer and/or
  streaming JSONL).
* :mod:`repro.telemetry.exporters` - Chrome-trace/Perfetto JSON export
  (``repro trace --epochs``).
* :mod:`repro.telemetry.accuracy` - prediction-error percentiles,
  decision confusion matrix vs the oracle, per-PC error attribution
  (``repro report --accuracy``).

When no recorder is attached, the simulation pays a single ``is None``
test per epoch and allocates nothing - tier-1 results stay bit-identical
(see ``tests/test_telemetry.py``).
"""

from repro.telemetry.accuracy import AccuracyReport, percentile
from repro.telemetry.exporters import (
    perfetto_trace,
    save_perfetto_json,
    validate_trace_events,
    validate_trace_json,
)
from repro.telemetry.metrics import (
    BATCH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_all,
)
from repro.telemetry.recorder import EpochTraceRecorder, PcErrorStat, TelemetryConfig
from repro.telemetry.schema import (
    TRACE_SCHEMA_VERSION,
    build_meta,
    check_meta,
    epoch_result_to_wire,
    load_trace_jsonl,
    sim_config_to_wire,
    trace_meta,
    validate_records,
    validate_trace_file,
)

__all__ = [
    "AccuracyReport",
    "percentile",
    "perfetto_trace",
    "save_perfetto_json",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_all",
    "EpochTraceRecorder",
    "PcErrorStat",
    "TelemetryConfig",
    "BATCH_BUCKETS",
    "TRACE_SCHEMA_VERSION",
    "build_meta",
    "check_meta",
    "epoch_result_to_wire",
    "load_trace_jsonl",
    "sim_config_to_wire",
    "trace_meta",
    "validate_records",
    "validate_trace_file",
    "validate_trace_events",
    "validate_trace_json",
]
