"""Trace record schema: self-describing metadata plus validation.

Every archived telemetry artifact - the epoch JSONL stream, the Perfetto
trace, ``repro profile --json`` output, ``repro run --json`` summaries -
embeds a ``meta`` block built by :func:`build_meta`:

* ``schema_version`` - bumped whenever a record field changes meaning,
* ``repro_version`` - the package that produced the artifact,
* ``engine`` / ``config_hash`` - which timing engine and exactly which
  platform configuration (the same canonical content hash the result
  cache keys on), so archived traces are attributable long after the
  defaults move.

:func:`check_meta` is the read-side counterpart; :func:`validate_records`
/ :func:`validate_trace_file` gate a whole epoch stream (CI runs the
file-level check on the bench-smoke artifact).

Record types in an epoch JSONL stream, one JSON object per line:

``run``
    Stream header: the meta block plus run identity (workload, design,
    objective, domain count, epoch length, frequency grid).
``epoch``
    One per recorded epoch: sim-clock window, wall seconds, epoch
    energy, V/f transitions, total commits, PC-table deltas
    (lookups/hits/updates/evictions over that epoch).
``domain``
    One per (epoch, V/f domain): chosen frequency, predicted sensitivity
    line and commit count, actual commits, relative error, oracle truth
    (fitted line, r^2, the frequency the objective would have chosen
    given the truth) when sampling ran, and the stall/busy split.
``pc``
    Aggregated per-PC prediction-error attribution, emitted at end of
    run (one line per distinct start PC).
``summary``
    Final :class:`~repro.dvfs.simulation.RunResult` digest.
``observation``
    Opt-in (``TelemetryConfig.record_observations``): the *complete*
    predictor input of one elapsed epoch - the
    :class:`~repro.gpu.gpu.EpochResult` in wire form
    (:func:`epoch_result_to_wire`) plus the oracle truth lines when
    sampling ran. With these, ``repro replay`` can re-drive a live
    decision service through the exact offline epoch sequence; the run
    header additionally embeds the full ``sim_config`` so the server
    can rebuild an identical controller. Observation records are
    streamed to the JSONL file only (never the in-memory ring - one
    record carries every wavefront's counters and would evict the
    timeline the ring exists for).

A *span* JSONL stream (``repro.obs.trace.Tracer``) uses the same
validator with its own header:

``trace``
    Stream header: the meta block plus the trace id.
``span``
    One finished wall-clock span: name, tracer-scoped monotonic span id,
    parent span id (empty string at the root), start/end wall
    nanoseconds, free-form ``attrs``.
``alert``
    A drift monitor threshold crossing or recovery
    (``repro.obs.drift.DriftAlert.as_record``), interleaved with the
    spans that surround it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

PathLike = Union[str, pathlib.Path]

#: Bump when a record field is added/removed or changes meaning.
TRACE_SCHEMA_VERSION = 1

#: Fields every record of a type must carry (value may be null where
#: the quantity is undefined, e.g. no prediction yet).
REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "run": ("type", "schema_version", "repro_version", "workload", "design",
            "n_domains", "epoch_ns", "frequencies_ghz"),
    "epoch": ("type", "epoch", "t_start_ns", "t_end_ns", "wall_s", "energy",
              "transitions", "committed"),
    "domain": ("type", "epoch", "domain", "freq_ghz", "pred_commits",
               "actual_commits", "rel_error", "oracle_freq_ghz",
               "mispredicted", "busy_ns", "stall_ns", "committed"),
    "pc": ("type", "pc_idx", "samples", "committed", "weighted_error"),
    "summary": ("type", "workload", "design", "epochs", "delay_ns",
                "energy_total"),
    "observation": ("type", "epoch", "result"),
    "trace": ("type", "trace_id", "schema_version", "repro_version"),
    "span": ("type", "trace_id", "span_id", "parent_id", "name",
             "t_start_ns", "t_end_ns"),
    "alert": ("type", "signal", "kind", "value", "threshold",
              "window_count", "at_index"),
}


def epoch_result_to_wire(result: Any) -> Dict[str, object]:
    """JSON-encodable form of an :class:`~repro.gpu.gpu.EpochResult`.

    Uses the same flat ``capture()`` tuples the GPU snapshot machinery
    defined for per-CU and per-wavefront stats, so the wire format stays
    in lock-step with the simulator's own notion of "complete state".
    Python's ``json`` emits shortest-repr floats, which round-trip IEEE
    binary64 exactly - decoding the wire form reconstructs a result
    whose every float is bit-identical to the original
    (``repro.service.protocol.epoch_result_from_wire`` is the inverse).
    """
    return {
        "t_start": result.t_start,
        "t_end": result.t_end,
        "frequencies_ghz": list(result.frequencies_ghz),
        "transitions": result.transitions,
        "cu_stats": [list(s.capture()) for s in result.cu_stats],
        "wave_records": [
            [
                [r.wf_id, r.age_rank, r.start_pc_idx, r.next_pc_idx,
                 list(r.stats.capture())]
                for r in cu_records
            ]
            for cu_records in result.wave_records
        ],
    }


def sim_config_to_wire(config: Any) -> Dict[str, object]:
    """JSON-encodable form of a :class:`~repro.config.SimConfig`.

    The exact canonical structure the result cache hashes (see
    :func:`repro.runtime.cache.config_hash`), so a trace's embedded
    config and its ``config_hash`` meta field always agree.
    """
    from repro.runtime.cache import canonicalize

    wire = canonicalize(config)
    if not isinstance(wire, dict):  # pragma: no cover - SimConfig is a dataclass
        raise TypeError(f"config did not canonicalise to a mapping: {config!r}")
    return wire


def build_meta(config=None, **extra) -> Dict[str, object]:
    """Self-describing metadata block for a telemetry artifact.

    ``config`` is a :class:`~repro.config.SimConfig`; when given, the
    engine name and the canonical config hash are embedded. ``extra``
    key/values (workload, design, ...) are passed through.
    """
    from repro import __version__
    meta: Dict[str, object] = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "repro_version": __version__,
    }
    if config is not None:
        from repro.runtime.cache import config_hash

        meta["engine"] = config.gpu.engine
        meta["config_hash"] = config_hash(config)
    meta.update(extra)
    return meta


def check_meta(meta: Mapping[str, object]) -> Dict[str, object]:
    """Validate a meta block; returns it, raises ``ValueError`` if bad."""
    if not isinstance(meta, Mapping):
        raise ValueError(f"meta must be a mapping, got {type(meta).__name__}")
    version = meta.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported telemetry schema version {version!r} "
            f"(this build reads version {TRACE_SCHEMA_VERSION})"
        )
    if not meta.get("repro_version"):
        raise ValueError("meta lacks repro_version")
    return dict(meta)


def validate_record(record: Mapping[str, object]) -> str:
    """Validate one record; returns its type, raises ``ValueError``."""
    rtype = record.get("type")
    required = REQUIRED_FIELDS.get(str(rtype))
    if required is None:
        raise ValueError(f"unknown record type {rtype!r}")
    missing = [f for f in required if f not in record]
    if missing:
        raise ValueError(f"{rtype} record missing fields: {missing}")
    if rtype in ("run", "trace"):
        check_meta(record)
    return str(rtype)


def validate_records(records: Iterable[Mapping[str, object]]) -> Dict[str, int]:
    """Validate a record stream; returns per-type counts.

    The stream must start with a header record: ``run`` for an epoch
    stream, ``trace`` for a span stream (``Tracer`` JSONL output).
    """
    counts: Dict[str, int] = {}
    first = True
    for record in records:
        rtype = validate_record(record)
        if first and rtype not in ("run", "trace"):
            raise ValueError(
                f"stream must start with a run record or trace record, "
                f"got {rtype!r}"
            )
        first = False
        counts[rtype] = counts.get(rtype, 0) + 1
    if first:
        raise ValueError("empty record stream")
    return counts


def load_trace_jsonl(path: PathLike) -> List[Dict[str, object]]:
    """Read an epoch JSONL stream back as a list of record dicts."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON ({exc})") from None
    return records


def validate_trace_file(path: PathLike) -> Dict[str, int]:
    """Load and validate a JSONL trace; returns per-type record counts."""
    return validate_records(load_trace_jsonl(path))


def trace_meta(records: Iterable[Mapping[str, object]]) -> Optional[Dict[str, object]]:
    """The run header's meta block, if the stream has one."""
    for record in records:
        if record.get("type") == "run":
            return check_meta(record)
    return None


__all__ = [
    "TRACE_SCHEMA_VERSION",
    "REQUIRED_FIELDS",
    "build_meta",
    "epoch_result_to_wire",
    "sim_config_to_wire",
    "check_meta",
    "validate_record",
    "validate_records",
    "validate_trace_file",
    "load_trace_jsonl",
    "trace_meta",
]
