"""Trace exporters: Chrome-trace/Perfetto JSON from epoch records.

The exported file loads directly in https://ui.perfetto.dev (or
``chrome://tracing``). The mapping:

* each V/f **domain** is a named thread (``tid = domain + 1``),
* each recorded **epoch** is a complete slice (``ph: "X"``) on its
  domain's track, named after the chosen frequency and carrying the
  prediction/actual/error detail in ``args``,
* per-domain **frequency residency** and the GPU-wide **epoch energy**
  are counter tracks (``ph: "C"``) - the staircase the paper's Figure 16
  aggregates,
* **mispredictions** (chosen != oracle-best frequency) are thread-scoped
  instant events (``ph: "i"``), so error clusters are visible at a
  glance.

Timestamps are simulated nanoseconds divided by 1000 (the trace format
counts microseconds), so one 1 µs epoch renders as one 1-unit slice.

When the record stream also carries **span** records (the
``repro.obs.trace.Tracer`` output, merged with ``repro trace --spans``),
they render as a second process ("repro spans"): each span is a complete
slice whose track (tid) is its lane - one lane for spans minted by the
root tracer, one per worker prefix, so parallel sweep cells sit on
parallel tracks. Span timestamps are *wall*-clock nanoseconds
re-anchored so the earliest span starts at ts 0, putting the wall
timeline on the same scale as the simulated one. Drift **alert**
records carry no clock of their own and render as process-scoped
instants at the end of the last span seen before them in the stream.

:func:`validate_trace_events` is the contract checker for all of the
above - CI runs it over exported artifacts so a malformed event (missing
``ph``/``ts``/``pid``, unmatched ``B``/``E``, negative duration,
non-monotone track) fails the build before a trace viewer rejects it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.telemetry.schema import trace_meta

PathLike = Union[str, pathlib.Path]

_PID = 0
#: Span records render as their own process so the wall-clock span
#: timeline never interleaves with the sim-clock epoch tracks.
_SPAN_PID = 1


def _us(ns: float) -> float:
    return ns / 1000.0


def _span_lane(span_id: str) -> str:
    """The track key of a span: worker spans (``"7.3"``) group under
    their prefix (``"7"``); root-tracer spans share one lane."""
    return span_id.split(".", 1)[0] if "." in span_id else ""


def perfetto_trace(records: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Convert an epoch record stream to a Chrome-trace JSON object."""
    records = list(records)
    meta = trace_meta(records)
    events: List[Dict[str, object]] = []

    # Epoch time windows, keyed by epoch index (domain records carry no
    # clock; the epoch record is their timebase).
    windows: Dict[int, tuple] = {}
    domains = set()
    span_anchor_ns: Optional[float] = None
    lanes: Dict[str, int] = {}
    for rec in records:
        if rec.get("type") == "epoch":
            windows[int(rec["epoch"])] = (float(rec["t_start_ns"]), float(rec["t_end_ns"]))
        elif rec.get("type") == "domain":
            domains.add(int(rec["domain"]))
        elif rec.get("type") == "span":
            t0 = float(rec["t_start_ns"])
            if span_anchor_ns is None or t0 < span_anchor_ns:
                span_anchor_ns = t0
            lane = _span_lane(str(rec["span_id"]))
            if lane not in lanes:
                lanes[lane] = len(lanes) + 1

    events.append(
        {"ph": "M", "name": "process_name", "pid": _PID,
         "args": {"name": "repro DVFS epochs"}}
    )
    for d in sorted(domains):
        events.append(
            {"ph": "M", "name": "thread_name", "pid": _PID, "tid": d + 1,
             "args": {"name": f"domain {d}"}}
        )
    if lanes:
        events.append(
            {"ph": "M", "name": "process_name", "pid": _SPAN_PID,
             "args": {"name": "repro spans"}}
        )
        for lane, tid in lanes.items():
            events.append(
                {"ph": "M", "name": "thread_name", "pid": _SPAN_PID, "tid": tid,
                 "args": {"name": f"spans {lane}" if lane else "spans"}}
            )

    last_span_end_us = 0.0
    for rec in records:
        rtype = rec.get("type")
        if rtype == "epoch":
            t0 = _us(float(rec["t_start_ns"]))
            events.append(
                {"ph": "C", "name": "epoch energy", "pid": _PID, "ts": t0,
                 "args": {"energy": rec.get("energy", 0.0)}}
            )
        elif rtype == "domain":
            epoch = int(rec["epoch"])
            window = windows.get(epoch)
            if window is None:
                continue
            t0_ns, t1_ns = window
            t0, dur = _us(t0_ns), _us(t1_ns - t0_ns)
            tid = int(rec["domain"]) + 1
            freq = rec.get("freq_ghz")
            events.append(
                {
                    "ph": "X",
                    "name": f"{freq:.2f} GHz" if freq is not None else "epoch",
                    "cat": "epoch",
                    "pid": _PID,
                    "tid": tid,
                    "ts": t0,
                    "dur": dur,
                    "args": {
                        "epoch": epoch,
                        "pred_commits": rec.get("pred_commits"),
                        "actual_commits": rec.get("actual_commits"),
                        "rel_error": rec.get("rel_error"),
                        "oracle_freq_ghz": rec.get("oracle_freq_ghz"),
                        "busy_ns": rec.get("busy_ns"),
                        "stall_ns": rec.get("stall_ns"),
                    },
                }
            )
            events.append(
                {"ph": "C", "name": f"freq domain {rec['domain']}", "pid": _PID,
                 "ts": t0, "args": {"GHz": freq}}
            )
            if rec.get("mispredicted"):
                events.append(
                    {
                        "ph": "i",
                        "name": "mispredict",
                        "s": "t",
                        "pid": _PID,
                        "tid": tid,
                        "ts": t0,
                        "args": {
                            "chosen_ghz": freq,
                            "oracle_ghz": rec.get("oracle_freq_ghz"),
                        },
                    }
                )
        elif rtype == "span":
            t0_ns = float(rec["t_start_ns"]) - (span_anchor_ns or 0.0)
            dur_ns = float(rec["t_end_ns"]) - float(rec["t_start_ns"])
            last_span_end_us = _us(t0_ns + dur_ns)
            args = dict(rec.get("attrs") or {})
            args["span_id"] = rec["span_id"]
            if rec.get("parent_id"):
                args["parent_id"] = rec["parent_id"]
            events.append(
                {
                    "ph": "X",
                    "name": str(rec["name"]),
                    "cat": "span",
                    "pid": _SPAN_PID,
                    "tid": lanes[_span_lane(str(rec["span_id"]))],
                    "ts": _us(t0_ns),
                    "dur": _us(dur_ns),
                    "args": args,
                }
            )
        elif rtype == "alert":
            # Alerts carry an observation index, not a clock: pin the
            # instant to the end of the last span seen before it.
            events.append(
                {
                    "ph": "i",
                    "name": f"drift {rec.get('signal')} ({rec.get('kind')})",
                    "s": "p",
                    "pid": _SPAN_PID,
                    "ts": last_span_end_us,
                    "args": {
                        "signal": rec.get("signal"),
                        "kind": rec.get("kind"),
                        "value": rec.get("value"),
                        "threshold": rec.get("threshold"),
                    },
                }
            )

    # Stable-sort samples by timestamp (metadata first) so every track
    # is monotone - viewers tolerate disorder, the contract checker
    # doesn't have to.
    events.sort(key=lambda e: (0, 0.0) if e["ph"] == "M" else (1, float(e["ts"])))
    trace: Dict[str, object] = {"traceEvents": events, "displayTimeUnit": "ns"}
    if meta is not None:
        trace["otherData"] = meta
    return trace


def save_perfetto_json(
    records: Iterable[Mapping[str, object]], path: PathLike
) -> int:
    """Write the Perfetto trace; returns the number of trace events."""
    trace = perfetto_trace(records)
    pathlib.Path(path).write_text(json.dumps(trace, sort_keys=True))
    return len(trace["traceEvents"])  # type: ignore[arg-type]


#: Event phases this exporter's contract admits, and what each needs.
_KNOWN_PHASES = frozenset("MXCiBE")


def validate_trace_events(
    events: Iterable[Mapping[str, object]]
) -> Dict[str, int]:
    """Validate Chrome-trace events against the viewer contract.

    Checks, raising ``ValueError`` on the first violation:

    * every event has ``ph`` (a known phase), ``name`` and ``pid``;
    * every non-metadata event has a numeric, non-negative ``ts``;
    * ``X`` (complete) events carry a ``tid`` and a numeric ``dur >= 0``;
    * ``B``/``E`` (duration) events match up per ``(pid, tid)`` - every
      ``E`` closes the most recent open ``B`` of the same name, nothing
      is left open at the end;
    * per ``(pid, tid)`` track, timestamps are non-decreasing.

    Returns per-phase event counts (CI logs them next to the artifact).
    """
    counts: Dict[str, int] = {}
    last_ts: Dict[Tuple[object, object], float] = {}
    open_b: Dict[Tuple[object, object], List[str]] = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        if "name" not in event:
            raise ValueError(f"event {i} ({ph}): missing name")
        if "pid" not in event:
            raise ValueError(f"event {i} ({ph}): missing pid")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i} ({ph} {event.get('name')!r}): bad ts {ts!r}")
        track = (event["pid"], event.get("tid"))
        if ts < last_ts.get(track, 0.0):
            raise ValueError(
                f"event {i} ({ph} {event.get('name')!r}): ts {ts} goes "
                f"backwards on track {track}"
            )
        last_ts[track] = float(ts)
        if ph == "X":
            if "tid" not in event:
                raise ValueError(f"event {i} (X {event.get('name')!r}): missing tid")
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event {i} (X {event.get('name')!r}): bad dur {dur!r}"
                )
        elif ph == "B":
            open_b.setdefault(track, []).append(str(event.get("name")))
        elif ph == "E":
            stack = open_b.get(track)
            if not stack:
                raise ValueError(
                    f"event {i} (E {event.get('name')!r}): no open B on {track}"
                )
            opened = stack.pop()
            if "name" in event and str(event["name"]) != opened:
                raise ValueError(
                    f"event {i}: E {event['name']!r} closes B {opened!r} on {track}"
                )
    for track, stack in open_b.items():
        if stack:
            raise ValueError(f"unclosed B events on track {track}: {stack}")
    return counts


def validate_trace_json(path: PathLike) -> Dict[str, int]:
    """Load an exported trace file and validate its events."""
    data = json.loads(pathlib.Path(path).read_text())
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array")
    return validate_trace_events(events)


__all__ = [
    "perfetto_trace",
    "save_perfetto_json",
    "validate_trace_events",
    "validate_trace_json",
]
