"""Trace exporters: Chrome-trace/Perfetto JSON from epoch records.

The exported file loads directly in https://ui.perfetto.dev (or
``chrome://tracing``). The mapping:

* each V/f **domain** is a named thread (``tid = domain + 1``),
* each recorded **epoch** is a complete slice (``ph: "X"``) on its
  domain's track, named after the chosen frequency and carrying the
  prediction/actual/error detail in ``args``,
* per-domain **frequency residency** and the GPU-wide **epoch energy**
  are counter tracks (``ph: "C"``) - the staircase the paper's Figure 16
  aggregates,
* **mispredictions** (chosen != oracle-best frequency) are thread-scoped
  instant events (``ph: "i"``), so error clusters are visible at a
  glance.

Timestamps are simulated nanoseconds divided by 1000 (the trace format
counts microseconds), so one 1 µs epoch renders as one 1-unit slice.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.telemetry.schema import trace_meta

PathLike = Union[str, pathlib.Path]

_PID = 0


def _us(ns: float) -> float:
    return ns / 1000.0


def perfetto_trace(records: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Convert an epoch record stream to a Chrome-trace JSON object."""
    records = list(records)
    meta = trace_meta(records)
    events: List[Dict[str, object]] = []

    # Epoch time windows, keyed by epoch index (domain records carry no
    # clock; the epoch record is their timebase).
    windows: Dict[int, tuple] = {}
    domains = set()
    for rec in records:
        if rec.get("type") == "epoch":
            windows[int(rec["epoch"])] = (float(rec["t_start_ns"]), float(rec["t_end_ns"]))
        elif rec.get("type") == "domain":
            domains.add(int(rec["domain"]))

    events.append(
        {"ph": "M", "name": "process_name", "pid": _PID,
         "args": {"name": "repro DVFS epochs"}}
    )
    for d in sorted(domains):
        events.append(
            {"ph": "M", "name": "thread_name", "pid": _PID, "tid": d + 1,
             "args": {"name": f"domain {d}"}}
        )

    for rec in records:
        rtype = rec.get("type")
        if rtype == "epoch":
            t0 = _us(float(rec["t_start_ns"]))
            events.append(
                {"ph": "C", "name": "epoch energy", "pid": _PID, "ts": t0,
                 "args": {"energy": rec.get("energy", 0.0)}}
            )
        elif rtype == "domain":
            epoch = int(rec["epoch"])
            window = windows.get(epoch)
            if window is None:
                continue
            t0_ns, t1_ns = window
            t0, dur = _us(t0_ns), _us(t1_ns - t0_ns)
            tid = int(rec["domain"]) + 1
            freq = rec.get("freq_ghz")
            events.append(
                {
                    "ph": "X",
                    "name": f"{freq:.2f} GHz" if freq is not None else "epoch",
                    "cat": "epoch",
                    "pid": _PID,
                    "tid": tid,
                    "ts": t0,
                    "dur": dur,
                    "args": {
                        "epoch": epoch,
                        "pred_commits": rec.get("pred_commits"),
                        "actual_commits": rec.get("actual_commits"),
                        "rel_error": rec.get("rel_error"),
                        "oracle_freq_ghz": rec.get("oracle_freq_ghz"),
                        "busy_ns": rec.get("busy_ns"),
                        "stall_ns": rec.get("stall_ns"),
                    },
                }
            )
            events.append(
                {"ph": "C", "name": f"freq domain {rec['domain']}", "pid": _PID,
                 "ts": t0, "args": {"GHz": freq}}
            )
            if rec.get("mispredicted"):
                events.append(
                    {
                        "ph": "i",
                        "name": "mispredict",
                        "s": "t",
                        "pid": _PID,
                        "tid": tid,
                        "ts": t0,
                        "args": {
                            "chosen_ghz": freq,
                            "oracle_ghz": rec.get("oracle_freq_ghz"),
                        },
                    }
                )

    trace: Dict[str, object] = {"traceEvents": events, "displayTimeUnit": "ns"}
    if meta is not None:
        trace["otherData"] = meta
    return trace


def save_perfetto_json(
    records: Iterable[Mapping[str, object]], path: PathLike
) -> int:
    """Write the Perfetto trace; returns the number of trace events."""
    trace = perfetto_trace(records)
    pathlib.Path(path).write_text(json.dumps(trace, sort_keys=True))
    return len(trace["traceEvents"])  # type: ignore[arg-type]


__all__ = ["perfetto_trace", "save_perfetto_json"]
