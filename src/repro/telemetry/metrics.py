"""Mergeable metrics primitives: counters, gauges, fixed-bucket histograms.

The :class:`MetricsRegistry` is the common sink every layer reports
through: the sweep runtime (cell counts, cache hits, per-cell wall-time
distribution), the hot-path profiler (work counters), and the epoch
trace recorder (record counts, prediction-error distribution). Its
contract is shaped by the parallel sweep runtime:

* **Mergeable** - a sweep fans cells across worker processes; each
  worker's registry merges into the parent's and the result equals a
  serial run's registry (counters add, histogram buckets add, gauges
  keep the maximum).
* **Serialisable** - :meth:`MetricsRegistry.to_dict` /
  :meth:`MetricsRegistry.from_dict` round-trip through JSON so metrics
  can cross process boundaries and be archived next to results.
* **Cheap** - plain ints/floats and list index arithmetic; safe to bump
  on hot paths.

Histograms use *fixed* bucket bounds (declared at first use) so two
histograms of the same name are always mergeable; a bound mismatch is a
programming error and raises.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bounds for dimensionless ratios (e.g. relative
#: prediction error): fine near zero, coarse above 1.
RATIO_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)

#: Default histogram bounds for wall-clock seconds.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)

#: Default histogram bounds for small batch sizes (the decision
#: service's micro-batches): powers of two up to its default batch cap.
BATCH_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass
class Counter:
    """Monotonically increasing count; merge adds."""

    value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class Gauge:
    """Last-observed value; merge keeps the maximum.

    Max-merge makes the aggregate well defined when several workers
    report the same gauge (e.g. peak resident records): the fleet-wide
    reading is the worst case, not an arbitrary worker's last write.
    """

    value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)


class Histogram:
    """Fixed-bucket histogram: counts per bucket plus sum/count.

    Bucket ``i`` counts observations ``<= bounds[i]``; the final bucket
    is the overflow (``> bounds[-1]``). Quantiles are estimated by
    linear interpolation inside the winning bucket - exact enough for
    telemetry percentiles without retaining samples.
    """

    def __init__(self, bounds: Sequence[float] = RATIO_BUCKETS) -> None:
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0.0
        lo = 0.0
        for i, count in enumerate(self.counts):
            hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
            if seen + count >= target:
                if count == 0:
                    return hi
                frac = (target - seen) / count
                return lo + frac * (hi - lo)
            seen += count
            lo = hi
        return self.bounds[-1]

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum += other.sum


class MetricsRegistry:
    """Named metrics with create-on-first-use accessors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Accessors

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = RATIO_BUCKETS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(bounds)
        elif h.bounds != tuple(float(b) for b in bounds):
            raise ValueError(f"histogram {name!r} already declared with other bounds")
        return h

    def inc(self, name: str, n: float = 1) -> None:
        self.counter(name).inc(n)

    # ------------------------------------------------------------------
    # Introspection

    def counter_values(self, prefix: str = "") -> Dict[str, float]:
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    @property
    def names(self) -> List[str]:
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    # ------------------------------------------------------------------
    # Merge / serialise

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (in place)."""
        for name, c in other._counters.items():
            self.counter(name).merge(c)
        for name, g in other._gauges.items():
            self.gauge(name).merge(g)
        for name, h in other._histograms.items():
            self.histogram(name, h.bounds).merge(h)
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-encodable snapshot of every metric."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricsRegistry":
        out = cls()
        for name, value in dict(data.get("counters", {})).items():
            out.counter(name).value = value
        for name, value in dict(data.get("gauges", {})).items():
            out.gauge(name).set(value)
        for name, spec in dict(data.get("histograms", {})).items():
            h = out.histogram(name, spec["bounds"])
            h.counts = [int(c) for c in spec["counts"]]
            h.total = int(spec["total"])
            h.sum = float(spec["sum"])
        return out


def merge_all(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Merge many registries into a fresh one (workers -> parent)."""
    out = MetricsRegistry()
    for r in registries:
        out.merge(r)
    return out


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_all",
    "BATCH_BUCKETS",
    "RATIO_BUCKETS",
    "SECONDS_BUCKETS",
]
