"""Executable specifications backing the property-based test suites.

Hypothesis itself is a dev-only dependency, so nothing here imports it:
this module holds the *pure* reference models and predicates that
``tests/test_validation.py`` drives with random inputs. Keeping the
specs in the package (rather than inline in the tests) makes them
importable by ``repro check`` and by future fuzzing harnesses.

* :class:`PCTableModel` - a dict-backed executable spec of
  :class:`~repro.core.pc_table.PCTable`: same indexing, aliasing,
  eviction and hit-accounting semantics, written for obviousness
  instead of speed. A property test drives both with the same random
  PC stream and requires identical lookups/hits/updates/evictions and
  identical returned lines.
* :func:`check_sensitivity_bounds` - the
  :class:`~repro.core.sensitivity.LinearSensitivity` prediction
  contract: non-negative everywhere, monotone with the slope's sign.
* :func:`epoch_result_round_trips` /
  :func:`sensitivity_round_trips` - wire-codec round-trip predicates
  (JSON-encode, decode, re-encode; every float must survive
  bit-for-bit), shared by the codec property suites.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.core.pc_table import PCTableConfig
from repro.core.sensitivity import LinearSensitivity


class PCTableModel:
    """Dict-backed reference model of the direct-mapped PC table.

    Capacity misses, aliasing and tagless reads are modelled explicitly:
    the backing dict is keyed by *table index* (so two PCs that alias
    collide exactly as in the real table) while the stored pre-wrap key
    decides hit accounting and blending, mirroring
    :meth:`repro.core.pc_table.PCTable.update` / ``lookup``.
    """

    def __init__(self, config: PCTableConfig = PCTableConfig()) -> None:
        self.config = config
        #: index -> (i0, slope, pc_key)
        self._entries: Dict[int, Tuple[float, float, int]] = {}
        self.lookups = 0
        self.hits = 0
        self.updates = 0
        self.evictions = 0

    def _index(self, pc_idx: int) -> int:
        byte_pc = pc_idx * self.config.instruction_bytes
        return (byte_pc >> self.config.offset_bits) % self.config.n_entries

    def _key(self, pc_idx: int) -> int:
        byte_pc = pc_idx * self.config.instruction_bytes
        return byte_pc >> self.config.offset_bits

    def update(self, pc_idx: int, line: LinearSensitivity) -> None:
        idx = self._index(pc_idx)
        key = self._key(pc_idx)
        w = self.config.update_weight
        existing = self._entries.get(idx)
        if existing is not None and existing[2] != key:
            self.evictions += 1
        if existing is not None and existing[2] == key and w < 1.0:
            i0 = (1 - w) * existing[0] + w * line.i0
            slope = (1 - w) * existing[1] + w * line.slope
        else:
            i0, slope = line.i0, line.slope
        self._entries[idx] = (i0, slope, key)
        self.updates += 1

    def lookup(self, pc_idx: int) -> Optional[LinearSensitivity]:
        self.lookups += 1
        entry = self._entries.get(self._index(pc_idx))
        if entry is None:
            return None
        if entry[2] == self._key(pc_idx):
            self.hits += 1
        return LinearSensitivity(entry[0], entry[1])

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.config.n_entries


# ----------------------------------------------------------------------
# LinearSensitivity bounds


def check_sensitivity_bounds(
    line: LinearSensitivity, freqs_ghz: List[float]
) -> List[str]:
    """Violated clauses of the prediction contract, as messages.

    ``predict`` promises a commit count: it must be non-negative at
    every frequency, and across an ascending frequency sweep it must be
    monotone in the direction of the slope (the floor at zero may
    flatten stretches but can never invert the trend).
    """
    problems: List[str] = []
    preds = [line.predict(f) for f in sorted(freqs_ghz)]
    for f, p in zip(sorted(freqs_ghz), preds):
        if p < 0.0:
            problems.append(f"predict({f!r}) = {p!r} < 0")
    for (pa, pb) in zip(preds, preds[1:]):
        if line.slope >= 0 and pb < pa:
            problems.append(
                f"non-monotone: predict fell from {pa!r} to {pb!r} "
                f"with slope {line.slope!r} >= 0"
            )
        if line.slope <= 0 and pb > pa:
            problems.append(
                f"non-monotone: predict rose from {pa!r} to {pb!r} "
                f"with slope {line.slope!r} <= 0"
            )
    return problems


# ----------------------------------------------------------------------
# Wire-codec round-trips


def sensitivity_round_trips(line: LinearSensitivity) -> bool:
    """i0/slope survive JSON encode -> decode bit-for-bit (the truth
    lines the observation stream carries)."""
    wire = json.loads(json.dumps([line.i0, line.slope]))
    back = LinearSensitivity(wire[0], wire[1])
    return back == line


def epoch_result_round_trips(result) -> bool:
    """An :class:`~repro.gpu.gpu.EpochResult` survives the wire exactly.

    Encodes with :func:`repro.telemetry.schema.epoch_result_to_wire`,
    routes the JSON text through ``json`` (the same serialisation the
    decision service and observation stream use), decodes with
    :func:`repro.service.protocol.epoch_result_from_wire`, and
    re-encodes: byte-identical JSON both times means every counter and
    float survived.
    """
    from repro.service.protocol import epoch_result_from_wire
    from repro.telemetry.schema import epoch_result_to_wire

    wire = epoch_result_to_wire(result)
    text = json.dumps(wire, sort_keys=True)
    back = epoch_result_from_wire(json.loads(text))
    return json.dumps(epoch_result_to_wire(back), sort_keys=True) == text


__all__ = [
    "PCTableModel",
    "check_sensitivity_bounds",
    "epoch_result_round_trips",
    "sensitivity_round_trips",
]
