"""``repro check`` orchestration: invariants + differentials in one pass.

The check harness runs a small (workload x design) matrix end to end
with telemetry attached, audits every artifact the run produced
(:func:`~repro.validation.invariants.audit_run_result`, the controller
log, the PC tables, the epoch record stream), then exercises the three
differential pairs from :mod:`repro.validation.differential` (event vs
reference engine, serial vs parallel sweep, snapshot-fork vs clone
oracle). Everything lands in one :class:`CheckReport`; ``repro check``
exits nonzero iff ``report.ok`` is false.

Two presets: ``--quick`` (two workloads at CI-smoke scale, the default)
and ``--deep`` (the five quickstart workloads at figure scale). Both run
uncached - a check that compares a cache entry against itself proves
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.experiments import QUICK_WORKLOADS
from repro.config import SimConfig, small_config
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import EpochTraceRecorder, TelemetryConfig
from repro.validation.differential import (
    DiffReport,
    engine_differential,
    make_task,
    oracle_fork_differential,
    sweep_differential,
)
from repro.validation.invariants import (
    Violation,
    audit_controller_log,
    audit_epoch_records,
    audit_pc_table,
    audit_residency,
    audit_run_result,
    record_violations,
)


@dataclass(frozen=True)
class CheckConfig:
    """One validation pass: which cells to audit, at what scale."""

    workloads: Tuple[str, ...]
    designs: Tuple[str, ...] = ("PCSTALL", "CRISP")
    n_cus: int = 2
    waves_per_cu: int = 4
    cus_per_domain: int = 1
    epoch_ns: float = 1000.0
    scale: float = 0.15
    max_epochs: int = 60
    oracle_sample_freqs: Optional[int] = 4
    #: Pool width for the serial-vs-parallel sweep differential.
    sweep_workers: int = 2

    def sim_config(self) -> SimConfig:
        return small_config(
            n_cus=self.n_cus,
            waves_per_cu=self.waves_per_cu,
            epoch_ns=self.epoch_ns,
            cus_per_domain=self.cus_per_domain,
        )


def quick_check_config() -> CheckConfig:
    """CI-smoke scale: two workloads covering both suite categories."""
    return CheckConfig(workloads=("comd", "xsbench"))


def deep_check_config() -> CheckConfig:
    """The five quickstart workloads at figure scale."""
    return CheckConfig(
        workloads=QUICK_WORKLOADS, scale=0.3, max_epochs=120, waves_per_cu=8
    )


@dataclass
class CheckReport:
    """Everything one ``repro check`` pass found."""

    violations: List[Violation] = field(default_factory=list)
    differentials: List[DiffReport] = field(default_factory=list)
    #: ``workload/design`` labels whose artifacts were audited.
    cells_audited: List[str] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def ok(self) -> bool:
        return not self.violations and all(d.ok for d in self.differentials)

    def render(self) -> str:
        lines = [
            f"invariants: {len(self.cells_audited)} cell(s) audited, "
            f"{len(self.violations)} violation(s)"
        ]
        lines += [f"  {v.render()}" for v in self.violations]
        bad = [d for d in self.differentials if not d.ok]
        lines.append(
            f"differentials: {len(self.differentials)} pair(s) compared, "
            f"{len(bad)} diverged"
        )
        for d in self.differentials:
            lines.append("  " + d.render().replace("\n", "\n  "))
        lines.append(f"result: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "cells_audited": list(self.cells_audited),
            "violations": [v.as_dict() for v in self.violations],
            "differentials": [d.as_dict() for d in self.differentials],
            "counters": self.registry.counter_values("validation_"),
        }


def _audit_cell(
    cfg: CheckConfig, workload_name: str, design: str
) -> Tuple[List[Violation], str]:
    """Run one cell in-process with telemetry and audit every artifact.

    Unlike :func:`~repro.runtime.executor.run_task` this keeps the live
    simulation around, so the controller log and PC tables can be
    audited alongside the RunResult and the record stream.
    """
    from repro.dvfs.designs import make_controller
    from repro.dvfs.simulation import DvfsSimulation
    from repro.workloads import build_workload, workload

    config = cfg.sim_config()
    kernels = build_workload(workload(workload_name), scale=cfg.scale)
    ctrl = make_controller(design, config, None)
    ring = (cfg.max_epochs + 2) * (config.gpu.n_domains + 1)
    recorder = EpochTraceRecorder(TelemetryConfig(ring_size=ring))
    sim = DvfsSimulation(
        kernels,
        ctrl,
        config,
        design_name=design,
        workload_name=workload_name,
        collect_accuracy=True,
        max_epochs=cfg.max_epochs,
        oracle_sample_freqs=cfg.oracle_sample_freqs,
        telemetry=recorder,
    )
    result = sim.run()

    subject = f"{workload_name}/{design}"
    grid = config.dvfs.frequencies_ghz
    violations = list(audit_run_result(result, grid, subject))
    violations += audit_controller_log(ctrl.log, grid, subject)
    violations += _audit_noisy_residency(ctrl.log, grid, subject)
    for i, table in enumerate(getattr(ctrl.predictor, "tables", ())):
        violations += audit_pc_table(table, f"{subject} table[{i}]")
    violations += audit_epoch_records(list(recorder.records), subject)
    return violations, subject


def _audit_noisy_residency(log, grid, subject: str) -> List[Violation]:
    """Residency under 1-ULP frequency noise must still normalise.

    A live run's decisions are the grid floats themselves, so an
    exact-``==`` residency bucket lookup happens to work - until a
    frequency round-trips through unit conversion or the wire and comes
    back one ULP off, at which point the decision silently vanishes from
    every bucket. Re-deriving the residency from a ``nextafter``-
    perturbed copy of the real log pins the contract: snapping to the
    grid within the documented 1e-6 GHz tolerance, fractions summing
    to 1.
    """
    import math

    from repro.core.controller import ControllerLog

    noisy = ControllerLog()
    noisy.chosen_freqs = [
        [math.nextafter(f, math.inf) for f in epoch] for epoch in log.chosen_freqs
    ]
    noisy.predictions = list(log.predictions)
    return audit_residency(
        noisy.frequency_residency(grid),
        grid,
        bool(noisy.chosen_freqs),
        f"{subject} (noise-injected residency)",
    )


def run_check(
    cfg: CheckConfig,
    registry: Optional[MetricsRegistry] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CheckReport:
    """Run the full validation pass described by ``cfg``."""
    say = log or (lambda _msg: None)
    report = CheckReport(registry=registry or MetricsRegistry())

    # -- invariant audits over the (workload x design) matrix ----------
    for workload_name in cfg.workloads:
        for design in cfg.designs:
            violations, subject = _audit_cell(cfg, workload_name, design)
            report.violations += violations
            report.cells_audited.append(subject)
            say(f"audited {subject}: {len(violations)} violation(s)")
    record_violations(report.violations, report.registry)

    # -- differential pairs --------------------------------------------
    config = cfg.sim_config()
    tasks = [
        make_task(
            w,
            d,
            config,
            scale=cfg.scale,
            max_epochs=cfg.max_epochs,
            oracle_sample_freqs=cfg.oracle_sample_freqs,
        )
        for w in cfg.workloads
        for d in cfg.designs
    ]

    say("differential: event vs reference engine")
    report.differentials.append(engine_differential(tasks[0], trace=True))

    say(f"differential: serial vs parallel sweep ({len(tasks)} cell(s))")
    report.differentials += sweep_differential(tasks, workers=cfg.sweep_workers)

    say("differential: snapshot-fork vs clone oracle")
    from repro.workloads import build_workload, workload

    kernels = build_workload(workload(cfg.workloads[0]), scale=cfg.scale)
    report.differentials.append(
        oracle_fork_differential(
            kernels,
            config,
            subject=f"{cfg.workloads[0]}/oracle",
            n_sample_freqs=cfg.oracle_sample_freqs,
        )
    )

    for d in report.differentials:
        if not d.ok:
            report.registry.inc("validation_differential_diverged")
    report.registry.inc(
        "validation_differentials_run", len(report.differentials)
    )
    return report


__all__ = [
    "CheckConfig",
    "CheckReport",
    "deep_check_config",
    "quick_check_config",
    "run_check",
]
