"""Differential validation: invariant auditors, cross-checkers, specs.

Three layers, all pure consumers of finished artifacts (nothing here is
imported by the simulation itself):

* :mod:`repro.validation.invariants` - post-hoc auditors that re-derive
  physical invariants (energy conservation, monotone clocks, committed
  conservation, residency normalisation, PC-counter sanity) from run
  artifacts and return structured :class:`Violation` records.
* :mod:`repro.validation.differential` - config-driven cross-checkers
  for the repo's bit-exactness claims: event vs reference engine,
  serial vs parallel sweeps, snapshot-fork vs clone oracle paths.
* :mod:`repro.validation.properties` - executable specifications (a
  dict-backed PC-table reference model, prediction-bound predicates,
  wire round-trip checks) that the Hypothesis suites in
  ``tests/test_validation.py`` drive with random inputs.

:mod:`repro.validation.check` wires the first two into the ``repro
check`` CLI command.
"""

from repro.validation.check import (
    CheckConfig,
    CheckReport,
    deep_check_config,
    quick_check_config,
    run_check,
)
from repro.validation.differential import (
    DiffReport,
    FieldMismatch,
    diff_run_results,
    engine_differential,
    first_divergence,
    make_task,
    oracle_fork_differential,
    sweep_differential,
)
from repro.validation.invariants import (
    Violation,
    audit_controller_log,
    audit_energy_breakdown,
    audit_epoch_records,
    audit_pc_table,
    audit_residency,
    audit_run_result,
    record_violations,
)

__all__ = [
    "CheckConfig",
    "CheckReport",
    "DiffReport",
    "FieldMismatch",
    "Violation",
    "audit_controller_log",
    "audit_energy_breakdown",
    "audit_epoch_records",
    "audit_pc_table",
    "audit_residency",
    "audit_run_result",
    "deep_check_config",
    "diff_run_results",
    "engine_differential",
    "first_divergence",
    "make_task",
    "oracle_fork_differential",
    "quick_check_config",
    "record_violations",
    "run_check",
    "sweep_differential",
]
