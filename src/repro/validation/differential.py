"""Differential cross-checkers: the repo's equivalence claims, audited.

Three of the repo's core guarantees are *bit-exactness* claims between
two implementations of the same computation:

* **engine** - the event-driven CU timing engine must reproduce the
  reference per-cycle loop's :class:`~repro.dvfs.simulation.RunResult`
  exactly (PR 2's golden-baseline contract);
* **sweep parallelism** - fanning sweep cells across a process pool
  must never change a number vs the serial path (PR 1/4);
* **oracle fork** - the snapshot/restore fast path of the
  fork-and-pre-execute oracle must produce the same sample points and
  fitted truth lines as the original clone-per-sample loop (PR 2).

Each checker here runs both sides from the same inputs and diffs the
outcomes field by field, producing a :class:`DiffReport` whose
mismatches name the first quantity that diverged. With telemetry
enabled (``trace=True``, engine differential only) the checker also
attaches per-epoch traces and reports the **first diverging epoch**, so
a regression points at a specific decision instead of a final number.

These are config-driven (any workload/design/platform) and deliberately
bypass the result cache: a differential that compares a cache entry
against itself proves nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.objectives import Objective
from repro.dvfs.oracle import OracleSampler
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel
from repro.runtime.executor import SweepExecutor, SweepTask, run_task
from repro.telemetry.recorder import EpochTraceRecorder, TelemetryConfig

#: RunResult fields excluded from bit-exact comparison: hot-path work
#: counters measure *how* the engines computed, not *what* (the event
#: engine exists to make them differ), and wall-clock profiling is
#: inherently non-deterministic.
DEFAULT_IGNORE_FIELDS = ("hotpath",)

#: Telemetry record keys excluded from epoch-by-epoch comparison (wall
#: time differs run to run; everything else must match bit for bit).
_TRACE_IGNORE_KEYS = ("wall_s",)


@dataclass(frozen=True)
class FieldMismatch:
    """One diverging field between the two sides of a differential."""

    field: str
    a: object
    b: object

    def render(self) -> str:
        return f"{self.field}: {self.a!r} != {self.b!r}"


@dataclass
class DiffReport:
    """Outcome of one differential pair."""

    #: Which checker ran: ``engine`` / ``sweep-parallelism`` / ``oracle-fork``.
    name: str
    #: What was compared, e.g. ``comd/PCSTALL``.
    subject: str
    #: Labels of the two implementations, e.g. ``("event", "reference")``.
    sides: Tuple[str, str]
    mismatches: List[FieldMismatch] = field(default_factory=list)
    #: Epoch index where the telemetry traces first diverge (only when
    #: the checker ran with tracing and the sides disagree).
    first_diverging_epoch: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        head = f"[{self.name}] {self.subject} ({self.sides[0]} vs {self.sides[1]})"
        if self.ok:
            return f"{head}: identical"
        lines = [f"{head}: {len(self.mismatches)} mismatch(es)"]
        lines += [f"  {m.render()}" for m in self.mismatches]
        if self.first_diverging_epoch is not None:
            lines.append(f"  first diverging epoch: {self.first_diverging_epoch}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "subject": self.subject,
            "sides": list(self.sides),
            "ok": self.ok,
            "first_diverging_epoch": self.first_diverging_epoch,
            "mismatches": [
                {"field": m.field, "a": repr(m.a), "b": repr(m.b)}
                for m in self.mismatches
            ],
        }


# ----------------------------------------------------------------------
# RunResult diffing


def diff_run_results(
    a, b, ignore: Sequence[str] = DEFAULT_IGNORE_FIELDS
) -> List[FieldMismatch]:
    """Field-by-field bit-exact diff of two RunResults.

    Floats are compared with ``==`` on purpose: the claims under test
    are bit-exactness claims, and a tolerance would hide exactly the
    drift the differential exists to catch.
    """
    out: List[FieldMismatch] = []
    for f in dataclasses.fields(type(a)):
        if f.name in ignore:
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if f.name == "energy":
            for comp in dataclasses.fields(type(va)):
                ca, cb = getattr(va, comp.name), getattr(vb, comp.name)
                if ca != cb:
                    out.append(FieldMismatch(f"energy.{comp.name}", ca, cb))
            continue
        if va != vb:
            out.append(FieldMismatch(f.name, va, vb))
    return out


def first_divergence(
    records_a: Sequence[Mapping[str, object]],
    records_b: Sequence[Mapping[str, object]],
) -> Optional[int]:
    """Epoch index where two telemetry record streams first disagree.

    Compares the ``epoch``/``domain`` records pairwise in stream order,
    ignoring wall-clock keys. Returns None when the streams agree (a
    divergence elsewhere - e.g. only in the summary - has no epoch).
    """
    payload_a = [r for r in records_a if r.get("type") in ("epoch", "domain")]
    payload_b = [r for r in records_b if r.get("type") in ("epoch", "domain")]
    for ra, rb in zip(payload_a, payload_b):
        keys = (set(ra) | set(rb)) - set(_TRACE_IGNORE_KEYS)
        if any(ra.get(k) != rb.get(k) for k in keys):
            epoch = ra.get("epoch", rb.get("epoch"))
            return int(epoch) if isinstance(epoch, int) else None
    if len(payload_a) != len(payload_b):
        tail = min(len(payload_a), len(payload_b))
        rest = payload_a[tail:] or payload_b[tail:]
        epoch = rest[0].get("epoch") if rest else None
        return int(epoch) if isinstance(epoch, int) else None
    return None


# ----------------------------------------------------------------------
# Checkers


def _with_engine(task: SweepTask, engine: str) -> SweepTask:
    cfg = task.config
    if cfg.gpu.engine != engine:
        cfg = replace(cfg, gpu=replace(cfg.gpu, engine=engine))
    return replace(task, config=cfg)


def _recorder(task: SweepTask) -> EpochTraceRecorder:
    n_domains = task.config.gpu.n_domains
    ring = (task.max_epochs + 2) * (n_domains + 1)
    return EpochTraceRecorder(TelemetryConfig(ring_size=ring))


def engine_differential(task: SweepTask, trace: bool = False) -> DiffReport:
    """Run one cell under the event and reference engines and diff.

    With ``trace=True`` both runs carry an epoch recorder and a
    mismatch is localised to its first diverging epoch.
    """
    sides = ("event", "reference")
    rec_a = _recorder(task) if trace else None
    rec_b = _recorder(task) if trace else None
    result_a = run_task(_with_engine(task, "event"), recorder=rec_a)
    result_b = run_task(_with_engine(task, "reference"), recorder=rec_b)
    report = DiffReport(
        name="engine",
        subject=task.label,
        sides=sides,
        mismatches=diff_run_results(result_a, result_b),
    )
    if not report.ok and rec_a is not None and rec_b is not None:
        report.first_diverging_epoch = first_divergence(
            list(rec_a.records), list(rec_b.records)
        )
    return report


def sweep_differential(
    tasks: Sequence[SweepTask], workers: int = 2
) -> List[DiffReport]:
    """Serial vs process-pool execution of the same task grid.

    Both executors run uncached (a cache would compare an entry against
    itself) and without retries-affecting faults; every cell must match
    bit for bit regardless of how the pool interleaved it.
    """
    serial = SweepExecutor(max_workers=1).run(tasks)
    parallel = SweepExecutor(max_workers=workers).run(tasks)
    reports = []
    for task, a, b in zip(tasks, serial, parallel):
        reports.append(
            DiffReport(
                name="sweep-parallelism",
                subject=task.label,
                sides=("serial", f"parallel[{workers}]"),
                mismatches=diff_run_results(a, b),
            )
        )
    return reports


def oracle_fork_differential(
    kernels: Sequence[Kernel],
    config: SimConfig,
    subject: str = "",
    n_sample_freqs: Optional[int] = 4,
    warmup_epochs: int = 3,
) -> DiffReport:
    """Snapshot/restore oracle forking vs the clone-per-sample loop.

    Warms a GPU up for a few epochs, then pre-executes the next epoch's
    sample plan twice: through :meth:`OracleSampler.sample` (which on
    the event engine uses the one-snapshot-N-restores scratch path) and
    through an independent clone-per-sample loop reproducing the
    original fork semantics. The per-domain sample points and fitted
    truth lines must be identical.
    """
    sampler = OracleSampler(config, n_sample_freqs=n_sample_freqs)
    epoch_ns = config.dvfs.epoch_ns
    gpu = Gpu(config.gpu, initial_freq_ghz=config.dvfs.reference_freq_ghz)
    pending = list(kernels)
    gpu.load_kernel(pending.pop(0))
    for _ in range(warmup_epochs):
        if gpu.done:
            if not pending:
                break
            gpu.load_kernel(pending.pop(0))
        gpu.run_epoch(epoch_ns)

    fast = sampler.sample(gpu, epoch_ns)

    # The golden path: one deep clone per sample, no shared scratch.
    n_domains = len(gpu.domains)
    mismatches: List[FieldMismatch] = []
    for s, freqs in enumerate(sampler.sample_plan(n_domains)):
        fork = gpu.clone()
        fork.set_domain_frequencies(freqs, transition_latency_ns=0.0)
        result = fork.run_epoch(epoch_ns)
        commits = fork.committed_per_domain(result)
        for d in range(n_domains):
            expected = fast.commits_at(d, freqs[d])
            if expected != commits[d]:
                mismatches.append(
                    FieldMismatch(
                        f"sample[{s}].domain[{d}]@{freqs[d]:.2f}GHz",
                        expected,
                        commits[d],
                    )
                )
    return DiffReport(
        name="oracle-fork",
        subject=subject or "oracle",
        sides=("snapshot-fork", "clone"),
        mismatches=mismatches,
    )


def make_task(
    workload: str,
    design: str,
    config: SimConfig,
    scale: float = 0.3,
    max_epochs: int = 120,
    oracle_sample_freqs: Optional[int] = 4,
    collect_accuracy: bool = True,
    objective: Optional[Objective] = None,
) -> SweepTask:
    """Convenience constructor for differential sweep cells."""
    return SweepTask(
        workload=workload,
        design=design,
        config=config,
        scale=scale,
        max_epochs=max_epochs,
        oracle_sample_freqs=oracle_sample_freqs,
        collect_accuracy=collect_accuracy,
        objective=objective,
    )


__all__ = [
    "DEFAULT_IGNORE_FIELDS",
    "DiffReport",
    "FieldMismatch",
    "diff_run_results",
    "engine_differential",
    "first_divergence",
    "make_task",
    "oracle_fork_differential",
    "sweep_differential",
]
