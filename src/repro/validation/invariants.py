"""Post-hoc invariant auditors over run artifacts.

The repo's headline numbers rest on physical invariants the unit tests
never audit systematically: energy components are non-negative and sum
to the breakdown total, per-epoch energies sum to the run's energy,
simulation clocks advance monotonically, committed instructions are
conserved between the per-epoch records and the run total, Figure 16
residency fractions sum to 1 over the V/f grid, PC tables never report
more hits than lookups, and a completed run's completion delay fits
inside its simulated window. Each auditor here re-derives one of those
invariants from a finished artifact - a
:class:`~repro.dvfs.simulation.RunResult`, an
:class:`~repro.power.energy.EnergyBreakdown`, a
:class:`~repro.core.controller.ControllerLog`, a
:class:`~repro.core.pc_table.PCTable` or a telemetry JSONL record
stream - and returns structured :class:`Violation` records instead of
raising, so ``repro check`` can collect everything that is wrong in one
pass and route the counts into a
:class:`~repro.telemetry.metrics.MetricsRegistry`.

Auditors are pure: they read public attributes only, never mutate the
artifact, and import nothing from :mod:`repro.dvfs` or
:mod:`repro.gpu` (they receive plain result objects, mirroring the
telemetry layer's dependency rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.telemetry.metrics import MetricsRegistry

#: Grid-matching slack (GHz), mirroring the oracle / controller snap
#: tolerances: absorbs float noise, never bridges 100 MHz grid steps.
FREQ_ABS_TOL_GHZ = 1e-6

#: Relative tolerance for "these two float accumulations must agree"
#: checks (per-epoch energy vs breakdown total, window vs delay). Sums
#: taken in a different order may differ by a few ULPs, nothing more.
SUM_REL_TOL = 1e-9
SUM_ABS_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributable and machine-readable."""

    #: Machine name of the invariant, e.g. ``energy_component_negative``.
    check: str
    #: What was audited, e.g. ``comd/PCSTALL`` or ``epoch[12]``.
    subject: str
    #: Human diagnosis with the numbers inline.
    message: str
    #: The offending value / what the invariant required, when scalar.
    observed: Optional[float] = None
    expected: Optional[float] = None

    def render(self) -> str:
        return f"[{self.check}] {self.subject}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "subject": self.subject,
            "message": self.message,
            "observed": self.observed,
            "expected": self.expected,
        }


def record_violations(
    violations: Iterable[Violation], registry: MetricsRegistry
) -> int:
    """Route violations into a metrics registry; returns the count.

    Bumps ``validation_violations`` plus one
    ``validation_violation_<check>`` counter per violation, so sweeps
    and CI can alert on totals without parsing reports.
    """
    n = 0
    for v in violations:
        registry.inc("validation_violations")
        registry.inc(f"validation_violation_{v.check}")
        n += 1
    return n


def _bad_number(x: object) -> bool:
    """True for NaN/inf/non-numeric - values no physical quantity has."""
    return not isinstance(x, (int, float)) or not math.isfinite(x)


# ----------------------------------------------------------------------
# Energy


def audit_energy_breakdown(breakdown, subject: str = "") -> List[Violation]:
    """Components finite and non-negative; they must sum to ``total``."""
    out: List[Violation] = []
    components = {
        "cu_dynamic_and_leakage": breakdown.cu_dynamic_and_leakage,
        "memory": breakdown.memory,
        "transitions": breakdown.transitions,
        "elapsed_ns": breakdown.elapsed_ns,
    }
    for name, value in components.items():
        if _bad_number(value) or value < 0.0:
            out.append(
                Violation(
                    "energy_component_negative",
                    subject,
                    f"energy component {name} = {value!r} (must be a "
                    f"finite non-negative number)",
                    observed=value if isinstance(value, (int, float)) else None,
                    expected=0.0,
                )
            )
    total = breakdown.total
    expected = (
        breakdown.cu_dynamic_and_leakage + breakdown.memory + breakdown.transitions
    )
    if _bad_number(total) or not math.isclose(
        total, expected, rel_tol=SUM_REL_TOL, abs_tol=SUM_ABS_TOL
    ):
        out.append(
            Violation(
                "energy_total_mismatch",
                subject,
                f"breakdown total {total!r} != component sum {expected!r}",
                observed=total if isinstance(total, (int, float)) else None,
                expected=expected,
            )
        )
    return out


# ----------------------------------------------------------------------
# RunResult


def audit_run_result(
    result, freq_grid: Optional[Sequence[float]] = None, subject: str = ""
) -> List[Violation]:
    """The full :class:`~repro.dvfs.simulation.RunResult` contract.

    Checks the energy breakdown, residency normalisation over the grid,
    accuracy/hit-ratio bounds, count non-negativity, and - for completed
    runs - that the completion delay fits inside the simulated window
    (``delay_ns <= energy.elapsed_ns``): the run simulated whole epochs
    past the last retirement, so a delay beyond the window means one of
    the two clocks lies.
    """
    subject = subject or f"{result.workload}/{result.design}"
    out = list(audit_energy_breakdown(result.energy, subject))

    for name, value in (
        ("epochs", result.epochs),
        ("delay_ns", result.delay_ns),
        ("total_committed", result.total_committed),
        ("total_transitions", result.total_transitions),
    ):
        if _bad_number(value) or value < 0:
            out.append(
                Violation(
                    "count_negative",
                    subject,
                    f"{name} = {value!r} (must be finite and non-negative)",
                    observed=value if isinstance(value, (int, float)) else None,
                    expected=0.0,
                )
            )

    for name, value in (
        ("prediction_accuracy", result.prediction_accuracy),
        ("pc_hit_ratio", result.pc_hit_ratio),
    ):
        if value is not None and (_bad_number(value) or not 0.0 <= value <= 1.0):
            out.append(
                Violation(
                    "ratio_out_of_bounds",
                    subject,
                    f"{name} = {value!r} outside [0, 1]",
                    observed=value if isinstance(value, (int, float)) else None,
                )
            )

    out.extend(audit_residency(result.frequency_residency, freq_grid,
                               bool(result.epochs), subject))

    if result.completed and result.delay_ns > result.energy.elapsed_ns * (
        1.0 + SUM_REL_TOL
    ) + SUM_ABS_TOL:
        out.append(
            Violation(
                "delay_exceeds_window",
                subject,
                f"completed run's delay_ns {result.delay_ns!r} exceeds the "
                f"simulated window elapsed_ns {result.energy.elapsed_ns!r}",
                observed=result.delay_ns,
                expected=result.energy.elapsed_ns,
            )
        )
    return out


def audit_residency(
    residency: Mapping[float, float],
    freq_grid: Optional[Sequence[float]],
    had_epochs: bool,
    subject: str = "",
) -> List[Violation]:
    """Fractions in [0, 1], keys on the grid, total = 1 (or 0 pre-run)."""
    out: List[Violation] = []
    for f, share in residency.items():
        if _bad_number(share) or not 0.0 <= share <= 1.0:
            out.append(
                Violation(
                    "residency_share_out_of_bounds",
                    subject,
                    f"residency[{f!r}] = {share!r} outside [0, 1]",
                    observed=share if isinstance(share, (int, float)) else None,
                )
            )
        if freq_grid is not None and not any(
            math.isclose(f, g, abs_tol=FREQ_ABS_TOL_GHZ) for g in freq_grid
        ):
            out.append(
                Violation(
                    "residency_off_grid",
                    subject,
                    f"residency key {f!r} GHz is not on the V/f grid "
                    f"{list(freq_grid)!r}",
                    observed=f,
                )
            )
    total = sum(residency.values())
    expected = 1.0 if had_epochs else 0.0
    if not math.isclose(total, expected, rel_tol=SUM_REL_TOL, abs_tol=SUM_ABS_TOL):
        out.append(
            Violation(
                "residency_sum",
                subject,
                f"residency fractions sum to {total!r}, expected {expected!r} "
                f"(an off-grid decision was counted in the total but dropped "
                f"from the grid buckets?)",
                observed=total,
                expected=expected,
            )
        )
    return out


# ----------------------------------------------------------------------
# Controller log / PC table


def audit_controller_log(
    log, freq_grid: Sequence[float], subject: str = ""
) -> List[Violation]:
    """Every chosen frequency must sit on the V/f grid."""
    out: List[Violation] = []
    for epoch, freqs in enumerate(log.chosen_freqs):
        for d, f in enumerate(freqs):
            if not any(
                math.isclose(f, g, abs_tol=FREQ_ABS_TOL_GHZ) for g in freq_grid
            ):
                out.append(
                    Violation(
                        "chosen_freq_off_grid",
                        subject,
                        f"epoch {epoch} domain {d}: chosen {f!r} GHz is not "
                        f"on the grid {list(freq_grid)!r}",
                        observed=f,
                    )
                )
    if len(log.predictions) != len(log.chosen_freqs):
        out.append(
            Violation(
                "log_length_mismatch",
                subject,
                f"{len(log.predictions)} prediction epochs vs "
                f"{len(log.chosen_freqs)} decision epochs",
                observed=float(len(log.predictions)),
                expected=float(len(log.chosen_freqs)),
            )
        )
    return out


def audit_pc_table(table, subject: str = "") -> List[Violation]:
    """Counter sanity for a :class:`~repro.core.pc_table.PCTable`."""
    out: List[Violation] = []
    counters = {
        "lookups": table.lookups,
        "hits": table.hits,
        "updates": table.updates,
        "evictions": table.evictions,
    }
    for name, value in counters.items():
        if _bad_number(value) or value < 0:
            out.append(
                Violation(
                    "count_negative",
                    subject,
                    f"PC-table counter {name} = {value!r}",
                    observed=value if isinstance(value, (int, float)) else None,
                )
            )
    if table.hits > table.lookups:
        out.append(
            Violation(
                "pc_hits_exceed_lookups",
                subject,
                f"PC table reports {table.hits} hits from {table.lookups} "
                f"lookups",
                observed=float(table.hits),
                expected=float(table.lookups),
            )
        )
    if table.evictions > table.updates:
        out.append(
            Violation(
                "pc_evictions_exceed_updates",
                subject,
                f"PC table reports {table.evictions} evictions from "
                f"{table.updates} updates",
                observed=float(table.evictions),
                expected=float(table.updates),
            )
        )
    if not 0.0 <= table.occupancy <= 1.0:
        out.append(
            Violation(
                "ratio_out_of_bounds",
                subject,
                f"PC-table occupancy {table.occupancy!r} outside [0, 1]",
                observed=table.occupancy,
            )
        )
    return out


# ----------------------------------------------------------------------
# Telemetry record streams


def audit_epoch_records(
    records: Iterable[Mapping[str, object]], subject: str = ""
) -> List[Violation]:
    """Audit a telemetry record stream (ring contents or loaded JSONL).

    Checks, across the ``run``/``epoch``/``domain``/``summary`` records
    of one run:

    * clocks: every epoch window has ``t_end >= t_start`` and windows
      never move backwards across epochs;
    * per-epoch energy is finite and non-negative, and the per-epoch
      energies sum to the summary's ``energy_total``;
    * committed counts are conserved: the epoch records sum to the
      summary's ``total_committed``;
    * PC-table deltas: per-epoch ``pc_hits <= pc_lookups``, none
      negative;
    * domain records: chosen frequencies sit on the run header's grid,
      relative errors are non-negative, commit counts non-negative;
    * the summary's ``delay_ns`` fits in its ``elapsed_ns`` window for
      completed runs.

    Pre-summary streams (a run still in flight, or an old trace without
    the conservation fields) skip the summary cross-checks.
    """
    out: List[Violation] = []
    grid: Optional[List[float]] = None
    last_t_end: Optional[float] = None
    energy_sum = 0.0
    committed_sum = 0
    duration_sum = 0.0
    n_epochs = 0
    summary: Optional[Mapping[str, object]] = None

    for rec in records:
        rtype = rec.get("type")
        if rtype == "run":
            freqs = rec.get("frequencies_ghz")
            if isinstance(freqs, (list, tuple)):
                grid = [float(f) for f in freqs]
            if not subject:
                subject = f"{rec.get('workload', '?')}/{rec.get('design', '?')}"
        elif rtype == "epoch":
            n_epochs += 1
            out.extend(_audit_epoch_record(rec, last_t_end, subject))
            t_start = rec.get("t_start_ns")
            t_end = rec.get("t_end_ns")
            if isinstance(t_end, (int, float)) and math.isfinite(t_end):
                last_t_end = float(t_end)
            if (
                isinstance(t_start, (int, float))
                and isinstance(t_end, (int, float))
                and math.isfinite(t_start)
                and math.isfinite(t_end)
            ):
                duration_sum += t_end - t_start
            energy = rec.get("energy")
            if isinstance(energy, (int, float)) and math.isfinite(energy):
                energy_sum += energy
            committed = rec.get("committed")
            if isinstance(committed, int):
                committed_sum += committed
        elif rtype == "domain":
            out.extend(_audit_domain_record(rec, grid, subject))
        elif rtype == "summary":
            summary = rec

    if summary is not None:
        out.extend(
            _audit_summary_conservation(
                summary, n_epochs, energy_sum, committed_sum, duration_sum, subject
            )
        )
    return out


def _audit_epoch_record(
    rec: Mapping[str, object], last_t_end: Optional[float], subject: str
) -> List[Violation]:
    out: List[Violation] = []
    where = f"{subject} epoch[{rec.get('epoch')}]"
    t_start = rec.get("t_start_ns")
    t_end = rec.get("t_end_ns")
    if _bad_number(t_start) or _bad_number(t_end) or t_end < t_start:
        out.append(
            Violation(
                "clock_not_monotone",
                where,
                f"epoch window [{t_start!r}, {t_end!r}] runs backwards",
            )
        )
    elif last_t_end is not None and t_start < last_t_end - SUM_ABS_TOL:
        out.append(
            Violation(
                "clock_not_monotone",
                where,
                f"epoch starts at {t_start!r} before the previous epoch "
                f"ended at {last_t_end!r}",
                observed=float(t_start),
                expected=last_t_end,
            )
        )
    energy = rec.get("energy")
    if _bad_number(energy) or energy < 0.0:
        out.append(
            Violation(
                "epoch_energy_negative",
                where,
                f"epoch energy {energy!r} (must be finite, non-negative)",
                observed=energy if isinstance(energy, (int, float)) else None,
            )
        )
    lookups = rec.get("pc_lookups")
    hits = rec.get("pc_hits")
    if isinstance(lookups, (int, float)) and isinstance(hits, (int, float)):
        if hits > lookups or hits < 0 or lookups < 0:
            out.append(
                Violation(
                    "pc_hits_exceed_lookups",
                    where,
                    f"per-epoch PC deltas: {hits!r} hits from {lookups!r} "
                    f"lookups",
                    observed=float(hits),
                    expected=float(lookups),
                )
            )
    return out


def _audit_domain_record(
    rec: Mapping[str, object], grid: Optional[List[float]], subject: str
) -> List[Violation]:
    out: List[Violation] = []
    where = f"{subject} epoch[{rec.get('epoch')}].domain[{rec.get('domain')}]"
    freq = rec.get("freq_ghz")
    if _bad_number(freq):
        out.append(
            Violation("chosen_freq_off_grid", where, f"freq_ghz = {freq!r}")
        )
    elif grid is not None and not any(
        math.isclose(float(freq), g, abs_tol=FREQ_ABS_TOL_GHZ) for g in grid
    ):
        out.append(
            Violation(
                "chosen_freq_off_grid",
                where,
                f"chosen {freq!r} GHz is not on the run's grid {grid!r}",
                observed=float(freq),
            )
        )
    rel_error = rec.get("rel_error")
    if rel_error is not None and (_bad_number(rel_error) or rel_error < 0.0):
        out.append(
            Violation(
                "rel_error_negative",
                where,
                f"relative error {rel_error!r} (must be >= 0)",
                observed=rel_error if isinstance(rel_error, (int, float)) else None,
            )
        )
    committed = rec.get("actual_commits")
    if committed is not None and (_bad_number(committed) or committed < 0):
        out.append(
            Violation(
                "count_negative",
                where,
                f"actual_commits = {committed!r}",
                observed=committed if isinstance(committed, (int, float)) else None,
            )
        )
    return out


def _audit_summary_conservation(
    summary: Mapping[str, object],
    n_epochs: int,
    energy_sum: float,
    committed_sum: int,
    duration_sum: float,
    subject: str,
) -> List[Violation]:
    out: List[Violation] = []
    where = f"{subject} summary"

    epochs = summary.get("epochs")
    if isinstance(epochs, int) and n_epochs and epochs != n_epochs:
        out.append(
            Violation(
                "epoch_count_mismatch",
                where,
                f"summary says {epochs} epochs but the stream holds "
                f"{n_epochs} epoch records",
                observed=float(n_epochs),
                expected=float(epochs),
            )
        )

    total_committed = summary.get("total_committed")
    if isinstance(total_committed, int) and n_epochs:
        if committed_sum != total_committed:
            out.append(
                Violation(
                    "committed_not_conserved",
                    where,
                    f"epoch records sum to {committed_sum} committed "
                    f"instructions but the run total is {total_committed}",
                    observed=float(committed_sum),
                    expected=float(total_committed),
                )
            )

    energy_total = summary.get("energy_total")
    if isinstance(energy_total, (int, float)) and n_epochs:
        if not math.isclose(
            energy_sum, energy_total, rel_tol=1e-6, abs_tol=SUM_ABS_TOL
        ):
            out.append(
                Violation(
                    "epoch_energy_not_conserved",
                    where,
                    f"per-epoch energies sum to {energy_sum!r} but the "
                    f"breakdown total is {energy_total!r}",
                    observed=energy_sum,
                    expected=float(energy_total),
                )
            )

    elapsed = summary.get("elapsed_ns")
    delay = summary.get("delay_ns")
    completed = summary.get("completed")
    if (
        completed
        and isinstance(elapsed, (int, float))
        and isinstance(delay, (int, float))
        and delay > elapsed * (1.0 + SUM_REL_TOL) + SUM_ABS_TOL
    ):
        out.append(
            Violation(
                "delay_exceeds_window",
                where,
                f"completed run's delay_ns {delay!r} exceeds its simulated "
                f"window elapsed_ns {elapsed!r}",
                observed=float(delay),
                expected=float(elapsed),
            )
        )
    if (
        isinstance(elapsed, (int, float))
        and n_epochs
        and not math.isclose(duration_sum, elapsed, rel_tol=1e-6, abs_tol=SUM_ABS_TOL)
    ):
        out.append(
            Violation(
                "window_not_conserved",
                where,
                f"epoch durations sum to {duration_sum!r} ns but the "
                f"summary window is {elapsed!r} ns",
                observed=duration_sum,
                expected=float(elapsed),
            )
        )
    return out


__all__ = [
    "FREQ_ABS_TOL_GHZ",
    "SUM_ABS_TOL",
    "SUM_REL_TOL",
    "Violation",
    "audit_controller_log",
    "audit_energy_breakdown",
    "audit_epoch_records",
    "audit_pc_table",
    "audit_residency",
    "audit_run_result",
    "record_violations",
]
