"""One driver per table/figure of the paper's evaluation (Sections 3-6).

Every driver takes an :class:`ExperimentSetup` so the same code scales
from quick CI runs (few workloads, scaled-down kernels) to the full
evaluation. Drivers return plain result objects with a ``render()``
method that prints the same rows/series the paper's figure shows.

Experiment index (see DESIGN.md for the full mapping):

========  =========================================================
fig01a    ED2P improvement vs DVFS epoch duration
fig01b    prediction accuracy vs DVFS epoch duration
fig05     instructions-vs-frequency linearity (R^2)
fig06     sensitivity-over-time profiles
fig07     consecutive-epoch sensitivity change (a: per app, b: vs epoch)
fig08     per-wavefront contribution to CU sensitivity
fig10     same-PC iteration change per sharing granularity
fig11     (a) per-slot contention profile, (b) offset-bit sweep
tab1      predictor storage overhead
oracle    fork-and-pre-execute validation accuracy
fig14     prediction accuracy per design
fig15     per-workload ED2P normalised to static 1.7 GHz
fig16     frequency residency under PCSTALL
fig17     geomean EDP vs epoch duration
fig18a    energy savings under performance-degradation caps
fig18b    ED2P vs V/f-domain granularity
========  =========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.linearity import LinearityResult, linearity_study
from repro.analysis.phases import (
    SensitivityTrace,
    consecutive_epoch_change,
    offset_bits_sweep,
    profile_sensitivity,
    same_pc_iteration_change,
    wavefront_contributions,
    wavefront_slot_change,
)
from repro.analysis.report import format_series, format_table, geometric_mean
from repro.config import SimConfig, small_config
from repro.core.hardware import STORAGE_TABLE
from repro.core.objectives import EDnPObjective, Objective, PerformanceCapObjective
from repro.dvfs.oracle import OracleSampler
from repro.dvfs.simulation import RunResult
from repro.gpu.gpu import Gpu
from repro.runtime.cache import ResultCache
from repro.runtime.checkpoint import SweepCheckpoint
from repro.runtime.executor import RetryPolicy, SweepExecutor, SweepTask
from repro.runtime.progress import SweepInstrumentation
from repro.workloads import build_workload, workload, workload_names


@dataclass
class ExperimentSetup:
    """Knobs shared by every experiment driver."""

    config: SimConfig = field(default_factory=small_config)
    #: Workloads to evaluate; None = the full 16-app suite.
    workloads: Optional[Tuple[str, ...]] = None
    #: Work scale multiplier (outer-loop trips).
    scale: float = 0.4
    max_epochs: int = 400
    #: Oracle pre-execution frequency count (None = full grid).
    oracle_sample_freqs: Optional[int] = 4
    #: Process count the grid drivers fan cells across (1 = in-process).
    workers: int = 1
    #: Memoise cells on disk (see :mod:`repro.runtime.cache`).
    use_cache: bool = False
    #: Cache directory; None = ``.repro_cache`` / ``$REPRO_CACHE_DIR``.
    cache_dir: Optional[str] = None
    #: Per-cell timeout (seconds) for parallel sweeps; None = unbounded.
    task_timeout_s: Optional[float] = None
    #: Per-cell retry behaviour (see :class:`~repro.runtime.executor.RetryPolicy`).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Checkpoint manifest for crash-safe resume; None = no checkpointing.
    checkpoint: Optional[SweepCheckpoint] = None

    def workload_list(self) -> List[str]:
        return list(self.workloads) if self.workloads else workload_names()

    def make_executor(
        self, progress: Optional[SweepInstrumentation] = None
    ) -> SweepExecutor:
        """Executor configured from this setup's runtime knobs."""
        return SweepExecutor(
            max_workers=self.workers,
            cache=ResultCache(self.cache_dir) if self.use_cache else None,
            progress=progress or SweepInstrumentation(),
            task_timeout_s=self.task_timeout_s,
            retry=self.retry,
            checkpoint=self.checkpoint,
        )


#: A fast default subset covering both categories and all characters.
QUICK_WORKLOADS: Tuple[str, ...] = ("comd", "xsbench", "hacc", "dgemm", "BwdBN")


def _task(
    setup: ExperimentSetup,
    workload_name: str,
    design: str,
    objective: Optional[Objective] = None,
    config: Optional[SimConfig] = None,
    collect_accuracy: bool = False,
    scale: Optional[float] = None,
) -> SweepTask:
    return SweepTask(
        workload=workload_name,
        design=design,
        config=config or setup.config,
        scale=scale if scale is not None else setup.scale,
        max_epochs=setup.max_epochs,
        oracle_sample_freqs=setup.oracle_sample_freqs,
        collect_accuracy=collect_accuracy,
        objective=objective,
    )


def _run_design(
    setup: ExperimentSetup,
    workload_name: str,
    design: str,
    objective: Optional[Objective] = None,
    config: Optional[SimConfig] = None,
    collect_accuracy: bool = False,
) -> RunResult:
    """Run a single cell (cache-aware, always in-process)."""
    task = _task(setup, workload_name, design, objective, config, collect_accuracy)
    return setup.make_executor().run_one(task)


def _with_epoch(config: SimConfig, epoch_ns: float) -> SimConfig:
    return replace(config, dvfs=replace(config.dvfs, epoch_ns=epoch_ns))


# ======================================================================
# Figure 5


@dataclass
class Fig05Result:
    per_workload: Dict[str, LinearityResult]

    @property
    def mean_r_squared(self) -> float:
        vals = [r.mean_r_squared for r in self.per_workload.values()]
        return sum(vals) / len(vals) if vals else 0.0

    def render(self) -> str:
        rows = [(w, r.mean_r_squared) for w, r in self.per_workload.items()]
        rows.append(("MEAN", self.mean_r_squared))
        return format_table(
            ["workload", "mean R^2"], rows,
            title="Fig 5: instructions-vs-frequency linearity (paper: R^2 ~ 0.82)",
        )


def fig05_linearity(setup: ExperimentSetup, sample_epochs=(2, 5, 9, 14, 20)) -> Fig05Result:
    out = {}
    for name in setup.workload_list():
        kernels = build_workload(workload(name), scale=setup.scale)
        out[name] = linearity_study(
            kernels, setup.config, sample_epochs=sample_epochs,
            max_epochs=max(sample_epochs) + 4,
        )
    return Fig05Result(out)


# ======================================================================
# Figures 6, 7, 8, 10, 11 share a profiling pass


def profile_workload(setup: ExperimentSetup, name: str, max_epochs: int = 40) -> SensitivityTrace:
    kernels = build_workload(workload(name), scale=setup.scale)
    return profile_sensitivity(kernels, setup.config, max_epochs=max_epochs, workload_name=name)


@dataclass
class Fig06Result:
    profiles: Dict[str, List[float]]  # workload -> CU0 sensitivity series

    def render(self) -> str:
        lines = ["Fig 6: sensitivity profiles (CU0 slope per 1us epoch)"]
        for name, series in self.profiles.items():
            head = " ".join(f"{v:7.1f}" for v in series[:12])
            lines.append(f"  {name:8s}: {head} ...")
        return "\n".join(lines)


def fig06_profiles(
    setup: ExperimentSetup, apps: Sequence[str] = ("dgemm", "hacc", "BwdBN", "xsbench"),
    max_epochs: int = 30,
) -> Fig06Result:
    profiles = {}
    for name in apps:
        trace = profile_workload(setup, name, max_epochs=max_epochs)
        profiles[name] = trace.cu_series(0)
    return Fig06Result(profiles)


@dataclass
class Fig07Result:
    per_workload: Dict[str, float]
    vs_epoch: Dict[float, float]

    @property
    def mean_change(self) -> float:
        vals = list(self.per_workload.values())
        return sum(vals) / len(vals) if vals else 0.0

    def render(self) -> str:
        a = format_table(
            ["workload", "rel change"],
            list(self.per_workload.items()) + [("MEAN", self.mean_change)],
            title="Fig 7a: consecutive-epoch sensitivity change @1us (paper mean: 0.37)",
        )
        b = format_series(
            self.vs_epoch, key_header="epoch (ns)", value_header="rel change",
            title="Fig 7b: change vs epoch duration (paper: 0.37 @1us -> 0.12 @100us)",
        )
        return a + "\n\n" + b


def fig07_variability(
    setup: ExperimentSetup,
    epoch_durations_ns: Sequence[float] = (1_000.0, 10_000.0, 50_000.0),
    trend_app: str = "comd",
    max_epochs: int = 30,
) -> Fig07Result:
    per_workload = {}
    for name in setup.workload_list():
        trace = profile_workload(setup, name, max_epochs=max_epochs)
        per_workload[name] = consecutive_epoch_change(trace, "cu")

    vs_epoch = {}
    for epoch_ns in epoch_durations_ns:
        cfg = _with_epoch(setup.config, epoch_ns)
        kernels = build_workload(workload(trend_app), scale=setup.scale * max(1.0, epoch_ns / 2000.0))
        n = max(8, int(30 * 1000.0 / epoch_ns)) if epoch_ns > 1000 else max_epochs
        trace = profile_sensitivity(kernels, cfg, max_epochs=min(n, 30), epoch_ns=epoch_ns)
        vs_epoch[epoch_ns] = consecutive_epoch_change(trace, "cu")
    return Fig07Result(per_workload, vs_epoch)


@dataclass
class Fig08Result:
    slot_series: List[List[float]]
    cu_series: List[float]

    def render(self) -> str:
        lines = ["Fig 8: wavefront contributions to CU sensitivity (BwdBN, CU0)"]
        for rank, series in enumerate(self.slot_series):
            head = " ".join(f"{v:6.1f}" for v in series[:10])
            lines.append(f"  slot {rank}: {head} ...")
        head = " ".join(f"{v:6.1f}" for v in self.cu_series[:10])
        lines.append(f"  CU    : {head} ...")
        return "\n".join(lines)


def fig08_wavefront_contributions(
    setup: ExperimentSetup, app: str = "BwdBN", max_epochs: int = 25, max_slots: int = 8
) -> Fig08Result:
    trace = profile_workload(setup, app, max_epochs=max_epochs)
    return Fig08Result(
        wavefront_contributions(trace, cu_id=0, max_slots=max_slots),
        trace.cu_series(0),
    )


@dataclass
class Fig10Result:
    per_granularity: Dict[str, float]
    consecutive_wf: float

    def render(self) -> str:
        rows = list(self.per_granularity.items())
        rows.append(("consecutive (ref)", self.consecutive_wf))
        return format_table(
            ["granularity", "rel change"], rows,
            title="Fig 10: same-PC iteration change (paper: ~0.10 vs 0.37 consecutive)",
        )


def fig10_pc_repeatability(
    setup: ExperimentSetup, apps: Optional[Sequence[str]] = None, max_epochs: int = 35
) -> Fig10Result:
    apps = list(apps) if apps else list(QUICK_WORKLOADS)
    sums = {"wf": [], "cu": [], "gpu": []}
    consecutive = []
    for name in apps:
        trace = profile_workload(setup, name, max_epochs=max_epochs)
        for g in sums:
            sums[g].append(same_pc_iteration_change(trace, g))
        consecutive.append(consecutive_epoch_change(trace, "wf"))
    per_granularity = {g: sum(v) / len(v) for g, v in sums.items()}
    return Fig10Result(per_granularity, sum(consecutive) / len(consecutive))


@dataclass
class Fig11Result:
    slot_profile: List[float]
    offset_sweep: Dict[int, float]

    def render(self) -> str:
        a = format_series(
            {i: v for i, v in enumerate(self.slot_profile)},
            key_header="wavefront slot", value_header="rel change",
            title="Fig 11a: same-PC change per wavefront slot (quickS)",
        )
        b = format_series(
            self.offset_sweep, key_header="offset bits", value_header="rel change",
            title="Fig 11b: PC-index offset-bit sweep (paper: rises past 4 bits)",
        )
        return a + "\n\n" + b


def fig11_contention_and_offsets(
    setup: ExperimentSetup, app: str = "quickS", max_epochs: int = 35,
    offsets: Sequence[int] = (0, 2, 4, 6, 8, 10),
) -> Fig11Result:
    trace = profile_workload(setup, app, max_epochs=max_epochs)
    return Fig11Result(
        wavefront_slot_change(trace, max_slots=setup.config.gpu.waves_per_cu),
        offset_bits_sweep(trace, offsets=offsets),
    )


# ======================================================================
# TABLE I


@dataclass
class Tab1Result:
    bytes_per_design: Dict[str, int]

    def render(self) -> str:
        return format_table(
            ["design", "bytes/instance"],
            sorted(self.bytes_per_design.items(), key=lambda kv: -kv[1]),
            title="TABLE I: predictor storage overhead (paper: PCSTALL 328 B)",
        )


def tab1_storage() -> Tab1Result:
    return Tab1Result({name: b.total_bytes for name, b in STORAGE_TABLE.items()})


# ======================================================================
# Oracle validation (Section 5.1)


@dataclass
class OracleValidationResult:
    accuracy: float

    def render(self) -> str:
        return (
            "Oracle fork-and-pre-execute validation (paper: 97.6%): "
            f"{self.accuracy:.1%}"
        )


def oracle_validation(
    setup: ExperimentSetup, app: str = "comd", probes: int = 5
) -> OracleValidationResult:
    cfg = setup.config
    kernels = build_workload(workload(app), scale=setup.scale)
    gpu = Gpu(cfg.gpu, cfg.dvfs.reference_freq_ghz)
    pending = list(kernels)
    gpu.load_kernel(pending.pop(0))
    sampler = OracleSampler(cfg)
    accs = []
    chosen = [cfg.dvfs.reference_freq_ghz] * cfg.gpu.n_domains
    for i in range(probes * 4):
        if gpu.done:
            if not pending:
                break
            gpu.load_kernel(pending.pop(0))
        if i % 4 == 2:  # probe a few epochs spread over the run
            accs.append(sampler.validation_accuracy(gpu, chosen))
        gpu.run_epoch(cfg.dvfs.epoch_ns)
    return OracleValidationResult(sum(accs) / len(accs) if accs else 0.0)


# ======================================================================
# Figures 14 / 15 / 16: the design-comparison core


EVAL_DESIGNS = ("STALL", "LEAD", "CRIT", "CRISP", "ACCREAC", "PCSTALL", "ACCPC", "ORACLE")


@dataclass
class DesignMatrixResult:
    """Per-workload, per-design run results (shared by figs 14-16)."""

    runs: Dict[str, Dict[str, RunResult]]  # workload -> design -> run
    baseline: Dict[str, RunResult]  # workload -> static reference run

    def accuracy(self, design: str) -> float:
        vals = [
            r[design].prediction_accuracy
            for r in self.runs.values()
            if r[design].prediction_accuracy is not None
        ]
        return sum(vals) / len(vals) if vals else 0.0

    def normalized_ed2p(self, workload_name: str, design: str) -> float:
        return self.runs[workload_name][design].ed2p / self.baseline[workload_name].ed2p

    def geomean_ed2p(self, design: str) -> float:
        return geometric_mean(
            [self.normalized_ed2p(w, design) for w in self.runs]
        )

    def render_fig14(self) -> str:
        rows = [(d, self.accuracy(d)) for d in EVAL_DESIGNS if d in next(iter(self.runs.values()))]
        return format_table(
            ["design", "accuracy"], rows,
            title=(
                "Fig 14: prediction accuracy @1us (paper: CRISP~0.60, "
                "ACCREAC~0.63, PCSTALL~0.81, ACCPC~0.90)"
            ),
        )

    def render_fig15(self) -> str:
        designs = [d for d in EVAL_DESIGNS if d in next(iter(self.runs.values()))]
        headers = ["workload"] + designs
        rows = []
        for w in self.runs:
            rows.append([w] + [self.normalized_ed2p(w, d) for d in designs])
        rows.append(["GEOMEAN"] + [self.geomean_ed2p(d) for d in designs])
        return format_table(
            headers, rows,
            title="Fig 15: ED2P normalised to static 1.7 GHz @1us (lower is better)",
        )

    def render_fig16(self) -> str:
        grid = sorted(next(iter(self.runs.values()))["PCSTALL"].frequency_residency)
        headers = ["workload"] + [f"{f:.1f}" for f in grid]
        rows = []
        for w, designs in self.runs.items():
            res = designs["PCSTALL"].frequency_residency
            rows.append([w] + [res.get(f, 0.0) for f in grid])
        return format_table(
            headers, rows, precision=2,
            title="Fig 16: frequency residency under PCSTALL/ED2P @1us",
        )


def design_matrix(
    setup: ExperimentSetup,
    designs: Sequence[str] = EVAL_DESIGNS,
    objective: Optional[Objective] = None,
    progress: Optional[SweepInstrumentation] = None,
) -> DesignMatrixResult:
    """Run every design on every workload (the fig 14/15/16 data).

    All (workload x design) cells plus the static baselines fan out
    across ``setup.workers`` processes; results are reassembled in a
    deterministic order identical to a serial run.
    """
    wls = setup.workload_list()
    obj = objective or EDnPObjective(2)
    tasks = [_task(setup, name, "STATIC@1.7") for name in wls]
    cells = [
        _task(setup, name, design, objective=obj, collect_accuracy=True)
        for name in wls
        for design in designs
    ]
    results = setup.make_executor(progress).run(tasks + cells)

    baseline = dict(zip(wls, results[: len(wls)]))
    runs: Dict[str, Dict[str, RunResult]] = {name: {} for name in wls}
    for task, result in zip(cells, results[len(wls):]):
        runs[task.workload][task.design] = result
    return DesignMatrixResult(runs, baseline)


# ======================================================================
# Figures 1a / 17: trends vs epoch duration


@dataclass
class EpochTrendResult:
    """Normalised geomean metric per design per epoch duration."""

    metric_name: str
    values: Dict[float, Dict[str, float]]  # epoch_ns -> design -> value
    accuracies: Dict[float, Dict[str, float]]

    def render(self) -> str:
        durations = sorted(self.values)
        designs = list(next(iter(self.values.values())))
        headers = ["design"] + [f"{d/1000:.0f}us" for d in durations]
        rows = [[des] + [self.values[d][des] for d in durations] for des in designs]
        a = format_table(
            headers, rows,
            title=f"Fig 1a/17: geomean {self.metric_name} vs epoch duration "
            "(normalised to static 1.7 GHz)",
        )
        rows_acc = [
            [des] + [self.accuracies[d].get(des, float("nan")) for d in durations]
            for des in designs if any(des in self.accuracies[d] for d in durations)
        ]
        b = format_table(
            headers, rows_acc,
            title="Fig 1b: prediction accuracy vs epoch duration",
        )
        return a + "\n\n" + b


def epoch_duration_trend(
    setup: ExperimentSetup,
    designs: Sequence[str] = ("CRISP", "ACCREAC", "PCSTALL", "ORACLE"),
    epoch_durations_ns: Sequence[float] = (1_000.0, 10_000.0, 50_000.0),
    n: int = 2,
    progress: Optional[SweepInstrumentation] = None,
) -> EpochTrendResult:
    """Shared driver for Figures 1(a), 1(b) and 17.

    ``n`` selects the metric: 2 = ED2P (fig 1a), 1 = EDP (fig 17).
    The whole (duration x workload x design) grid is submitted to the
    executor as one batch so it parallelises across every dimension.
    """
    wls = setup.workload_list()
    base_tasks: List[SweepTask] = []
    cell_tasks: List[SweepTask] = []
    for epoch_ns in epoch_durations_ns:
        cfg = _with_epoch(setup.config, epoch_ns)
        # Longer epochs need longer runs to see several decisions.
        scale = setup.scale * max(1.0, epoch_ns / 4000.0)
        for wname in wls:
            base_tasks.append(
                _task(setup, wname, "STATIC@1.7", config=cfg, scale=scale)
            )
            for d in designs:
                cell_tasks.append(
                    _task(
                        setup, wname, d, objective=EDnPObjective(n), config=cfg,
                        collect_accuracy=True, scale=scale,
                    )
                )
    results = setup.make_executor(progress).run(base_tasks + cell_tasks)
    base_results = results[: len(base_tasks)]
    cell_results = iter(results[len(base_tasks):])
    base_by_key = {
        (t.config.dvfs.epoch_ns, t.workload): r
        for t, r in zip(base_tasks, base_results)
    }

    values: Dict[float, Dict[str, float]] = {}
    accuracies: Dict[float, Dict[str, float]] = {}
    for epoch_ns in epoch_durations_ns:
        per_design: Dict[str, List[float]] = {d: [] for d in designs}
        per_acc: Dict[str, List[float]] = {d: [] for d in designs}
        for wname in wls:
            base = base_by_key[(epoch_ns, wname)]
            for d in designs:
                r = next(cell_results)
                per_design[d].append(r.ednp(n) / base.ednp(n))
                if r.prediction_accuracy is not None:
                    per_acc[d].append(r.prediction_accuracy)
        values[epoch_ns] = {d: geometric_mean(v) for d, v in per_design.items()}
        accuracies[epoch_ns] = {
            d: sum(v) / len(v) for d, v in per_acc.items() if v
        }
    name = "ED2P" if n == 2 else ("EDP" if n == 1 else f"ED{n}P")
    return EpochTrendResult(name, values, accuracies)


# ======================================================================
# Figure 18a: energy savings under performance caps


@dataclass
class Fig18aResult:
    savings: Dict[float, Dict[str, float]]  # cap -> design -> fraction saved
    degradation: Dict[float, Dict[str, float]]  # cap -> design -> slowdown

    def render(self) -> str:
        caps = sorted(self.savings)
        designs = list(next(iter(self.savings.values())))
        headers = ["design"] + [f"save@{c:.0%}" for c in caps] + [f"slow@{c:.0%}" for c in caps]
        rows = []
        for d in designs:
            rows.append(
                [d]
                + [self.savings[c][d] for c in caps]
                + [self.degradation[c][d] for c in caps]
            )
        return format_table(
            headers, rows,
            title=(
                "Fig 18a: energy savings under perf caps vs static 2.2 GHz "
                "(paper: PCSTALL 9.6%@5%, 19.9%@10%; CRISP 2.1%/4.7%)"
            ),
        )


def fig18a_energy_savings(
    setup: ExperimentSetup,
    designs: Sequence[str] = ("CRISP", "PCSTALL"),
    caps: Sequence[float] = (0.05, 0.10),
    progress: Optional[SweepInstrumentation] = None,
) -> Fig18aResult:
    wls = setup.workload_list()
    base_tasks = [_task(setup, w, f"STATIC@{setup.config.dvfs.f_max}") for w in wls]
    cells = [
        _task(setup, w, d, objective=PerformanceCapObjective(cap))
        for cap in caps
        for d in designs
        for w in wls
    ]
    results = setup.make_executor(progress).run(base_tasks + cells)
    base = dict(zip(wls, results[: len(wls)]))
    cell_results = iter(results[len(wls):])

    savings: Dict[float, Dict[str, float]] = {c: {} for c in caps}
    degradation: Dict[float, Dict[str, float]] = {c: {} for c in caps}
    for cap in caps:
        for d in designs:
            e_ratios, d_ratios = [], []
            for w in wls:
                r = next(cell_results)
                e_ratios.append(r.energy.total / base[w].energy.total)
                d_ratios.append(r.delay_ns / base[w].delay_ns)
            savings[cap][d] = 1.0 - geometric_mean(e_ratios)
            degradation[cap][d] = geometric_mean(d_ratios) - 1.0
    return Fig18aResult(savings, degradation)


# ======================================================================
# Figure 18b: V/f-domain granularity scaling


@dataclass
class Fig18bResult:
    ed2p: Dict[int, Dict[str, float]]  # cus_per_domain -> design -> norm ED2P

    def render(self) -> str:
        grans = sorted(self.ed2p)
        designs = list(next(iter(self.ed2p.values())))
        headers = ["design"] + [f"{g}CU" for g in grans]
        rows = [[d] + [self.ed2p[g][d] for g in grans] for d in designs]
        return format_table(
            headers, rows,
            title=(
                "Fig 18b: geomean ED2P vs V/f-domain granularity "
                "(opportunity shrinks as domains coarsen)"
            ),
        )


def fig18b_granularity(
    setup: ExperimentSetup,
    designs: Sequence[str] = ("CRISP", "PCSTALL", "ORACLE"),
    granularities: Optional[Sequence[int]] = None,
    progress: Optional[SweepInstrumentation] = None,
) -> Fig18bResult:
    n_cus = setup.config.gpu.n_cus
    if granularities is None:
        granularities = [g for g in (1, 2, 4, 8, 16, 32) if g <= n_cus]
    wls = setup.workload_list()
    configs = {
        g: replace(setup.config, gpu=replace(setup.config.gpu, cus_per_domain=g))
        for g in granularities
    }
    tasks = []
    for g in granularities:
        for w in wls:
            tasks.append(_task(setup, w, "STATIC@1.7", config=configs[g]))
            tasks.extend(_task(setup, w, d, config=configs[g]) for d in designs)
    results = iter(setup.make_executor(progress).run(tasks))

    out: Dict[int, Dict[str, float]] = {}
    for g in granularities:
        per_design: Dict[str, List[float]] = {d: [] for d in designs}
        for w in wls:
            base = next(results)
            for d in designs:
                per_design[d].append(next(results).ed2p / base.ed2p)
        out[g] = {d: geometric_mean(v) for d, v in per_design.items()}
    return Fig18bResult(out)


__all__ = [
    "ExperimentSetup",
    "QUICK_WORKLOADS",
    "EVAL_DESIGNS",
    "fig05_linearity",
    "fig06_profiles",
    "fig07_variability",
    "fig08_wavefront_contributions",
    "fig10_pc_repeatability",
    "fig11_contention_and_offsets",
    "tab1_storage",
    "oracle_validation",
    "design_matrix",
    "DesignMatrixResult",
    "epoch_duration_trend",
    "fig18a_energy_savings",
    "fig18b_granularity",
    "profile_workload",
]
