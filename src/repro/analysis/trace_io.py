"""Export/import of simulation traces (CSV and JSON).

Lets users post-process runs in pandas/matplotlib without re-simulating:

* :func:`run_result_to_dict` / :func:`save_run_json` - one DVFS run's
  summary (energy breakdown, residency, accuracy, ...).
* :func:`trace_to_rows` / :func:`save_trace_csv` - a
  :class:`~repro.analysis.phases.SensitivityTrace` as flat per-epoch
  (and per-wavefront) rows.
* :func:`load_trace_csv` - round-trip the per-epoch rows back.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.phases import SensitivityTrace
from repro.dvfs.simulation import RunResult
from repro.telemetry.schema import build_meta, check_meta

PathLike = Union[str, pathlib.Path]


def run_result_to_dict(
    result: RunResult, config: Optional[Any] = None, engine: Optional[str] = None
) -> Dict:
    """JSON-serialisable summary of one DVFS run.

    The ``meta`` block stamps the artifact with the package version,
    trace-schema version and (when ``config`` is given) the platform's
    content hash, so a loaded file can be checked against the code that
    reads it (see :func:`load_run_json`).
    """
    return {
        "meta": build_meta(config=config, **({"engine": engine} if engine else {})),
        "design": result.design,
        "workload": result.workload,
        "epochs": result.epochs,
        "completed": result.completed,
        "delay_ns": result.delay_ns,
        "energy": {
            "total": result.energy.total,
            "cu": result.energy.cu_dynamic_and_leakage,
            "memory": result.energy.memory,
            "transitions": result.energy.transitions,
        },
        "edp": result.edp,
        "ed2p": result.ed2p,
        "prediction_accuracy": result.prediction_accuracy,
        "pc_hit_ratio": result.pc_hit_ratio,
        "total_committed": result.total_committed,
        "total_transitions": result.total_transitions,
        "frequency_residency": {
            f"{f:.2f}": share for f, share in result.frequency_residency.items()
        },
        "hotpath": result.hotpath,
    }


def save_run_json(
    result: RunResult,
    path: PathLike,
    config: Optional[Any] = None,
    engine: Optional[str] = None,
) -> None:
    pathlib.Path(path).write_text(
        json.dumps(run_result_to_dict(result, config=config, engine=engine), indent=2)
    )


def load_run_json(path: PathLike, strict: bool = False) -> Dict:
    """Load a run summary; with ``strict`` verify its ``meta`` block.

    ``strict=True`` raises :class:`ValueError` when the file predates
    the meta block or was written by an incompatible schema version -
    the round-trip guard for artifacts that feed further tooling.
    """
    data = json.loads(pathlib.Path(path).read_text())
    if strict:
        check_meta(data.get("meta"))
    return data


# ----------------------------------------------------------------------

EPOCH_FIELDS = ("epoch", "level", "unit", "slope", "commits")


def trace_to_rows(trace: SensitivityTrace) -> List[Tuple]:
    """Flatten a sensitivity trace to (epoch, level, unit, slope, commits)."""
    rows: List[Tuple] = []
    for e in trace.epochs:
        for cu, slope in enumerate(e.cu_slopes):
            commits = e.cu_commits[cu] if cu < len(e.cu_commits) else ""
            rows.append((e.index, "cu", cu, slope, commits))
        for d, slope in enumerate(e.domain_slopes):
            rows.append((e.index, "domain", d, slope, ""))
        for w in e.waves:
            rows.append((e.index, "wf", w.wf_id, w.slope, w.committed))
    return rows


def save_trace_csv(trace: SensitivityTrace, path: PathLike) -> None:
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(EPOCH_FIELDS)
        writer.writerows(trace_to_rows(trace))


def load_trace_csv(path: PathLike) -> List[Dict]:
    """Rows back as dicts (numbers parsed)."""
    out: List[Dict] = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            out.append(
                {
                    "epoch": int(row["epoch"]),
                    "level": row["level"],
                    "unit": int(row["unit"]),
                    "slope": float(row["slope"]),
                    "commits": int(row["commits"]) if row["commits"] else None,
                }
            )
    return out


__all__ = [
    "run_result_to_dict",
    "save_run_json",
    "load_run_json",
    "trace_to_rows",
    "save_trace_csv",
    "load_trace_csv",
]
