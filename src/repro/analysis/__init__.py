"""Analysis & experiment drivers for every table/figure of the paper."""

from repro.analysis.phases import (
    SensitivityTrace,
    profile_sensitivity,
    consecutive_epoch_change,
    same_pc_iteration_change,
    wavefront_slot_change,
    offset_bits_sweep,
)
from repro.analysis.linearity import linearity_study, LinearityResult
from repro.analysis.report import format_table, format_series, geometric_mean
from repro.analysis.experiments import (
    ExperimentSetup,
    QUICK_WORKLOADS,
    EVAL_DESIGNS,
    design_matrix,
    epoch_duration_trend,
)

__all__ = [
    "SensitivityTrace",
    "profile_sensitivity",
    "consecutive_epoch_change",
    "same_pc_iteration_change",
    "wavefront_slot_change",
    "offset_bits_sweep",
    "linearity_study",
    "LinearityResult",
    "format_table",
    "format_series",
    "geometric_mean",
    "ExperimentSetup",
    "QUICK_WORKLOADS",
    "EVAL_DESIGNS",
    "design_matrix",
    "epoch_duration_trend",
]
