"""Figure 5: instructions-vs-frequency linearity of fine-grain epochs.

Samples unique time epochs of a workload, replays each from the same
snapshot at every frequency on (and slightly beyond) the DVFS grid, and
fits a line per epoch. The paper reports a mean R-squared of 0.82 across
workloads, justifying the linear sensitivity model of Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.config import SimConfig
from repro.core.sensitivity import LinearFit, fit_linear
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel


@dataclass(frozen=True)
class EpochLinearity:
    """One sampled epoch: commits at each frequency plus its line fit."""

    epoch_index: int
    cu_id: int
    points: Tuple[Tuple[float, int], ...]
    fit: LinearFit

    @property
    def slope(self) -> float:
        return self.fit.model.slope

    @property
    def r_squared(self) -> float:
        return self.fit.r_squared

    @property
    def effective_r_squared(self) -> float:
        """R^2 with flat epochs counted as perfectly linear.

        A memory-bound epoch whose commits barely react to frequency is
        explained *perfectly* by the linear model (slope ~ 0); raw R^2
        would punish it for measurement noise around the flat line.
        An epoch counts as flat when the full-range commit swing is
        below 5% of its mean commits.
        """
        commits = [c for _f, c in self.points]
        mean_c = sum(commits) / len(commits) if commits else 0.0
        f_lo, f_hi = self.points[0][0], self.points[-1][0]
        swing = abs(self.slope) * (f_hi - f_lo)
        if mean_c > 0 and swing < 0.05 * mean_c:
            return 1.0
        return self.fit.r_squared


@dataclass(frozen=True)
class LinearityResult:
    """All sampled epochs of a linearity study."""

    workload: str
    epochs: Tuple[EpochLinearity, ...]

    @property
    def mean_r_squared(self) -> float:
        vals = [e.effective_r_squared for e in self.epochs]
        return sum(vals) / len(vals) if vals else 0.0


def linearity_study(
    kernels: Sequence[Kernel],
    config: SimConfig,
    sample_epochs: Sequence[int] = (2, 5, 9, 14, 20),
    cu_id: int = 0,
    extra_freqs_ghz: Sequence[float] = (),
    max_epochs: int = 64,
) -> LinearityResult:
    """Replay selected epochs at every frequency, uniform across domains.

    Unlike the shuffled oracle, Figure 5 plots a *single CU's* commits
    against its own frequency, so every domain runs the same frequency
    in each replay.
    """
    gpu = Gpu(config.gpu, initial_freq_ghz=config.dvfs.reference_freq_ghz)
    pending = list(kernels)
    gpu.load_kernel(pending.pop(0))
    epoch_ns = config.dvfs.epoch_ns
    freqs = sorted(set(config.dvfs.frequencies_ghz) | set(extra_freqs_ghz))
    wanted = set(sample_epochs)
    out: List[EpochLinearity] = []

    for idx in range(max_epochs):
        if gpu.done:
            if not pending:
                break
            gpu.load_kernel(pending.pop(0))
        if idx in wanted:
            points: List[Tuple[float, int]] = []
            for f in freqs:
                child = gpu.clone()
                child.set_domain_frequencies([f] * len(child.domains), 0.0)
                result = child.run_epoch(epoch_ns)
                points.append((f, result.cu_stats[cu_id].committed))
            fit = fit_linear([p[0] for p in points], [p[1] for p in points])
            out.append(EpochLinearity(idx, cu_id, tuple(points), fit))
        gpu.run_epoch(epoch_ns)

    name = kernels[0].name if kernels else "unknown"
    return LinearityResult(name, tuple(out))


__all__ = ["EpochLinearity", "LinearityResult", "linearity_study"]
