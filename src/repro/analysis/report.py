"""Plain-text rendering of experiment results (tables and series).

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Number = Union[int, float]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    series: Mapping[object, Number], precision: int = 3, title: str = "",
    key_header: str = "x", value_header: str = "y",
) -> str:
    """Render an x->y mapping as a two-column table."""
    rows = [(k, v) for k, v in series.items()]
    return format_table([key_header, value_header], rows, precision, title)


_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(series: Sequence[float], width: int = 60) -> str:
    """Render a series as a one-line ASCII intensity profile.

    Used for sensitivity-over-time displays (Figure 6-style) in the CLI
    and examples; values are scaled to the series maximum.
    """
    if not series:
        return ""
    cells = list(series[:width])
    top = max(max(cells), 1e-12)
    return "".join(
        _SPARK_GLYPHS[min(len(_SPARK_GLYPHS) - 1, int((len(_SPARK_GLYPHS) - 1) * max(v, 0.0) / top))]
        for v in cells
    )


def bar_chart(series: Mapping[object, float], width: int = 40, precision: int = 3) -> str:
    """Render a mapping as labelled horizontal ASCII bars."""
    if not series:
        return ""
    top = max(max(series.values()), 1e-12)
    label_w = max(len(str(k)) for k in series)
    lines = []
    for k, v in series.items():
        bar = "#" * int(round(width * max(v, 0.0) / top))
        lines.append(f"{str(k).ljust(label_w)}  {v:.{precision}f}  {bar}")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean of positive values (paper's cross-workload summaries)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


__all__ = ["format_table", "format_series", "geometric_mean", "sparkline", "bar_chart"]
