"""Fine-grain phase-behaviour studies (Sections 3.3 and 4.3).

These drivers run a workload at a fixed reference frequency while the
fork-and-pre-execute oracle measures the *true* sensitivity of every
epoch - at domain, CU, and wavefront granularity. The resulting
:class:`SensitivityTrace` feeds:

* Figure 6  - sensitivity-over-time profiles,
* Figure 7  - relative sensitivity change across consecutive epochs,
* Figure 8  - per-wavefront contribution to CU sensitivity,
* Figure 10 - change across same-starting-PC iterations,
* Figure 11a - per-wavefront-slot contention profile,
* Figure 11b - PC-table index offset-bit sweep.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.sensitivity import fit_linear, weighted_relative_change
from repro.dvfs.oracle import OracleSampler
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel


@dataclass(frozen=True)
class WaveObservation:
    """True sensitivity of one wavefront over one epoch."""

    wf_id: int
    cu_id: int
    age_rank: int
    start_pc_idx: int
    slope: float
    committed: int


@dataclass(frozen=True)
class EpochObservation:
    """True sensitivities of one epoch at every granularity."""

    index: int
    domain_slopes: Tuple[float, ...]
    cu_slopes: Tuple[float, ...]
    waves: Tuple[WaveObservation, ...]
    #: Commits of each CU in the actually-executed epoch (sets the scale
    #: against which a sensitivity change is meaningful).
    cu_commits: Tuple[int, ...] = ()

    @property
    def gpu_slope(self) -> float:
        return sum(self.cu_slopes)


@dataclass
class SensitivityTrace:
    """Chronological record of a profiled run."""

    workload: str
    config: SimConfig
    epochs: List[EpochObservation] = field(default_factory=list)

    def domain_series(self, domain: int) -> List[float]:
        return [e.domain_slopes[domain] for e in self.epochs]

    def cu_series(self, cu_id: int) -> List[float]:
        return [e.cu_slopes[cu_id] for e in self.epochs]

    def gpu_series(self) -> List[float]:
        return [e.gpu_slope for e in self.epochs]

    def cu_slope_floor(self, fraction: float = 0.05) -> float:
        """Smallest meaningful CU-level sensitivity for this trace.

        A CU committing I instructions per epoch at f_ref could at most
        exhibit a slope around I/f_ref; slopes below ``fraction`` of
        that are in the measurement-noise regime.
        """
        commits = [c for e in self.epochs for c in e.cu_commits]
        if not commits:
            return 0.0
        mean_c = sum(commits) / len(commits)
        return fraction * mean_c / self.config.dvfs.reference_freq_ghz

    def wave_slope_floor(self, fraction: float = 0.05) -> float:
        """Smallest meaningful per-wavefront sensitivity for this trace."""
        commits = [w.committed for e in self.epochs for w in e.waves]
        if not commits:
            return 0.0
        mean_c = sum(commits) / len(commits)
        return fraction * mean_c / self.config.dvfs.reference_freq_ghz


def profile_sensitivity(
    kernels: Sequence[Kernel],
    config: SimConfig,
    max_epochs: int = 60,
    epoch_ns: Optional[float] = None,
    workload_name: str = "",
) -> SensitivityTrace:
    """Run at the reference frequency, oracle-measuring every epoch.

    Each epoch is pre-executed once per frequency state (shuffled across
    domains); per-CU and per-wavefront commits from those samples give
    least-squares sensitivity slopes at every granularity.
    """
    epoch = epoch_ns if epoch_ns is not None else config.dvfs.epoch_ns
    gpu = Gpu(config.gpu, initial_freq_ghz=config.dvfs.reference_freq_ghz)
    pending = [k for k in kernels]
    gpu.load_kernel(pending.pop(0))
    sampler = OracleSampler(config)
    grid = config.dvfs.frequencies_ghz
    trace = SensitivityTrace(workload_name or kernels[0].name, config)

    for idx in range(max_epochs):
        if gpu.done:
            if not pending:
                break
            gpu.load_kernel(pending.pop(0))

        # Collect per-CU and per-wavefront points across the shuffled
        # pre-executions.
        cu_points: List[List[Tuple[float, int]]] = [[] for _ in range(config.gpu.n_cus)]
        wave_points: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
        domain_points: List[List[Tuple[float, int]]] = [
            [] for _ in range(config.gpu.n_domains)
        ]
        for s in range(len(grid)):
            child = gpu.clone()
            freqs = sampler._sample_freqs(s, len(gpu.domains))
            child.set_domain_frequencies(freqs, transition_latency_ns=0.0)
            result = child.run_epoch(epoch)
            for d, commits in enumerate(child.committed_per_domain(result)):
                domain_points[d].append((freqs[d], commits))
            for cu_id in range(config.gpu.n_cus):
                f = freqs[cu_id // config.gpu.cus_per_domain]
                cu_points[cu_id].append((f, result.cu_stats[cu_id].committed))
                for record in result.wave_records[cu_id]:
                    wave_points[record.wf_id].append((f, record.stats.committed))

        domain_slopes = tuple(
            fit_linear([p[0] for p in pts], [p[1] for p in pts]).model.slope
            for pts in domain_points
        )
        cu_slopes = tuple(
            fit_linear([p[0] for p in pts], [p[1] for p in pts]).model.slope
            for pts in cu_points
        )

        # Advance the real execution; its wave records give start PCs
        # and age ranks for the per-wavefront observations.
        result = gpu.run_epoch(epoch)
        waves: List[WaveObservation] = []
        for cu_id in range(config.gpu.n_cus):
            for record in result.wave_records[cu_id]:
                pts = wave_points.get(record.wf_id, [])
                if len(pts) < 3:
                    continue
                slope = fit_linear([p[0] for p in pts], [p[1] for p in pts]).model.slope
                waves.append(
                    WaveObservation(
                        wf_id=record.wf_id,
                        cu_id=cu_id,
                        age_rank=record.age_rank,
                        start_pc_idx=record.start_pc_idx,
                        slope=slope,
                        committed=record.stats.committed,
                    )
                )
        trace.epochs.append(
            EpochObservation(
                idx,
                domain_slopes,
                cu_slopes,
                tuple(waves),
                cu_commits=tuple(s.committed for s in result.cu_stats),
            )
        )
    return trace


# ----------------------------------------------------------------------
# Figure 7: consecutive-epoch variability


def consecutive_epoch_change(trace: SensitivityTrace, level: str = "cu") -> float:
    """Magnitude-weighted mean sensitivity change between consecutive
    epochs (Figure 7).

    ``level``: ``"cu"`` (paper's Figure 7 uses per-CU sensitivities),
    ``"domain"``, ``"wf"`` (per-wavefront), or ``"gpu"``.
    """
    cu_floor = trace.cu_slope_floor()
    if level == "gpu":
        n_cus = len(trace.epochs[0].cu_slopes) if trace.epochs else 1
        return weighted_relative_change([trace.gpu_series()], floor=cu_floor * n_cus)
    if level == "domain":
        n = len(trace.epochs[0].domain_slopes) if trace.epochs else 0
        per = trace.config.gpu.cus_per_domain
        return weighted_relative_change(
            (trace.domain_series(d) for d in range(n)), floor=cu_floor * per
        )
    if level == "cu":
        n = len(trace.epochs[0].cu_slopes) if trace.epochs else 0
        return weighted_relative_change(
            (trace.cu_series(c) for c in range(n)), floor=cu_floor
        )
    if level == "wf":
        per_wf: Dict[int, List[float]] = defaultdict(list)
        for epoch in trace.epochs:
            for w in epoch.waves:
                per_wf[w.wf_id].append(w.slope)
        return weighted_relative_change(per_wf.values(), floor=trace.wave_slope_floor())
    raise ValueError("level must be 'cu', 'domain', 'wf' or 'gpu'")


# ----------------------------------------------------------------------
# Figure 10 / 11b: same-PC iteration variability


def _pc_key(pc_idx: int, offset_bits: int, instruction_bytes: int) -> int:
    return (pc_idx * instruction_bytes) >> offset_bits


def same_pc_iteration_change(
    trace: SensitivityTrace,
    granularity: str = "wf",
    offset_bits: int = 4,
    min_occurrences: int = 2,
) -> float:
    """Mean relative change between consecutive epochs that *start at the
    same PC* within a sharing boundary (Figure 10).

    ``granularity``: ``"wf"`` - same wavefront; ``"cu"`` - any wavefront
    of the same CU; ``"gpu"`` - any wavefront anywhere (the paper's
    64CU series).
    """
    ibytes = trace.config.gpu.instruction_bytes
    series: Dict[Tuple, List[float]] = defaultdict(list)
    for epoch in trace.epochs:
        for w in epoch.waves:
            pc = _pc_key(w.start_pc_idx, offset_bits, ibytes)
            if granularity == "wf":
                key = (w.wf_id, pc)
            elif granularity == "cu":
                key = (w.cu_id, pc)
            elif granularity == "gpu":
                key = (pc,)
            else:
                raise ValueError("granularity must be 'wf', 'cu' or 'gpu'")
            series[key].append(w.slope)

    return weighted_relative_change(
        (vals for vals in series.values() if len(vals) >= min_occurrences),
        floor=trace.wave_slope_floor(),
    )


def offset_bits_sweep(
    trace: SensitivityTrace, offsets: Sequence[int] = (0, 2, 4, 6, 8, 10)
) -> Dict[int, float]:
    """Figure 11b: same-PC change at CU granularity vs index offset bits."""
    return {
        o: same_pc_iteration_change(trace, granularity="cu", offset_bits=o)
        for o in offsets
    }


# ----------------------------------------------------------------------
# Figure 11a: per-slot contention profile


def wavefront_slot_change(trace: SensitivityTrace, max_slots: int = 16) -> List[float]:
    """Mean same-PC sensitivity change per wavefront slot (age rank).

    The oldest slot (rank 0) should show the least change - it always
    wins scheduling arbitration - while younger slots absorb contention
    (Figure 11a).
    """
    ibytes = trace.config.gpu.instruction_bytes
    series: Dict[Tuple[int, int, int], List[float]] = defaultdict(list)
    for epoch in trace.epochs:
        for w in epoch.waves:
            if w.age_rank >= max_slots:
                continue
            pc = _pc_key(w.start_pc_idx, 4, ibytes)
            series[(w.age_rank, w.cu_id, pc)].append(w.slope)

    per_slot: Dict[int, List[List[float]]] = defaultdict(list)
    for (rank, _cu, _pc), vals in series.items():
        if len(vals) < 2:
            continue
        per_slot[rank].append(vals)
    floor = trace.wave_slope_floor()
    return [
        weighted_relative_change(per_slot.get(rank, []), floor=floor)
        for rank in range(max_slots)
    ]


# ----------------------------------------------------------------------
# Figure 8: wavefront contribution profile


def wavefront_contributions(
    trace: SensitivityTrace, cu_id: int = 0, max_slots: int = 8
) -> List[List[float]]:
    """Per-epoch sensitivity of each wavefront slot of one CU.

    Returns one series per slot rank (0..max_slots-1); the sum over
    slots approximates the CU's total sensitivity (Figure 8).
    """
    out: List[List[float]] = [[] for _ in range(max_slots)]
    for epoch in trace.epochs:
        by_rank = {w.age_rank: w.slope for w in epoch.waves if w.cu_id == cu_id}
        for rank in range(max_slots):
            out[rank].append(by_rank.get(rank, 0.0))
    return out


__all__ = [
    "WaveObservation",
    "EpochObservation",
    "SensitivityTrace",
    "profile_sensitivity",
    "consecutive_epoch_change",
    "same_pc_iteration_change",
    "offset_bits_sweep",
    "wavefront_slot_change",
    "wavefront_contributions",
]
