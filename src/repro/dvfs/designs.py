"""The DVFS design registry (TABLE III).

=========  ====================  =================
Name       Estimation model      Control mechanism
=========  ====================  =================
STALL      Stall model           Reactive
LEAD       Leading load          Reactive
CRIT       Critical path         Reactive
CRISP      CRISP GPU model       Reactive
ACCREAC    Accurate (oracle)     Reactive
PCSTALL    Stall - wavefront     PC-based
ACCPC      Accurate (oracle)     PC-based
ORACLE     Accurate (oracle)     Oracle
=========  ====================  =================

Plus the three static baselines at 1.3 / 1.7 / 2.2 GHz.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimConfig
from repro.core.controller import DvfsController
from repro.core.estimators import (
    CrispModel,
    CriticalPathModel,
    LeadingLoadModel,
    StallModel,
    WavefrontCritModel,
    WavefrontLeadModel,
    WavefrontStallModel,
)
from repro.core.objectives import EDnPObjective, Objective, StaticObjective
from repro.core.pc_table import PCTableConfig
from repro.core.predictors import (
    AccuratePCPredictor,
    AccurateReactivePredictor,
    OraclePredictor,
    PCBasedPredictor,
    PhaseHistoryPredictor,
    ReactivePredictor,
    StaticPredictor,
)

#: All dynamic designs evaluated in the paper, in TABLE III order.
DESIGN_NAMES = (
    "STALL",
    "LEAD",
    "CRIT",
    "CRISP",
    "ACCREAC",
    "PCSTALL",
    "ACCPC",
    "ORACLE",
)

#: Extension designs beyond TABLE III (see DESIGN.md Section 6):
#: HISTORY - the CPU-era global phase-history-table predictor [55, 57];
#: PCCRISP/PCLEAD/PCCRIT - the PC-based mechanism fed by alternative
#: estimators (the paper notes its predictor could be combined with any
#: estimation model and picked STALL for simplicity, Section 5.3);
#: LEARNED - a trained sensitivity model from the model registry
#: (:mod:`repro.learn`), addressed as ``LEARNED@<ref>``.
EXTENSION_DESIGNS = ("HISTORY", "PCCRISP", "PCLEAD", "PCCRIT", "LEARNED")


def static_design_name(f_ghz: float) -> str:
    return f"STATIC@{f_ghz:.1f}"


def learned_design_name(model_ref: str) -> str:
    """The design string that pins a specific registry model.

    Embedding the reference in the design name means the existing sweep
    cache keys, trace headers and replay opens all carry the model
    identity with zero extra plumbing.
    """
    return f"LEARNED@{model_ref}"


def make_controller(
    design: str,
    sim_config: SimConfig,
    objective: Optional[Objective] = None,
    table_config: Optional[PCTableConfig] = None,
    cus_per_table: int = 1,
    model_ref: Optional[str] = None,
) -> DvfsController:
    """Build the controller for a named design.

    Args:
        design: one of :data:`DESIGN_NAMES` / :data:`EXTENSION_DESIGNS`,
            ``"STATIC@<f>"``, or ``"LEARNED@<model-ref>"``.
        objective: frequency-selection objective; defaults to ED2P
            (the paper's headline metric). Ignored for static designs.
        table_config: PC table geometry for the PC-based designs.
        cus_per_table: PC-table sharing granularity.
        model_ref: default registry reference for a bare ``"LEARNED"``
            design (``repro serve --model``); a ``LEARNED@<ref>`` design
            always wins over this.
    """
    gpu_cfg = sim_config.gpu
    obj = objective or EDnPObjective(2)
    tbl = table_config or PCTableConfig(instruction_bytes=gpu_cfg.instruction_bytes)

    if design.startswith("STATIC@"):
        f = float(design.split("@", 1)[1])
        return DvfsController(
            StaticPredictor(gpu_cfg.n_domains), StaticObjective(f), sim_config
        )
    if design == "LEARNED" or design.startswith("LEARNED@"):
        # Lazy import: learn.evaluate reaches back into the design
        # registry via run_task, so a top-level import would cycle.
        from repro.learn.models import LearnedPredictor
        from repro.learn.registry import ModelResolutionError, load_model

        ref = design.split("@", 1)[1] if "@" in design else model_ref
        if not ref:
            raise ModelResolutionError(
                "LEARNED needs a model reference: use 'LEARNED@<ref>' or "
                "pass model_ref (repro serve --model <ref>)"
            )
        # A fresh model instance per controller: online-updatable models
        # mutate while serving, and sessions must not share state.
        return DvfsController(
            LearnedPredictor(load_model(ref), gpu_cfg), obj, sim_config
        )
    if design == "STALL":
        predictor = ReactivePredictor(StallModel(), gpu_cfg)
    elif design == "LEAD":
        predictor = ReactivePredictor(LeadingLoadModel(), gpu_cfg)
    elif design == "CRIT":
        predictor = ReactivePredictor(CriticalPathModel(), gpu_cfg)
    elif design == "CRISP":
        predictor = ReactivePredictor(CrispModel(), gpu_cfg)
    elif design == "ACCREAC":
        predictor = AccurateReactivePredictor(gpu_cfg)
    elif design == "PCSTALL":
        predictor = PCBasedPredictor(
            gpu_cfg,
            estimator=WavefrontStallModel(),
            table_config=tbl,
            cus_per_table=cus_per_table,
        )
    elif design == "ACCPC":
        predictor = AccuratePCPredictor(
            gpu_cfg,
            estimator=WavefrontStallModel(),
            table_config=tbl,
            cus_per_table=cus_per_table,
        )
    elif design == "ORACLE":
        predictor = OraclePredictor(gpu_cfg.n_domains)
    elif design == "HISTORY":
        predictor = PhaseHistoryPredictor(CrispModel(), gpu_cfg)
    elif design in ("PCCRISP", "PCLEAD", "PCCRIT"):
        estimator = {
            "PCCRISP": CrispModel,
            "PCLEAD": WavefrontLeadModel,
            "PCCRIT": WavefrontCritModel,
        }[design]()
        predictor = PCBasedPredictor(
            gpu_cfg,
            estimator=estimator,
            table_config=tbl,
            cus_per_table=cus_per_table,
        )
        predictor.name = design
    else:
        known = ", ".join(sorted(DESIGN_NAMES + EXTENSION_DESIGNS))
        raise ValueError(
            f"unknown design {design!r}; known: {known} "
            f"(plus STATIC@<f> and LEARNED@<model-ref>)"
        )
    return DvfsController(predictor, obj, sim_config)


__all__ = [
    "DESIGN_NAMES",
    "EXTENSION_DESIGNS",
    "learned_design_name",
    "make_controller",
    "static_design_name",
]
