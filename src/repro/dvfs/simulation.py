"""End-to-end DVFS simulation: workload x design -> energy/delay/accuracy.

Per epoch the loop is (Figure 3b):

1. If the design needs oracle truth (ORACLE / ACCREAC / ACCPC, or the
   caller asked for accuracy-vs-truth), run the fork-and-pre-execute
   sampler from the current snapshot.
2. The controller decides per-domain frequencies from its predictions.
3. Frequencies are applied (changed domains pay the transition latency)
   and the epoch executes for real.
4. Energy is accounted; prediction accuracy is scored against the
   actual commits; the controller observes the elapsed epoch.

Kernels of a multi-kernel workload are loaded back-to-back: when the GPU
drains, the next kernel is dispatched within the same run (e.g. lulesh's
27 kernels).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.config import SimConfig
from repro.core.controller import DvfsController
from repro.core.sensitivity import LinearSensitivity
from repro.dvfs.hierarchy import HierarchicalPowerManager
from repro.dvfs.oracle import OracleSample, OracleSampler
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel
from repro.power.energy import EnergyAccountant, EnergyBreakdown
from repro.power.model import PowerModel
from repro.runtime.profiling import collect_hotpath

if TYPE_CHECKING:  # telemetry/obs never import dvfs; the arrow points here
    from repro.obs import Tracer
    from repro.telemetry import EpochTraceRecorder


@dataclass
class RunResult:
    """Outcome of one workload x design simulation."""

    design: str
    workload: str
    epochs: int
    #: Wall-clock completion: when the last wavefront retired (ns).
    delay_ns: float
    energy: EnergyBreakdown
    #: Mean per-domain-epoch prediction accuracy in [0, 1]; None when the
    #: design made no scorable predictions (static baselines).
    prediction_accuracy: Optional[float]
    #: Fraction of (domain, epoch) decisions at each frequency (Fig. 16).
    frequency_residency: Dict[float, float]
    total_committed: int
    total_transitions: int
    #: PC-table hit ratio, when the design has tables.
    pc_hit_ratio: Optional[float] = None
    #: False when the run hit ``max_epochs`` with work still resident -
    #: its delay (and thus EDP/ED2P) covers only the simulated window
    #: and is not comparable against completed runs.
    completed: bool = True
    #: Hot-path profiler counters for the whole run (see
    #: :mod:`repro.runtime.profiling`); observational only.
    hotpath: Optional[Dict[str, int]] = None

    @property
    def edp(self) -> float:
        """``E * D`` with ``D`` the completion delay (one definition,
        shared with :meth:`EnergyBreakdown.edp` via the explicit-delay
        form)."""
        return self.energy.edp(self.delay_ns)

    @property
    def ed2p(self) -> float:
        return self.energy.ed2p(self.delay_ns)

    def ednp(self, n: int) -> float:
        return self.energy.ednp(n, self.delay_ns)


class DvfsSimulation:
    """Runs one workload under one DVFS design to completion."""

    def __init__(
        self,
        kernels: Sequence[Kernel],
        controller: DvfsController,
        sim_config: SimConfig,
        design_name: str = "",
        workload_name: str = "",
        collect_accuracy: bool = False,
        max_epochs: int = 5_000,
        oracle_sample_freqs: Optional[int] = None,
        oracle_workers: int = 1,
        power_manager: Optional["HierarchicalPowerManager"] = None,
        telemetry: Optional["EpochTraceRecorder"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if not kernels:
            raise ValueError("need at least one kernel")
        self.kernels = list(kernels)
        self.controller = controller
        self.config = sim_config
        self.design_name = design_name or controller.predictor.name
        self.workload_name = workload_name or self.kernels[0].name
        self.max_epochs = max_epochs
        predictor = controller.predictor
        self.needs_truth = (
            predictor.needs_elapsed_truth or predictor.needs_future_truth or collect_accuracy
        )
        self._oracle = (
            OracleSampler(
                sim_config,
                n_sample_freqs=oracle_sample_freqs,
                max_workers=oracle_workers,
            )
            if self.needs_truth
            else None
        )
        #: Optional millisecond-scale power manager (Section 5.4); fed
        #: the measured epoch power so it can narrow the V/f window.
        self.power_manager = power_manager
        #: Optional epoch trace recorder. When None (the default) the
        #: run pays one ``is None`` branch per epoch and allocates no
        #: telemetry objects - results are bit-identical to a run
        #: without the telemetry subsystem.
        self.telemetry = telemetry
        #: Optional span tracer (same zero-overhead discipline): spans
        #: only observe wall time, they never feed back into the run.
        self.tracer = tracer

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        cfg = self.config
        gpu = Gpu(cfg.gpu, initial_freq_ghz=cfg.dvfs.reference_freq_ghz)
        power = PowerModel(cfg.power)
        accountant = EnergyAccountant(cfg.gpu, power)

        pending = list(self.kernels)
        gpu.load_kernel(pending.pop(0))

        epoch_ns = cfg.dvfs.epoch_ns
        trans_ns = cfg.dvfs.transition_latency_ns
        predictor = self.controller.predictor

        accuracies: List[float] = []
        total_committed = 0
        total_transitions = 0
        epochs = 0
        tel = self.telemetry
        tr = self.tracer
        run_span = None
        if tr is not None:
            run_span = tr.start(
                "run", workload=self.workload_name, design=self.design_name
            )
        if tel is not None:
            tel.begin_run(
                workload=self.workload_name,
                design=self.design_name,
                sim_config=cfg,
                objective_name=getattr(self.controller.objective, "name", ""),
            )

        try:
            while epochs < self.max_epochs:
                if gpu.done:
                    if not pending:
                        break
                    gpu.load_kernel(pending.pop(0))

                epoch_span = None
                if tr is not None:
                    epoch_span = tr.start("epoch", parent=run_span, epoch=epochs)
                if tel is not None:
                    t_wall0 = time.perf_counter()
                    prev_freqs = self.controller.current_frequencies

                sample: Optional[OracleSample] = None
                if self._oracle is not None:
                    oracle_span = (
                        tr.start("oracle_sample", parent=epoch_span)
                        if tr is not None
                        else None
                    )
                    sample = self._oracle.sample(gpu, epoch_ns)
                    if oracle_span is not None:
                        tr.finish(oracle_span, domains=len(sample.lines))
                    if predictor.needs_future_truth:
                        predictor.set_future_truth(sample.lines)  # type: ignore[attr-defined]

                freqs = self.controller.decide()
                changed = gpu.set_domain_frequencies(freqs, transition_latency_ns=trans_ns)
                total_transitions += changed

                result = gpu.run_epoch(epoch_ns)
                epochs += 1
                total_committed += result.total_committed()
                epoch_energy = accountant.add_epoch(result)
                if self.power_manager is not None:
                    self.power_manager.observe_epoch(
                        accountant.power_trace[-1], result.duration_ns
                    )

                predictions = self.controller.last_predictions()
                actual_per_domain = gpu.committed_per_domain(result)
                for d, line in enumerate(predictions):
                    if line is None:
                        continue
                    actual = actual_per_domain[d]
                    predicted = line.predict(freqs[d])
                    if actual <= 0:
                        # A fully-stalled epoch. A predictor claiming
                        # commits here is maximally wrong and scores 0;
                        # only a matching zero prediction is unscorable
                        # (skipping *all* zero-commit epochs inflated
                        # prediction_accuracy).
                        if predicted > 0.0:
                            accuracies.append(0.0)
                        continue
                    accuracies.append(max(0.0, 1.0 - abs(predicted - actual) / actual))

                truth = sample.lines if (sample and predictor.needs_elapsed_truth) else None
                self.controller.observe(result, true_domain_lines=truth)

                if tel is not None:
                    oracle_freqs = None
                    if sample is not None:
                        # Score against the oracle: the frequency this
                        # objective would pick given the *true* line,
                        # from the same pre-decision state.
                        oracle_freqs = [
                            self.controller.choose_for(line, d, prev_freqs[d])
                            for d, line in enumerate(sample.lines)
                        ]
                    pc_cumulative = (
                        predictor.table_stats()  # type: ignore[attr-defined]
                        if hasattr(predictor, "table_stats")
                        else None
                    )
                    tel.record_epoch(
                        epoch_index=epochs - 1,
                        result=result,
                        chosen_freqs=freqs,
                        predictions=predictions,
                        actual_per_domain=actual_per_domain,
                        sample=sample,
                        oracle_freqs=oracle_freqs,
                        epoch_energy=epoch_energy,
                        pc_cumulative=pc_cumulative,
                        wall_s=time.perf_counter() - t_wall0,
                    )
                if epoch_span is not None:
                    tr.finish(
                        epoch_span,
                        committed=result.total_committed(),
                        transitions=changed,
                    )
        finally:
            # A raising kernel/predictor must not leak the oracle's
            # worker pool (its processes outlive the exception).
            if self._oracle is not None:
                self._oracle.close()
            if run_span is not None:
                tr.finish(run_span, epochs=epochs)

        hotpath = collect_hotpath(gpu, self._oracle)

        completed = gpu.done and not pending
        if completed:
            # The last epoch overshoots the final retirement, so wall-clock
            # delay is when the last wavefront retired, not gpu.time.
            delay = gpu.completion_time
            if delay <= 0.0:  # degenerate: nothing ever retired
                delay = gpu.time
        else:
            # Truncated at max_epochs: only the simulated window elapsed.
            delay = gpu.time
            warnings.warn(
                f"{self.workload_name}/{self.design_name}: run truncated at "
                f"max_epochs={self.max_epochs} with work still resident; "
                "delay/EDP cover only the simulated window "
                "(RunResult.completed=False)",
                RuntimeWarning,
                stacklevel=2,
            )

        hit_ratio = None
        if hasattr(predictor, "hit_ratio"):
            hit_ratio = predictor.hit_ratio()  # type: ignore[attr-defined]

        run_result = RunResult(
            design=self.design_name,
            workload=self.workload_name,
            epochs=epochs,
            delay_ns=delay,
            energy=accountant.breakdown,
            prediction_accuracy=(sum(accuracies) / len(accuracies)) if accuracies else None,
            frequency_residency=self.controller.log.frequency_residency(
                cfg.dvfs.frequencies_ghz
            ),
            total_committed=total_committed,
            total_transitions=total_transitions,
            pc_hit_ratio=hit_ratio,
            completed=completed,
            hotpath=hotpath,
        )
        if tel is not None:
            tel.end_run(run_result)
        return run_result


__all__ = ["DvfsSimulation", "RunResult"]
