"""The fork-and-pre-execute oracle methodology (Section 5.1, Figure 13).

Exhaustively measuring a fine-grain epoch at every combination of
per-domain frequencies is intractable (10^64 paths for 64 domains x 10
states). The paper's trick, reproduced here exactly:

1. *Fork*: snapshot the simulator at the epoch boundary
   (``Gpu.clone()`` - deterministic, so replays are exact).
2. *Pre-execute*: run one sample per frequency state. In sample ``s``,
   domain ``d`` runs at ``grid[(s + stride*d) % len(grid)]`` - the
   frequencies are *shuffled* across domains so that every domain sees
   every frequency once while its neighbours' frequencies vary, washing
   out inter-domain interference bias.
3. *Fit*: each domain now has one (frequency, commits) point per sample;
   a least-squares line through them is the domain's true sensitivity.
4. *Re-execute*: the caller rolls back to the snapshot and runs the
   epoch for real at whatever frequencies the policy under test picked.

``validation_accuracy`` reproduces the paper's 97.6% check: how close the
pre-executed commit counts are to a re-execution at the same frequencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.sensitivity import LinearFit, LinearSensitivity, fit_linear
from repro.gpu.gpu import Gpu


@dataclass(frozen=True)
class OracleSample:
    """True per-domain behaviour of one upcoming epoch."""

    #: Per domain: list of (frequency, commits) sample points.
    points: Tuple[Tuple[Tuple[float, int], ...], ...]
    #: Per domain: least-squares sensitivity line through the points.
    fits: Tuple[LinearFit, ...]

    @property
    def lines(self) -> List[LinearSensitivity]:
        return [f.model for f in self.fits]

    @property
    def r_squared(self) -> Tuple[float, ...]:
        """Per-domain goodness of the fitted truth lines (telemetry)."""
        return tuple(f.r_squared for f in self.fits)

    #: Frequency matching tolerance for :meth:`commits_at`. The V/f grid
    #: is 100 MHz-spaced (0.1 GHz), so 1 kHz absolute / 1e-9 relative
    #: slack absorbs round-tripping through unit conversion or grid
    #: regeneration without ever bridging two distinct grid points.
    FREQ_ABS_TOL_GHZ = 1e-6
    FREQ_REL_TOL = 1e-9

    def commits_at(self, domain: int, f_ghz: float) -> Optional[int]:
        """Exact pre-executed commits of a domain at a sampled frequency."""
        for f, commits in self.points[domain]:
            if math.isclose(
                f, f_ghz, rel_tol=self.FREQ_REL_TOL, abs_tol=self.FREQ_ABS_TOL_GHZ
            ):
                return commits
        return None

    def best_frequency(self, domain: int, score) -> float:
        """Frequency minimising ``score(f, commits)`` over exact samples."""
        best_f, best_cost = None, float("inf")
        for f, commits in self.points[domain]:
            cost = score(f, commits)
            if cost < best_cost:
                best_cost, best_f = cost, f
        assert best_f is not None
        return best_f


def _pre_execute_sample(child: Gpu, freqs: List[float], epoch_ns: float) -> List[int]:
    """Run one pre-execution sample (module-level so it pickles to workers).

    Pre-execution measures workload behaviour, not transition overhead,
    so the frequency switch is free here.
    """
    child.set_domain_frequencies(freqs, transition_latency_ns=0.0)
    # Only the domain commit totals are consumed, so skip the per-wave
    # record allocation in every forked pre-execution.
    result = child.run_epoch(epoch_ns, collect_waves=False)
    return child.committed_per_domain(result)


class OracleSampler:
    """Runs the fork-and-pre-execute sampling for one epoch."""

    def __init__(
        self,
        sim_config: SimConfig,
        shuffle_stride: int = 3,
        n_sample_freqs: Optional[int] = None,
        max_workers: int = 1,
    ) -> None:
        """
        Args:
            shuffle_stride: how frequencies rotate across domains between
                samples (coprime to the sample count for full coverage).
            n_sample_freqs: pre-execute only this many evenly-spaced
                frequencies instead of the whole grid (the fitted line
                still predicts every state). Cuts oracle cost for the
                big sweeps; None = full grid (paper's 10 processes).
            max_workers: pre-execute the sample grid across this many
                processes (the paper's "10 processes", Section 5.1).
                1 = in-process. Worth it only when each pre-execution is
                expensive (paper-scale GPUs / long epochs): every sample
                ships a snapshot of the GPU to a worker. Falls back to
                serial execution if the snapshot cannot be pickled or
                the pool cannot start.
        """
        self.config = sim_config
        self.max_workers = max(1, int(max_workers))
        self._pool = None
        #: Persistent scratch GPU reused by snapshot-based serial
        #: pre-execution (one allocation for the sampler's lifetime).
        self._scratch: Optional[Gpu] = None
        #: Number of :meth:`sample` calls (hot-path profiling).
        self.ctr_samples = 0
        #: Work done inside discarded pre-execution forks (reference
        #: engine's clone-per-sample path), absorbed before the clone is
        #: dropped so both engines account their oracle-side work.
        self.ctr_fork_cycles = 0
        self.ctr_fork_scans = 0
        self.ctr_fork_batched = 0
        self.ctr_fork_completions = 0
        full = sim_config.dvfs.frequencies_ghz
        if n_sample_freqs is None or n_sample_freqs >= len(full):
            self.sample_grid: Tuple[float, ...] = tuple(full)
        elif n_sample_freqs < 2:
            raise ValueError("need at least two sample frequencies")
        else:
            step = (len(full) - 1) / (n_sample_freqs - 1)
            idxs = sorted({int(round(i * step)) for i in range(n_sample_freqs)})
            self.sample_grid = tuple(full[i] for i in idxs)
        n = len(self.sample_grid)
        if n > 1 and shuffle_stride % n == 0:
            shuffle_stride += 1
        self.shuffle_stride = shuffle_stride

    def _sample_freqs(self, sample_idx: int, n_domains: int) -> List[float]:
        grid = self.sample_grid
        n = len(grid)
        return [grid[(sample_idx + self.shuffle_stride * d) % n] for d in range(n_domains)]

    def sample_plan(self, n_domains: int) -> List[List[float]]:
        """Per-sample frequency vectors (one row per pre-execution).

        The shuffled schedule :meth:`sample` pre-executes, exposed so
        external checkers (``repro check``'s oracle-fork differential)
        can replay the exact same plan through an independent fork path.
        """
        return [
            self._sample_freqs(s, n_domains) for s in range(len(self.sample_grid))
        ]

    # ------------------------------------------------------------------
    # Parallel pre-execution plumbing

    def _ensure_pool(self):
        if self._pool is None:
            import concurrent.futures

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
        return self._pool

    def close(self) -> None:
        """Shut down the pre-execution worker pool, if one was started."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _pre_execute_all(
        self, gpu: Gpu, epoch: float, all_freqs: List[List[float]]
    ) -> List[List[int]]:
        """Per-sample committed-per-domain counts, one row per sample."""
        if self.max_workers > 1 and len(all_freqs) > 1:
            try:
                pool = self._ensure_pool()
                futures = [
                    pool.submit(_pre_execute_sample, gpu.clone(), freqs, epoch)
                    for freqs in all_freqs
                ]
                return [f.result() for f in futures]
            except Exception:
                # Un-picklable snapshot or a broken/unavailable pool:
                # permanently demote this sampler to serial execution.
                self.close()
                self.max_workers = 1
        return self._pre_execute_serial(gpu, epoch, all_freqs)

    def _pre_execute_serial(
        self, gpu: Gpu, epoch: float, all_freqs: List[List[float]]
    ) -> List[List[int]]:
        """Serial fork loop: one snapshot, N cheap restores.

        Instead of deep-cloning the GPU for every sample, the epoch
        boundary is captured once (``Gpu.snapshot``) and replayed into a
        persistent scratch GPU per sample - identical results, a tiny
        fraction of the allocation. The reference engine keeps the
        original clone-per-sample loop so equivalence tests exercise the
        pre-change behaviour end to end.
        """
        if gpu.config.engine == "reference":  # keep the pre-change path
            rows = []
            for freqs in all_freqs:
                fork = gpu.clone()
                rows.append(_pre_execute_sample(fork, freqs, epoch))
                self._absorb_fork(fork)
            return rows
        snap = gpu.snapshot()
        scratch = self._scratch
        if scratch is None or scratch.config is not snap.config:
            if scratch is not None:  # keep the retired scratch's work visible
                self._absorb_fork(scratch)
            scratch = self._scratch = Gpu(snap.config)
        rows = []
        for freqs in all_freqs:
            scratch.restore(snap)
            rows.append(_pre_execute_sample(scratch, freqs, epoch))
        return rows

    def _absorb_fork(self, fork: Gpu) -> None:
        """Keep a discarded fork's hot-path work counters."""
        for cu in fork.cus:
            self.ctr_fork_cycles += cu.ctr_cycles
            self.ctr_fork_scans += cu.ctr_waves_scanned
            self.ctr_fork_batched += cu.ctr_batched
            self.ctr_fork_completions += cu.ctr_completions

    def sample(self, gpu: Gpu, epoch_ns: Optional[float] = None) -> OracleSample:
        """Pre-execute the upcoming epoch once per frequency state."""
        self.ctr_samples += 1
        epoch = epoch_ns if epoch_ns is not None else self.config.dvfs.epoch_ns
        grid = self.sample_grid
        n_domains = len(gpu.domains)
        per_domain: List[List[Tuple[float, int]]] = [[] for _ in range(n_domains)]

        all_freqs = [self._sample_freqs(s, n_domains) for s in range(len(grid))]
        for freqs, commits in zip(all_freqs, self._pre_execute_all(gpu, epoch, all_freqs)):
            for d in range(n_domains):
                per_domain[d].append((freqs[d], commits[d]))

        fits = []
        for d in range(n_domains):
            pts = sorted(per_domain[d])
            fits.append(fit_linear([p[0] for p in pts], [p[1] for p in pts]))
        return OracleSample(
            points=tuple(tuple(sorted(p)) for p in per_domain),
            fits=tuple(fits),
        )

    def validation_accuracy(
        self, gpu: Gpu, chosen_freqs: Sequence[float], epoch_ns: Optional[float] = None
    ) -> float:
        """Paper's methodology check (Section 5.1; they report 97.6%).

        Compares pre-executed per-domain commits - taken from the one
        shuffled sample where each domain happened to run at its chosen
        frequency - against a coherent re-execution where *all* domains
        run their chosen frequencies simultaneously.
        """
        epoch = epoch_ns if epoch_ns is not None else self.config.dvfs.epoch_ns
        sample = self.sample(gpu, epoch)
        replay = gpu.clone()
        replay.set_domain_frequencies(list(chosen_freqs), transition_latency_ns=0.0)
        result = replay.run_epoch(epoch)
        actual = replay.committed_per_domain(result)

        accs = []
        for d, f in enumerate(chosen_freqs):
            predicted = sample.commits_at(d, f)
            if predicted is None or actual[d] <= 0:
                continue
            accs.append(max(0.0, 1.0 - abs(predicted - actual[d]) / actual[d]))
        return sum(accs) / len(accs) if accs else 1.0


__all__ = ["OracleSampler", "OracleSample"]
