"""Hierarchical power management (Section 5.4).

The paper's hardware DVFS loop sits *under* a commercial, firmware-level
power manager operating at millisecond scales: the outer manager sets a
power objective, which manifests to the hardware loop as a restricted
frequency range (the paper's evaluations model this as the fixed
1.3-2.2 GHz window).

This module implements that outer loop so power-capped scenarios can be
studied end to end:

* :class:`HierarchicalPowerManager` - integrates measured power over a
  management interval and widens/narrows the allowed frequency window to
  keep average power under a budget.
* :class:`PowerManagedObjective` - wraps any per-epoch objective so its
  choices are confined to the manager's current window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.objectives import Objective, ObjectiveContext
from repro.core.sensitivity import LinearSensitivity


class HierarchicalPowerManager:
    """Millisecond-scale manager that caps average power via f_max.

    Operates on wall-clock intervals much longer than DVFS epochs.
    At each interval boundary it compares the interval's average power
    to the budget:

    * over budget  -> lower the allowed maximum frequency one step;
    * under budget by more than ``headroom`` -> raise it one step.

    The minimum frequency of the window never moves: the inner loop
    remains free to save energy.
    """

    def __init__(
        self,
        freq_grid: Sequence[float],
        power_budget: float,
        interval_ns: float = 100_000.0,
        headroom: float = 0.08,
    ) -> None:
        if not freq_grid:
            raise ValueError("need a frequency grid")
        if power_budget <= 0:
            raise ValueError("power budget must be positive")
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.grid: Tuple[float, ...] = tuple(freq_grid)
        self.power_budget = power_budget
        self.interval_ns = interval_ns
        self.headroom = headroom
        self._max_idx = len(self.grid) - 1
        self._energy_acc = 0.0
        self._time_acc = 0.0
        #: History of (time_ns, f_max) adjustments for inspection.
        self.adjustments: List[Tuple[float, float]] = []
        self._now = 0.0

    @property
    def f_max_allowed(self) -> float:
        return self.grid[self._max_idx]

    def allowed_grid(self) -> Tuple[float, ...]:
        """The frequency window the hardware loop may currently use."""
        return self.grid[: self._max_idx + 1]

    def observe_epoch(self, epoch_power: float, duration_ns: float) -> None:
        """Feed one elapsed DVFS epoch's average power."""
        self._energy_acc += epoch_power * duration_ns
        self._time_acc += duration_ns
        self._now += duration_ns
        if self._time_acc < self.interval_ns:
            return
        avg_power = self._energy_acc / self._time_acc
        if avg_power > self.power_budget and self._max_idx > 0:
            self._max_idx -= 1
            self.adjustments.append((self._now, self.f_max_allowed))
        elif (
            avg_power < self.power_budget * (1.0 - self.headroom)
            and self._max_idx < len(self.grid) - 1
        ):
            self._max_idx += 1
            self.adjustments.append((self._now, self.f_max_allowed))
        self._energy_acc = 0.0
        self._time_acc = 0.0


@dataclass
class PowerManagedObjective(Objective):
    """Confines an inner objective's choices to the manager's window."""

    inner: Objective
    manager: HierarchicalPowerManager

    def __post_init__(self) -> None:
        self.name = f"{self.inner.name}<=P"

    def choose(
        self,
        line: Optional[LinearSensitivity],
        freq_grid: Sequence[float],
        current_f: float,
        ctx: ObjectiveContext,
        domain: int = 0,
    ) -> float:
        window = [f for f in freq_grid if f <= self.manager.f_max_allowed]
        if not window:
            window = [freq_grid[0]]
        if current_f > window[-1]:
            current_f = window[-1]
        return self.inner.choose(line, window, current_f, ctx, domain)

    def observe_epoch(self, domain, measured_power, measured_commits):
        self.inner.observe_epoch(domain, measured_power, measured_commits)


__all__ = ["HierarchicalPowerManager", "PowerManagedObjective"]
