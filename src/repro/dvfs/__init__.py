"""DVFS orchestration: the fork-and-pre-execute oracle, the TABLE III
design registry, and the end-to-end epoch-driven simulation loop."""

from repro.dvfs.oracle import OracleSampler, OracleSample
from repro.dvfs.designs import (
    DESIGN_NAMES,
    EXTENSION_DESIGNS,
    make_controller,
    static_design_name,
)
from repro.dvfs.colocation import ColocationSimulation, ColocationResult, Tenant
from repro.dvfs.hierarchy import HierarchicalPowerManager, PowerManagedObjective
from repro.dvfs.simulation import DvfsSimulation, RunResult

__all__ = [
    "OracleSampler",
    "OracleSample",
    "DESIGN_NAMES",
    "EXTENSION_DESIGNS",
    "make_controller",
    "static_design_name",
    "HierarchicalPowerManager",
    "PowerManagedObjective",
    "ColocationSimulation",
    "ColocationResult",
    "Tenant",
    "DvfsSimulation",
    "RunResult",
]
