"""Multi-tenant co-location: different apps pinned to different CUs.

Datacenter GPUs are increasingly space-shared: one tenant's kernels run
on one group of CUs while another tenant occupies the rest. This is the
scenario where *per-CU* V/f domains (the fine spatial granularity the
paper's IVR technology enables, Section 2.1) pay off most visibly: a
compute tenant's CUs can run at 2+ GHz while a memory-bound neighbour's
CUs idle along at 1.3 GHz — impossible with one chip-wide domain.

:class:`ColocationSimulation` runs several :class:`Tenant` s to
completion under a single DVFS controller and reports both the combined
metrics and per-tenant completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.controller import DvfsController
from repro.dvfs.oracle import OracleSampler
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel
from repro.power.energy import EnergyAccountant, EnergyBreakdown
from repro.power.model import PowerModel


@dataclass
class Tenant:
    """One co-located application and the CUs it owns."""

    name: str
    kernels: Sequence[Kernel]
    cu_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError(f"tenant {self.name!r} needs at least one kernel")
        if not self.cu_ids:
            raise ValueError(f"tenant {self.name!r} needs at least one CU")


@dataclass
class ColocationResult:
    """Outcome of a co-located run."""

    design: str
    epochs: int
    energy: EnergyBreakdown
    delay_ns: float
    completion_ns: Dict[str, float]
    frequency_residency: Dict[float, float]

    @property
    def ed2p(self) -> float:
        return self.energy.ed2p(self.delay_ns)


class ColocationSimulation:
    """Runs several tenants concurrently under one DVFS controller."""

    def __init__(
        self,
        tenants: Sequence[Tenant],
        controller: DvfsController,
        sim_config: SimConfig,
        max_epochs: int = 5_000,
        oracle_sample_freqs: Optional[int] = None,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        owned: set = set()
        for t in tenants:
            overlap = owned & set(t.cu_ids)
            if overlap:
                raise ValueError(f"CUs {sorted(overlap)} assigned to two tenants")
            owned |= set(t.cu_ids)
        self.tenants = list(tenants)
        self.controller = controller
        self.config = sim_config
        self.max_epochs = max_epochs
        predictor = controller.predictor
        self._needs_truth = predictor.needs_elapsed_truth or predictor.needs_future_truth
        self._oracle = (
            OracleSampler(sim_config, n_sample_freqs=oracle_sample_freqs)
            if self._needs_truth
            else None
        )

    def _tenant_done(self, gpu: Gpu, tenant: Tenant) -> bool:
        return all(gpu.cus[c].idle for c in tenant.cu_ids)

    def run(self) -> ColocationResult:
        cfg = self.config
        gpu = Gpu(cfg.gpu, initial_freq_ghz=cfg.dvfs.reference_freq_ghz)
        accountant = EnergyAccountant(cfg.gpu, PowerModel(cfg.power))
        pending: Dict[str, List[Kernel]] = {}
        for t in self.tenants:
            queue = list(t.kernels)
            gpu.load_kernel(queue.pop(0), cu_ids=t.cu_ids)
            pending[t.name] = queue

        completion: Dict[str, float] = {}
        predictor = self.controller.predictor
        epochs = 0
        while epochs < self.max_epochs:
            for t in self.tenants:
                if t.name in completion:
                    continue
                if self._tenant_done(gpu, t):
                    if pending[t.name]:
                        gpu.load_kernel(pending[t.name].pop(0), cu_ids=t.cu_ids)
                    else:
                        completion[t.name] = max(
                            gpu.cus[c].last_retire_time for c in t.cu_ids
                        )
            if len(completion) == len(self.tenants):
                break

            sample = None
            if self._oracle is not None:
                sample = self._oracle.sample(gpu, cfg.dvfs.epoch_ns)
                if predictor.needs_future_truth:
                    predictor.set_future_truth(sample.lines)  # type: ignore[attr-defined]
            freqs = self.controller.decide()
            gpu.set_domain_frequencies(freqs, cfg.dvfs.transition_latency_ns)
            result = gpu.run_epoch(cfg.dvfs.epoch_ns)
            epochs += 1
            accountant.add_epoch(result)
            truth = sample.lines if (sample and predictor.needs_elapsed_truth) else None
            self.controller.observe(result, true_domain_lines=truth)

        delay = max(completion.values()) if completion else gpu.time
        return ColocationResult(
            design=predictor.name,
            epochs=epochs,
            energy=accountant.breakdown,
            delay_ns=delay,
            completion_ns=completion,
            frequency_residency=self.controller.log.frequency_residency(
                cfg.dvfs.frequencies_ghz
            ),
        )


__all__ = ["Tenant", "ColocationSimulation", "ColocationResult"]
