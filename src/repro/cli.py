"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      - run one workload under one design, print the summary.
* ``compare``  - run several designs on one workload, print a table.
* ``figure``   - regenerate a paper figure's sweep, with ``--workers``.
* ``suite``    - list the workload suite (TABLE II).
* ``designs``  - list the design registry (TABLE III + extensions).
* ``learn``    - the learned-predictor lab: ``learn extract`` turns
  observation traces into supervised datasets, ``learn train`` fits a
  ridge or online-RLS sensitivity model and stores it in the versioned
  model registry, ``learn eval`` replays a workload closed-loop with
  the trained model vs the hand-built baselines, ``learn list`` shows
  registry artifacts. Trained models serve live as the ``LEARNED``
  design (``repro serve --model <ref>``).
* ``profile``  - oracle-profile a workload's sensitivity trace (CSV
  export), or with ``--hotpath`` run one workload x design cell and
  print the timing engine's hot-path work counters (``--cprofile FILE``
  additionally captures a real profile; ``--engine reference`` runs the
  pre-event-engine loop for comparison).
* ``storage``  - print the TABLE I storage-overhead model.
* ``trace``    - run one workload x design with the epoch telemetry
  recorder attached: per-epoch decision table on stdout, optional
  ``--jsonl`` record stream and ``--perfetto`` Chrome-trace export
  (load the latter at https://ui.perfetto.dev).
* ``report``   - prediction-accuracy drill-down (``--accuracy``):
  error percentiles, decision confusion matrix vs the oracle, and
  per-PC error attribution, across workloads or from a saved
  ``--jsonl`` trace.
* ``serve``    - run the online DVFS decision service: sessions stream
  per-epoch observations over a length-prefixed JSON protocol and get
  per-domain frequency decisions back; ``/healthz`` + ``/metrics`` on
  a second port; SIGTERM/SIGINT drain gracefully. ``--trace-jsonl``
  streams connect/session/request/decision spans; ``--drift`` watches
  the shed rate online.
* ``metrics``  - render a metrics snapshot as Prometheus text
  exposition (format 0.0.4), from a saved JSON snapshot or scraped
  live via ``--url HOST:PORT``; ``--check`` re-parses the output
  through the exposition validator (the CI scrape gate).
* ``monitor``  - one summary line per interval: tail a span/epoch
  JSONL stream (``--follow``) or poll a live service's ``/metrics``
  (``--url``) and print counter deltas.
* ``replay``   - stream a trace recorded with ``trace --jsonl FILE
  --observations`` through a live server and verify every returned
  decision is bit-identical to the offline simulation's.
* ``check``    - differential validation pass: run a small workload x
  design matrix, audit every artifact against the physical invariants
  (energy conservation, monotone clocks, residency normalisation, ...)
  and cross-check the engine / sweep-parallelism / oracle-fork
  bit-exactness claims. Exits nonzero on any violation. ``--deep``
  widens the matrix; ``--json FILE`` saves the machine-readable report.
* ``bench``    - performance microbenchmarks of the simulator's hot
  paths (core engine loop, issue scan, oracle sampling, predictor
  update, end to end), emitting a versioned ``BENCH_*.json`` report
  (``--json FILE``) and optionally gating against a committed baseline
  (``--against FILE``, fail when instr/sec or the batched-issue ratio
  drops more than ``--gate`` below it).

Sweep commands (``run``/``compare``/``figure``) accept ``--workers N``
to fan cells across processes, and cache results on disk (disable with
``--no-cache``; relocate with ``--cache-dir``). Transient cell failures
are retried with deterministic backoff (``--retries N`` bounds the
attempts; ``--retries 1`` disables retrying). ``figure`` sweeps record a
crash-safe checkpoint manifest alongside the cache; after an interrupted
sweep, ``repro figure <name> --resume`` re-runs only the missing cells.
``--checkpoint FILE`` relocates the manifest (and enables it for
``run``/``compare``).

Global flags (before the subcommand): ``--log-level debug|info|
warning|error`` and ``--log-json`` configure the structured ``repro.*``
logger hierarchy (stderr; JSON lines with ``--log-json``).
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.config import small_config
from repro.core.objectives import EDnPObjective, PerformanceCapObjective
from repro.dvfs.designs import DESIGN_NAMES, EXTENSION_DESIGNS
from repro.runtime import (
    ResultCache,
    RetryPolicy,
    SweepCheckpoint,
    SweepExecutor,
    SweepInstrumentation,
    SweepTask,
    default_checkpoint_path,
)
from repro.runtime.cache import default_cache_dir
from repro.workloads import WORKLOADS, build_workload, workload, workload_names


def _objective(args):
    if args.objective.startswith("ed") and args.objective.endswith("p"):
        return EDnPObjective(int(args.objective[2:-1] or 1))
    if args.objective.startswith("cap"):
        return PerformanceCapObjective(float(args.objective[3:]) / 100.0)
    raise SystemExit(f"unknown objective {args.objective!r} (use ed1p/ed2p/capN)")


def _config(args):
    cfg = small_config(
        n_cus=args.cus,
        waves_per_cu=args.waves,
        epoch_ns=args.epoch_us * 1000.0,
        cus_per_domain=args.cus_per_domain,
    )
    engine = getattr(args, "engine", "event")
    if engine != cfg.gpu.engine:
        from dataclasses import replace

        cfg = replace(cfg, gpu=replace(cfg.gpu, engine=engine))
    return cfg


@contextlib.contextmanager
def _scoped_checkpoint(args, sweep: str, always: bool = False):
    """``_checkpoint`` as a context manager (closes the manifest)."""
    ckpt = _checkpoint(args, sweep, always)
    try:
        yield ckpt
    finally:
        if ckpt is not None:
            ckpt.close()


def _retry_policy(args) -> RetryPolicy:
    if args.retries < 1:
        raise SystemExit("--retries must be at least 1")
    return RetryPolicy(max_attempts=args.retries)


def _checkpoint(args, sweep: str, always: bool = False) -> Optional[SweepCheckpoint]:
    """Checkpoint manifest for a sweep command, or None.

    ``figure`` passes ``always=True`` so every cached sweep leaves a
    manifest behind (that is what makes an *unplanned* crash resumable);
    ``run``/``compare`` only checkpoint when asked via ``--resume`` or
    ``--checkpoint``.
    """
    wanted = always or args.resume or args.checkpoint
    if not wanted:
        return None
    if args.no_cache:
        if not (args.resume or args.checkpoint):
            return None  # figure --no-cache: nothing to resume from
        raise SystemExit(
            "--resume/--checkpoint need the result cache; drop --no-cache"
        )
    cache_dir = pathlib.Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    path = pathlib.Path(args.checkpoint) if args.checkpoint \
        else default_checkpoint_path(cache_dir, sweep)
    return SweepCheckpoint(path, sweep=sweep, resume=args.resume)


def _broker(args):
    """SweepBroker for ``--backend remote``, or None for local runs."""
    backend = getattr(args, "backend", "local")
    if backend != "remote":
        return None
    from repro.runtime.distributed import DEFAULT_BROKER_PORT, SweepBroker

    host, port = "127.0.0.1", DEFAULT_BROKER_PORT
    if args.listen:
        host, port = _host_port(args.listen, flag="--listen")
    return SweepBroker(host=host, port=port)


def _executor(
    args,
    progress: Optional[SweepInstrumentation] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> SweepExecutor:
    broker = _broker(args)
    return SweepExecutor(
        max_workers=args.workers,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        progress=progress or SweepInstrumentation(),
        retry=_retry_policy(args),
        checkpoint=checkpoint,
        backend="remote" if broker is not None else "local",
        broker=broker,
    )


def _sweep_task(args, design: str) -> SweepTask:
    return SweepTask(
        workload=args.workload,
        design=design,
        config=_config(args),
        scale=args.scale,
        max_epochs=args.max_epochs,
        oracle_sample_freqs=4,
        collect_accuracy=True,
        objective=_objective(args),
    )


def _run_one(args, design: str):
    return _executor(args).run_one(_sweep_task(args, design))


def _print_fault_summary(progress: SweepInstrumentation) -> None:
    """One line on retries/resume/failures, only when there is news."""
    if progress.retries or progress.resumed or progress.failures:
        print(
            f"\nfault tolerance: {progress.retries} retr"
            f"{'y' if progress.retries == 1 else 'ies'}, "
            f"{progress.resumed} cell(s) resumed from checkpoint, "
            f"{progress.failures} permanent failure(s)"
        )


def cmd_run(args) -> int:
    progress = SweepInstrumentation(name=f"run {args.workload}")
    with _scoped_checkpoint(args, f"run-{args.workload}") as ckpt:
        r = _executor(args, progress, ckpt).run_one(_sweep_task(args, args.design))
    rows = [
        ["epochs", r.epochs],
        ["completed", str(r.completed)],
        ["delay (us)", r.delay_ns / 1e3],
        ["energy", r.energy.total],
        ["EDP", r.edp],
        ["ED2P", r.ed2p],
        ["accuracy", r.prediction_accuracy if r.prediction_accuracy is not None else "-"],
        ["PC hit ratio", r.pc_hit_ratio if r.pc_hit_ratio is not None else "-"],
        ["transitions", r.total_transitions],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.workload} under {args.design}"))
    if args.json:
        from repro.analysis.trace_io import save_run_json

        save_run_json(r, args.json, config=_config(args))
        print(f"\nsummary written to {args.json}")
    _print_fault_summary(progress)
    return 0


def cmd_compare(args) -> int:
    designs = args.designs.split(",")
    progress = SweepInstrumentation(name=f"compare {args.workload}")
    with _scoped_checkpoint(args, f"compare-{args.workload}") as ckpt:
        results = _executor(args, progress, ckpt).run(
            [_sweep_task(args, d) for d in designs]
        )
    baseline = results[0]
    rows = []
    for d, r in zip(designs, results):
        rows.append([
            d, r.delay_ns / 1e3, r.energy.total, r.ed2p / baseline.ed2p,
            "-" if r.prediction_accuracy is None else f"{r.prediction_accuracy:.3f}",
        ])
    print(format_table(
        ["design", "delay (us)", "energy", f"ED2P vs {designs[0]}", "accuracy"],
        rows, title=f"{args.workload}: design comparison",
    ))
    if args.verbose:
        print()
        print(progress.summary())
    else:
        _print_fault_summary(progress)
    return 0


#: Figures the ``figure`` command can regenerate, with quick defaults.
FIGURE_NAMES = ("fig01", "fig14", "fig15", "fig16", "fig17", "fig18a", "fig18b")


def cmd_figure(args) -> int:
    from repro.analysis import experiments as ex

    workloads = tuple(args.workloads.split(",")) if args.workloads else ex.QUICK_WORKLOADS
    ckpt_cm = _scoped_checkpoint(args, f"figure-{args.figure}", always=True)
    with ckpt_cm as ckpt:
        setup = ex.ExperimentSetup(
            config=_config(args),
            workloads=workloads,
            scale=args.scale,
            max_epochs=args.max_epochs,
            oracle_sample_freqs=4,
            workers=args.workers,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            retry=_retry_policy(args),
            checkpoint=ckpt,
        )
        designs = tuple(args.designs.split(",")) if args.designs else None
        progress = SweepInstrumentation(
            name=f"figure {args.figure}", max_workers=args.workers
        )
        text = _figure_text(args, setup, designs, progress)

    print(text)
    print()
    print(progress.summary())
    return 0


def _figure_text(args, setup, designs, progress) -> str:
    from repro.analysis import experiments as ex

    if args.figure in ("fig14", "fig15", "fig16"):
        matrix = ex.design_matrix(
            setup, designs=designs or ex.EVAL_DESIGNS, progress=progress
        )
        text = {
            "fig14": matrix.render_fig14,
            "fig15": matrix.render_fig15,
            "fig16": matrix.render_fig16,
        }[args.figure]()
    elif args.figure in ("fig01", "fig17"):
        n = 2 if args.figure == "fig01" else 1
        trend = ex.epoch_duration_trend(
            setup, designs=designs or ("CRISP", "ACCREAC", "PCSTALL", "ORACLE"),
            n=n, progress=progress,
        )
        text = trend.render()
    elif args.figure == "fig18a":
        text = ex.fig18a_energy_savings(
            setup, designs=designs or ("CRISP", "PCSTALL"), progress=progress
        ).render()
    elif args.figure == "fig18b":
        text = ex.fig18b_granularity(
            setup, designs=designs or ("CRISP", "PCSTALL", "ORACLE"), progress=progress
        ).render()
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown figure {args.figure!r}")
    return text


def cmd_suite(_args) -> int:
    rows = [
        [name, spec.category, len(spec.kernels), spec.description]
        for name, spec in WORKLOADS.items()
    ]
    print(format_table(["workload", "category", "kernels", "description"], rows,
                       title="TABLE II workload suite"))
    return 0


def cmd_designs(_args) -> int:
    rows = [[d, "TABLE III"] for d in DESIGN_NAMES]
    rows += [[d, "extension"] for d in EXTENSION_DESIGNS]
    rows.append(["STATIC@<f>", "baseline (any grid frequency)"])
    rows.append(["LEARNED@<ref>", "trained model from the registry (repro learn)"])
    print(format_table(["design", "origin"], rows, title="Design registry"))
    return 0


def cmd_profile(args) -> int:
    from repro.runtime.profiling import maybe_cprofile

    with maybe_cprofile(args.cprofile):
        code = _profile_hotpath(args) if args.hotpath else _profile_sensitivity(args)
    if args.cprofile:
        print(f"\ncProfile stats written to {args.cprofile} "
              f"(inspect with: python -m pstats {args.cprofile})")
    return code


def _profile_hotpath(args) -> int:
    """Run one workload x design and print the engine's work counters."""
    from repro.runtime.executor import run_task
    from repro.runtime.profiling import format_hotpath

    result = run_task(_sweep_task(args, args.design))
    print(format_hotpath(
        result.hotpath or {},
        title=f"{args.workload} under {args.design}: hot-path counters "
              f"({args.engine} engine)",
    ))
    if args.json:
        import json

        from repro.telemetry import build_meta

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "meta": build_meta(_config(args)),
                    "workload": args.workload,
                    "design": args.design,
                    "engine": args.engine,
                    "hotpath": result.hotpath or {},
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        print(f"\nhot-path counters written to {args.json}")
    return 0


def _profile_sensitivity(args) -> int:
    from repro.analysis.phases import (
        consecutive_epoch_change,
        profile_sensitivity,
        same_pc_iteration_change,
    )

    from repro.analysis.report import sparkline

    cfg = _config(args)
    kernels = build_workload(workload(args.workload), scale=args.scale)
    trace = profile_sensitivity(
        kernels, cfg, max_epochs=args.max_epochs, workload_name=args.workload
    )
    print(f"{args.workload}: per-CU sensitivity over time (dark = sensitive)")
    for cu in range(cfg.gpu.n_cus):
        print(f"  CU{cu}: |{sparkline(trace.cu_series(cu))}|")
    print()
    rows = [
        ["epochs profiled", len(trace.epochs)],
        ["consecutive change (CU)", consecutive_epoch_change(trace, "cu")],
        ["same-PC change (WF)", same_pc_iteration_change(trace, "wf")],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.workload} sensitivity profile"))
    if args.csv:
        from repro.analysis.trace_io import save_trace_csv

        save_trace_csv(trace, args.csv)
        print(f"\ntrace written to {args.csv}")
    return 0


def cmd_storage(_args) -> int:
    from repro.analysis.experiments import tab1_storage

    print(tab1_storage().render())
    return 0


def _recorder_for(args):
    """A recorder whose ring holds a whole run (1 epoch + n_domains
    records per epoch, plus headers/footers)."""
    from repro.telemetry import EpochTraceRecorder, TelemetryConfig

    observations = getattr(args, "observations", False)
    jsonl = getattr(args, "jsonl", None)
    if observations and not jsonl:
        raise SystemExit("--observations streams to disk only; add --jsonl FILE")
    n_domains = max(1, args.cus // args.cus_per_domain)
    ring = (args.max_epochs + 2) * (n_domains + 1)
    return EpochTraceRecorder(
        TelemetryConfig(
            ring_size=ring,
            jsonl_path=jsonl,
            record_observations=observations,
        )
    )


def cmd_trace(args) -> int:
    from repro.runtime.executor import run_task
    from repro.telemetry import save_perfetto_json

    tracer = None
    if args.spans:
        from repro.obs import Tracer

        tracer = Tracer(ring_size=0, jsonl_path=args.spans)
    drift = None
    with _recorder_for(args) as rec:
        if args.drift:
            from repro.obs import DriftConfig, DriftMonitor, get_logger

            drift = DriftMonitor(
                DriftConfig(),
                registry=rec.registry,
                tracer=tracer,
                log=get_logger("drift"),
            )
            rec.drift = drift
        try:
            result = run_task(
                _sweep_task(args, args.design), recorder=rec, tracer=tracer
            )
        finally:
            if tracer is not None:
                tracer.close()

    first = max(0, rec.epochs - args.epochs)
    rows = []
    for r in rec.domain_records():
        if r["epoch"] < first:
            continue
        rows.append([
            r["epoch"],
            r["domain"],
            f"{r['freq_ghz']:.2f}",
            "-" if r["pred_commits"] is None else f"{r['pred_commits']:.0f}",
            r["actual_commits"],
            "-" if r["rel_error"] is None else f"{r['rel_error']:.3f}",
            "-" if r["oracle_freq_ghz"] is None else f"{r['oracle_freq_ghz']:.2f}",
            {True: "x", False: ".", None: "-"}[r["mispredicted"]],
        ])
    print(format_table(
        ["epoch", "dom", "f (GHz)", "pred", "actual", "rel err", "oracle f", "miss"],
        rows,
        title=(
            f"{args.workload}/{args.design}: epoch decisions "
            f"(last {args.epochs} of {rec.epochs} epochs)"
        ),
    ))
    counters = rec.registry.counter_values("telemetry_")
    decisions = counters.get("telemetry_decisions", 0)
    missed = counters.get("telemetry_mispredictions", 0)
    print(
        f"\n{rec.epochs} epochs, {rec.total_records} records "
        f"({rec.dropped} dropped from ring), "
        f"{missed:.0f}/{decisions:.0f} decisions off oracle-best; "
        f"run: delay {result.delay_ns / 1e3:.1f} us, "
        f"energy {result.energy.total:.3f}"
    )
    if args.jsonl:
        print(f"epoch records streamed to {args.jsonl}")
    if args.spans:
        print(f"{tracer.total_spans} spans streamed to {args.spans}")
    if drift is not None:
        if drift.alerts:
            print(f"drift: {drift.alert_count} alert(s)")
            for alert in drift.alerts:
                print(f"  {alert.render()}")
        else:
            print("drift: no alerts")
    if args.perfetto:
        records = list(rec.records)
        if tracer is not None:
            records.extend(tracer.records)
        n = save_perfetto_json(records, args.perfetto)
        print(f"Perfetto trace ({n} events) written to {args.perfetto} "
              f"(load at https://ui.perfetto.dev)")
    return 0


def cmd_report(args) -> int:
    from repro.telemetry import AccuracyReport

    if not args.accuracy:
        raise SystemExit("repro report: only --accuracy is available; pass it")

    reports: List[AccuracyReport] = []
    if args.jsonl:
        from repro.telemetry import load_trace_jsonl

        reports.append(AccuracyReport.from_records(load_trace_jsonl(args.jsonl)))
    else:
        from repro.runtime.executor import run_task

        for w in args.workloads.split(","):
            args.workload = w
            with _recorder_for(args) as rec:
                run_task(_sweep_task(args, args.design), recorder=rec)
            reports.append(
                AccuracyReport.from_recorder(rec, label=f"{w}/{args.design}")
            )

    rows = []
    for rep in reports:
        pct = rep.error_percentiles()
        rows.append([
            rep.label, rep.epochs, rep.domain_records,
            f"{pct['p50']:.3f}", f"{pct['p90']:.3f}", f"{pct['p99']:.3f}",
            f"{pct['mean']:.3f}", f"{rep.agreement:.1%}",
        ])
    print(format_table(
        ["run", "epochs", "records", "p50", "p90", "p99", "mean", "oracle agr."],
        rows, title="prediction relative error (|pred - actual| / actual)",
    ))

    merged = reports[0]
    for rep in reports[1:]:
        merged = merged.merge(rep)
    if len(reports) > 1:
        merged.label = f"{args.workloads} x {args.design}"
    print()
    print(merged.render_confusion())
    print()
    print(merged.render_top_pcs(args.top))
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service.server import DecisionService, ServiceConfig
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    tracer = None
    if args.trace_jsonl:
        from repro.obs import Tracer

        tracer = Tracer(jsonl_path=args.trace_jsonl, registry=registry)
    drift = None
    if args.drift:
        from repro.obs import DriftConfig, DriftMonitor, get_logger

        drift = DriftMonitor(
            DriftConfig(),
            registry=registry,
            tracer=tracer,
            log=get_logger("drift"),
        )
    if args.model_dir:
        # The LEARNED design resolves models through the default
        # registry; scope this process to the requested directory.
        import os

        from repro.learn.registry import MODEL_DIR_ENV

        os.environ[MODEL_DIR_ENV] = args.model_dir
    service = DecisionService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            health_port=None if args.health_port < 0 else args.health_port,
            max_sessions=args.max_sessions,
            max_inflight=args.max_inflight,
            batch_max=args.batch_max,
            drain_timeout_s=args.drain_timeout,
            model_ref=args.model,
        ),
        registry=registry,
        tracer=tracer,
        drift=drift,
    )

    async def _serve() -> None:
        await service.start()
        where = f"{args.host}:{service.port}"
        health = ("" if service.health_port is None
                  else f", health on :{service.health_port}")
        print(f"decision service listening on {where}{health}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                sig, lambda: loop.create_task(service.shutdown())
            )
        await service.wait_closed()

    try:
        asyncio.run(_serve())
    finally:
        if tracer is not None:
            tracer.close()
    counters = service.registry.counter_values("service_")
    print(
        f"drained: {counters.get('service_sessions_opened', 0):.0f} session(s), "
        f"{counters.get('service_decisions', 0):.0f} decision(s), "
        f"{counters.get('service_shed', 0):.0f} shed",
        flush=True,
    )
    if tracer is not None:
        print(f"{tracer.total_spans} spans streamed to {args.trace_jsonl}",
              flush=True)
    if drift is not None:
        print(f"drift: {drift.alert_count} alert(s)", flush=True)
    return 0


def cmd_replay(args) -> int:
    from repro.runtime.executor import RetryPolicy
    from repro.service.replay import replay_trace

    report = replay_trace(
        args.trace,
        host=args.host,
        port=args.port,
        timeout_s=args.timeout,
        retry=RetryPolicy(
            max_attempts=args.retries,
            backoff_base_s=0.05,
            backoff_max_s=1.0,
            retryable=(ConnectionError, OSError),
            serial_final_attempt=False,
        ),
    )
    print(report.render())
    return 0 if report.bit_identical else 1


def cmd_worker(args) -> int:
    from repro.runtime.distributed import SweepWorker, WorkerError

    host, port = _host_port(args.connect, flag="--connect")
    worker = SweepWorker(
        host=host,
        port=port,
        name=args.name,
        timeout_s=args.timeout,
        connect_timeout_s=args.connect_timeout,
        max_tasks=args.max_tasks,
    )
    try:
        summary = worker.run()
    except WorkerError as exc:
        print(f"repro worker: {exc}", file=sys.stderr)
        return 1
    print(
        f"worker {worker.name}: {summary.completed} cell(s) computed, "
        f"{summary.failed} failed attempt(s), "
        f"{summary.rejected} late result(s) discarded"
    )
    return 0


def _host_port(spec: str, flag: str = "--url") -> tuple:
    """Parse ``HOST:PORT`` (an optional ``http://`` prefix is shed)."""
    spec = spec.split("//", 1)[-1].rstrip("/")
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"{flag} must be HOST:PORT, got {spec!r}")
    return host, int(port)


def cmd_metrics(args) -> int:
    from repro.obs import ExpositionError, parse_exposition, render_prometheus

    if bool(args.snapshot) == bool(args.url):
        raise SystemExit("repro metrics: pass exactly one of FILE or --url")

    if args.url:
        import http.client

        host, port = _host_port(args.url)
        conn = http.client.HTTPConnection(host, port, timeout=args.timeout)
        try:
            conn.request("GET", "/metrics?format=prometheus")
            response = conn.getresponse()
            text = response.read().decode("utf-8")
            if response.status != 200:
                raise SystemExit(
                    f"repro metrics: {args.url} answered {response.status}"
                )
        except OSError as exc:
            raise SystemExit(f"repro metrics: cannot scrape {args.url}: {exc}")
        finally:
            conn.close()
    else:
        import json

        try:
            with open(args.snapshot, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"repro metrics: cannot load {args.snapshot}: {exc}")
        # Accept a bare registry snapshot, a /metrics JSON body, or a
        # sweep-instrumentation dump (whose registry lives under "metrics").
        snapshot = payload if "counters" in payload \
            else payload.get("metrics", payload)
        labels = None
        meta = payload.get("meta")
        if isinstance(meta, dict) and "config_hash" in meta:
            labels = {
                "repro_version": str(meta.get("repro_version", "")),
                "config_hash": str(meta["config_hash"])[:12],
            }
        text = render_prometheus(snapshot, labels=labels)

    if args.check:
        try:
            samples = parse_exposition(text)
        except ExpositionError as exc:
            print(f"exposition INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"exposition OK ({len(samples)} samples)", file=sys.stderr)
    print(text, end="")
    return 0


def _monitor_file(args) -> int:
    import time

    from repro.obs import IntervalSummary, iter_jsonl, summarize_records

    with open(args.file, "r", encoding="utf-8") as fh:
        if not args.follow:
            summary = summarize_records(
                r for r in iter_jsonl(fh) if r is not None
            )
            print(summary.render())
            return 0
        summary = IntervalSummary()
        intervals = 0
        next_flush = time.monotonic() + args.interval
        for record in iter_jsonl(
            fh,
            follow=True,
            poll_s=min(0.2, args.interval),
            idle_limit_s=args.idle_limit,
        ):
            if record is not None:
                summary.add(record)
            if time.monotonic() < next_flush:
                continue
            print(summary.render(time.strftime("%H:%M:%S")), flush=True)
            summary = IntervalSummary()
            intervals += 1
            next_flush = time.monotonic() + args.interval
            if args.max_intervals is not None and intervals >= args.max_intervals:
                return 0
        if summary.records:  # idle limit hit: flush the remainder
            print(summary.render(time.strftime("%H:%M:%S")), flush=True)
    return 0


def _monitor_url(args) -> int:
    import time

    from repro.obs import diff_metrics, fetch_metrics

    host, port = _host_port(args.url)
    prev = None
    intervals = 0
    while True:
        try:
            cur = fetch_metrics(host, port)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro monitor: cannot scrape {args.url}: {exc}")
        print(f"[{time.strftime('%H:%M:%S')}] {diff_metrics(prev, cur)}",
              flush=True)
        prev = cur
        intervals += 1
        if args.max_intervals is not None and intervals >= args.max_intervals:
            return 0
        time.sleep(args.interval)


def cmd_monitor(args) -> int:
    if bool(args.file) == bool(args.url):
        raise SystemExit("repro monitor: pass exactly one of FILE or --url")
    return _monitor_url(args) if args.url else _monitor_file(args)


def cmd_check(args) -> int:
    from repro.validation import deep_check_config, quick_check_config, run_check

    cfg = deep_check_config() if args.deep else quick_check_config()
    if args.workloads:
        from dataclasses import replace as _replace

        cfg = _replace(cfg, workloads=tuple(args.workloads.split(",")))
    say = None if args.quiet else (lambda msg: print(f"  {msg}", flush=True))
    if not args.quiet:
        mode = "deep" if args.deep else "quick"
        print(f"repro check ({mode}): {', '.join(cfg.workloads)} "
              f"x {', '.join(cfg.designs)}", flush=True)
    report = run_check(cfg, log=say)
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
        print(f"\nvalidation report written to {args.json}")
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    from repro.bench import (
        compare_reports,
        load_bench_json,
        render_report,
        run_benchmarks,
        save_bench_json,
    )

    only = args.only.split(",") if args.only else None
    say = None if args.quiet else (lambda msg: print(msg, flush=True))
    if say:
        suite = "quick" if args.quick else "full"
        say(f"repro bench ({suite} suite, {args.engine} engine):")
    report = run_benchmarks(
        quick=args.quick,
        engine=args.engine,
        only=only,
        repeats=args.repeats,
        log=say,
    )
    print(render_report(report))
    if args.json:
        path = save_bench_json(report, args.json)
        print(f"\nbench report written to {path}")
    if args.against:
        baseline = load_bench_json(args.against)
        comparison = compare_reports(report, baseline, gate=args.gate)
        print()
        print(comparison.render())
        if not comparison.ok:
            names = {d.bench for d in comparison.regressions}
            print(f"\nFAIL: performance regression in {', '.join(sorted(names))}")
            return 1
    return 0


def cmd_learn_extract(args) -> int:
    from repro.learn import DatasetError, extract_dataset, save_dataset

    try:
        ds = extract_dataset(args.traces, eval_fraction=args.eval_fraction)
    except (DatasetError, OSError, ValueError) as exc:
        raise SystemExit(f"repro learn extract: {exc}")
    npz_path, sidecar_path = save_dataset(ds, args.output)
    rows = [
        ["rows", len(ds)],
        ["train rows", ds.n_train],
        ["eval rows", ds.n_eval],
        ["features", len(ds.meta["feature_names"])],
        ["traces", len(ds.meta["sources"])],
        ["dataset hash", str(ds.meta["dataset_hash"])[:16] + "..."],
    ]
    print(format_table(["field", "value"], rows,
                       title="extracted supervised dataset"))
    print(f"\narrays written to {npz_path}, sidecar to {sidecar_path}")
    return 0


def cmd_learn_train(args) -> int:
    from repro.learn import (
        DatasetError,
        ModelError,
        ModelRegistry,
        OnlineRLSModel,
        RidgeModel,
        load_dataset,
        offline_metrics,
    )

    try:
        ds = load_dataset(args.dataset)
    except DatasetError as exc:
        raise SystemExit(f"repro learn train: {exc}")
    train = ds.rows("train")
    try:
        if args.kind == "ridge":
            model = RidgeModel.train(
                ds.features[train], ds.labels[train],
                l2=args.l2, seed=args.seed,
            )
            hyper = {"l2": args.l2}
        else:
            # Anchor the oracle label lines at the platform's frequency
            # extremes so the slope is identified across the whole
            # actionable range (the recorded trace only visited the
            # frequencies its design chose); serving stays commits-only.
            anchors = ds.frequency_range()
            model = OnlineRLSModel.train(
                ds.features[train], ds.next_f[train],
                ds.next_commits[train],
                forgetting=args.forgetting, seed=args.seed,
                labels=ds.labels[train], anchor_freqs=anchors,
            )
            hyper = {"forgetting": args.forgetting,
                     "anchor_freqs": list(anchors)}
    except ModelError as exc:
        raise SystemExit(f"repro learn train: {exc}")
    provenance = {
        "dataset_hash": ds.meta.get("dataset_hash", ds.content_hash()),
        "dataset_sources": ds.meta.get("sources", []),
        "train": {
            "kind": args.kind,
            "seed": args.seed,
            "n_train": ds.n_train,
            "n_eval": ds.n_eval,
            "eval_fraction": ds.meta.get("eval_fraction"),
            **hyper,
        },
    }
    registry = ModelRegistry(args.model_dir)
    artifact_id = registry.save(model, provenance, name=args.name)

    rows = [["split", "rows", "rel p50", "rel p90", "rel mean"]]
    table = []
    for split in ("train", "eval"):
        if int(ds.rows(split).sum()) == 0:
            continue
        m = offline_metrics(model, ds, split=split)
        table.append([
            split, int(m["scored"]), f"{m['rel_p50']:.3f}",
            f"{m['rel_p90']:.3f}", f"{m['rel_mean']:.3f}",
        ])
    print(format_table(rows[0], table,
                       title=f"{args.kind} model: offline relative error"))
    named = f" (ref {args.name!r})" if args.name else ""
    print(f"\nartifact {artifact_id} saved to {registry.root}{named}")
    return 0


def cmd_learn_eval(args) -> int:
    from repro.learn import (
        DatasetError,
        ModelRegistry,
        ModelResolutionError,
        compare_designs,
        load_dataset,
    )

    registry = ModelRegistry(args.model_dir)
    try:
        model, document = registry.load(args.model)
    except ModelResolutionError as exc:
        raise SystemExit(f"repro learn eval: {exc}")
    dataset = None
    if args.dataset:
        try:
            dataset = load_dataset(args.dataset)
        except DatasetError as exc:
            raise SystemExit(f"repro learn eval: {exc}")
    report = compare_designs(
        model,
        args.workload,
        _config(args),
        baselines=tuple(args.baselines.split(",")),
        dataset=dataset,
        objective=_objective(args),
        scale=args.scale,
        max_epochs=args.max_epochs,
    )
    kind = document.get("model", {}).get("kind", "?")
    print(f"model {document['artifact_id'][:16]}... ({kind})")
    if report.offline is not None:
        m = report.offline
        print(
            f"held-out offline: rel err p50 {m['rel_p50']:.3f}, "
            f"p90 {m['rel_p90']:.3f}, mean {m['rel_mean']:.3f} "
            f"({int(m['scored'])} rows scored)"
        )
    print()
    print(report.render())
    if args.gate_baseline:
        learned = report.row("LEARNED")
        gate = report.row(args.gate_baseline)
        if gate is None:
            raise SystemExit(
                f"repro learn eval: --gate-baseline {args.gate_baseline!r} "
                f"was not among the evaluated designs"
            )
        # Gate on the metric the controller actually optimised: under
        # the default ED2P objective even ORACLE loses to a static
        # point on raw EDP, so an EDP gate would be unwinnable.
        metric = "ed2p" if args.objective == "ed2p" else "edp"
        learned_m = getattr(learned, metric)
        gate_m = getattr(gate, metric)
        label = metric.upper()
        if learned_m > gate_m:
            print(
                f"\nFAIL: LEARNED {label} {learned_m:.4e} is worse than "
                f"{args.gate_baseline} {label} {gate_m:.4e}"
            )
            return 1
        print(
            f"\nOK: LEARNED {label} {learned_m:.4e} beats "
            f"{args.gate_baseline} {label} {gate_m:.4e}"
        )
    return 0


def cmd_learn_list(args) -> int:
    from repro.learn import ModelRegistry

    registry = ModelRegistry(args.model_dir)
    artifacts = registry.list_artifacts()
    if not artifacts:
        print(f"no models in registry {registry.root}")
        return 0
    rows = [
        [
            a["artifact_id"][:16] + "...",
            a.get("kind") or "?",
            a.get("seed", "-"),
            (str(a.get("dataset_hash"))[:12] + "...") if a.get("dataset_hash") else "-",
            a.get("repro_version") or "-",
            ", ".join(a["refs"]) or "-",
        ]
        for a in artifacts
    ]
    print(format_table(
        ["artifact", "kind", "seed", "dataset", "version", "refs"],
        rows, title=f"model registry {registry.root}",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    p.add_argument("--version", action="version",
                   version=f"%(prog)s {__version__}")
    p.add_argument("--log-level", choices=("debug", "info", "warning", "error"),
                   default="warning",
                   help="stderr log verbosity for the repro.* loggers "
                        "(default %(default)s)")
    p.add_argument("--log-json", action="store_true",
                   help="emit log lines as JSON objects instead of text")
    sub = p.add_subparsers(dest="command", required=True)

    def platform(sp, workload_arg=True):
        if workload_arg:
            sp.add_argument("workload", choices=workload_names())
        sp.add_argument("--cus", type=int, default=4)
        sp.add_argument("--waves", type=int, default=8)
        sp.add_argument("--cus-per-domain", type=int, default=1)
        sp.add_argument("--epoch-us", type=float, default=1.0)
        sp.add_argument("--scale", type=float, default=0.4)
        sp.add_argument("--max-epochs", type=int, default=400)
        sp.add_argument("--objective", default="ed2p",
                        help="ed1p | ed2p | capN (N%% degradation cap)")

    def common(sp, workload_arg=True):
        platform(sp, workload_arg)
        runtime(sp)

    def runtime(sp):
        sp.add_argument("--workers", type=int, default=1,
                        help="processes to fan sweep cells across (default 1)")
        sp.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
        sp.add_argument("--cache-dir", default=None,
                        help="result cache directory (default .repro_cache "
                             "or $REPRO_CACHE_DIR)")
        sp.add_argument("--retries", type=int, default=RetryPolicy().max_attempts,
                        help="attempts per sweep cell before giving up "
                             "(1 = no retries; default %(default)s)")
        sp.add_argument("--resume", action="store_true",
                        help="skip cells already recorded in the sweep's "
                             "checkpoint manifest (requires the cache)")
        sp.add_argument("--checkpoint", metavar="FILE", default=None,
                        help="checkpoint manifest path (default: "
                             "<cache-dir>/checkpoints/<sweep>.manifest.jsonl)")
        sp.add_argument("--backend", choices=("local", "remote"), default="local",
                        help="where cells execute: this host's process pool "
                             "(local) or remote workers served by a broker "
                             "(remote; see 'repro worker')")
        sp.add_argument("--listen", metavar="HOST:PORT", default=None,
                        help="broker bind address for --backend remote "
                             "(default 127.0.0.1:8474)")

    sp = sub.add_parser("run", help="run one workload under one design")
    common(sp)
    sp.add_argument("--design", default="PCSTALL")
    sp.add_argument("--json", help="write the run summary to this JSON file")
    sp.set_defaults(fn=cmd_run)

    sp = sub.add_parser("compare", help="compare designs on one workload")
    common(sp)
    sp.add_argument("--designs", default="STATIC@1.7,CRISP,PCSTALL")
    sp.add_argument("--verbose", action="store_true",
                    help="also print the sweep instrumentation summary")
    sp.set_defaults(fn=cmd_compare)

    sp = sub.add_parser(
        "figure", help="regenerate a paper figure's sweep (parallel + cached)"
    )
    sp.add_argument("figure", choices=FIGURE_NAMES)
    sp.add_argument("--workloads", default=None,
                    help="comma-separated workload subset (default: quick five)")
    sp.add_argument("--designs", default=None,
                    help="comma-separated design subset (default: per figure)")
    sp.add_argument("--cus", type=int, default=4)
    sp.add_argument("--waves", type=int, default=8)
    sp.add_argument("--cus-per-domain", type=int, default=1)
    sp.add_argument("--epoch-us", type=float, default=1.0)
    sp.add_argument("--scale", type=float, default=0.3)
    sp.add_argument("--max-epochs", type=int, default=250)
    runtime(sp)
    sp.set_defaults(fn=cmd_figure)

    sp = sub.add_parser("suite", help="list the workload suite")
    sp.set_defaults(fn=cmd_suite)

    sp = sub.add_parser("designs", help="list the design registry")
    sp.set_defaults(fn=cmd_designs)

    sp = sub.add_parser(
        "learn",
        help="learned predictors: extract datasets from observation "
             "traces, train/evaluate sensitivity models, manage the "
             "model registry",
    )
    learn_sub = sp.add_subparsers(dest="learn_command", required=True)

    lp = learn_sub.add_parser(
        "extract",
        help="build a supervised dataset (.npz + .json sidecar) from "
             "observation traces (repro trace --jsonl F --observations)",
    )
    lp.add_argument("traces", nargs="+",
                    help="observation JSONL file(s) to extract from")
    lp.add_argument("-o", "--output", default="dataset",
                    help="output base path; writes <base>.npz and "
                         "<base>.json (default %(default)s)")
    lp.add_argument("--eval-fraction", type=float, default=0.25,
                    help="held-out fraction, split deterministically on "
                         "workload+config+seed+epoch (default %(default)s)")
    lp.set_defaults(fn=cmd_learn_extract)

    lp = learn_sub.add_parser(
        "train",
        help="train a sensitivity model on a dataset's train split and "
             "store it in the model registry",
    )
    lp.add_argument("dataset", help="dataset base path (from learn extract)")
    lp.add_argument("--kind", choices=("ridge", "rls"), default="rls",
                    help="ridge = offline closed form; rls = online "
                         "recursive least squares, keeps learning while "
                         "serving (default %(default)s)")
    lp.add_argument("--l2", type=float, default=1e-3,
                    help="ridge regularisation strength (default %(default)s)")
    lp.add_argument("--forgetting", type=float, default=0.98,
                    help="RLS exponential forgetting factor "
                         "(default %(default)s)")
    lp.add_argument("--seed", type=int, default=0,
                    help="training seed, recorded in the artifact "
                         "(default %(default)s)")
    lp.add_argument("--name", default=None,
                    help="also point this registry ref at the artifact")
    lp.add_argument("--model-dir", default=None,
                    help="model registry directory (default .repro_models "
                         "or $REPRO_MODEL_DIR)")
    lp.set_defaults(fn=cmd_learn_train)

    lp = learn_sub.add_parser(
        "eval",
        help="closed-loop evaluation: replay a workload with the trained "
             "model deciding, vs the hand-built baselines and the oracle",
    )
    lp.add_argument("model", help="registry reference (name, artifact id, "
                                  "id prefix, or 'latest')")
    platform(lp)
    lp.add_argument("--baselines", default=",".join(
                        ("STATIC@1.7", "CRISP", "HISTORY", "PCSTALL")),
                    help="comma-separated designs to compare against "
                         "(default %(default)s)")
    lp.add_argument("--dataset", default=None,
                    help="also report offline metrics on this dataset's "
                         "held-out split")
    lp.add_argument("--model-dir", default=None,
                    help="model registry directory (default .repro_models "
                         "or $REPRO_MODEL_DIR)")
    lp.add_argument("--gate-baseline", metavar="DESIGN", default=None,
                    help="exit 1 unless LEARNED's EDP beats this "
                         "baseline's (CI gate, e.g. STATIC@1.7)")
    lp.set_defaults(fn=cmd_learn_eval)

    lp = learn_sub.add_parser("list", help="list registry artifacts")
    lp.add_argument("--model-dir", default=None,
                    help="model registry directory (default .repro_models "
                         "or $REPRO_MODEL_DIR)")
    lp.set_defaults(fn=cmd_learn_list)

    sp = sub.add_parser(
        "profile",
        help="oracle-profile a workload's sensitivity, or (--hotpath) "
             "count the timing engine's hot-path work",
    )
    common(sp)
    sp.add_argument("--csv", help="write the per-epoch trace to this CSV file")
    sp.add_argument("--hotpath", action="store_true",
                    help="run one workload x design simulation and print "
                         "the hot-path event counters instead of the "
                         "sensitivity trace")
    sp.add_argument("--design", default="PCSTALL",
                    help="design to simulate with --hotpath (default PCSTALL)")
    sp.add_argument("--engine", choices=("event", "reference"), default="event",
                    help="timing-engine implementation (reference = the "
                         "pre-event-engine rescan loop, for comparisons)")
    sp.add_argument("--cprofile", metavar="FILE",
                    help="wrap the command in cProfile and dump stats to FILE")
    sp.add_argument("--json", metavar="FILE",
                    help="with --hotpath: also write the counters to FILE")
    sp.set_defaults(fn=cmd_profile)

    sp = sub.add_parser(
        "trace",
        help="run with the epoch telemetry recorder attached; print "
             "per-epoch decisions, optionally export JSONL / Perfetto",
    )
    common(sp)
    sp.add_argument("--design", default="PCSTALL")
    sp.add_argument("--epochs", type=int, default=8,
                    help="trailing epochs to print in the decision table")
    sp.add_argument("--jsonl", metavar="FILE",
                    help="stream every epoch record to this JSONL file")
    sp.add_argument("--perfetto", metavar="FILE",
                    help="write a Chrome-trace JSON timeline to FILE "
                         "(open at https://ui.perfetto.dev)")
    sp.add_argument("--observations", action="store_true",
                    help="also stream per-epoch observation records (the "
                         "full predictor input) into the --jsonl file, "
                         "making the trace replayable against a live "
                         "server (repro replay)")
    sp.add_argument("--spans", metavar="FILE",
                    help="attach the span tracer and stream run/epoch/"
                         "oracle_sample spans to this JSONL file; with "
                         "--perfetto, spans render on the same timeline")
    sp.add_argument("--drift", action="store_true",
                    help="attach the online drift monitor to the recorder "
                         "and report rel_error alerts after the run")
    sp.set_defaults(fn=cmd_trace)

    sp = sub.add_parser(
        "report",
        help="prediction-accuracy drill-down: error percentiles, "
             "confusion matrix vs oracle, per-PC attribution",
    )
    common(sp, workload_arg=False)
    sp.add_argument("--accuracy", action="store_true",
                    help="produce the accuracy report (required)")
    sp.add_argument("--workloads", default="dgemm",
                    help="comma-separated workloads to simulate and score")
    sp.add_argument("--design", default="PCSTALL")
    sp.add_argument("--jsonl", metavar="FILE",
                    help="score a saved trace instead of simulating")
    sp.add_argument("--top", type=int, default=10,
                    help="PC rows in the attribution table")
    sp.set_defaults(fn=cmd_report)

    sp = sub.add_parser("storage", help="print TABLE I storage overheads")
    sp.set_defaults(fn=cmd_storage)

    from repro.service.protocol import DEFAULT_HEALTH_PORT, DEFAULT_PORT

    sp = sub.add_parser(
        "serve",
        help="run the online DVFS decision service (PCSTALL over a socket)",
    )
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=DEFAULT_PORT,
                    help="decision port (0 = ephemeral; default %(default)s)")
    sp.add_argument("--health-port", type=int, default=DEFAULT_HEALTH_PORT,
                    help="/healthz + /metrics HTTP port (0 = ephemeral, "
                         "-1 = disabled; default %(default)s)")
    sp.add_argument("--max-sessions", type=int, default=64,
                    help="admission cap on concurrent sessions "
                         "(default %(default)s)")
    sp.add_argument("--max-inflight", type=int, default=8,
                    help="per-session queued observations before shedding "
                         "(default %(default)s)")
    sp.add_argument("--batch-max", type=int, default=32,
                    help="max observations decided per batch pass "
                         "(default %(default)s)")
    sp.add_argument("--drain-timeout", type=float, default=10.0,
                    help="seconds shutdown waits for in-flight work "
                         "(default %(default)s)")
    sp.add_argument("--trace-jsonl", metavar="FILE",
                    help="stream connect/session/request/decision spans "
                         "to this JSONL file (strictly observational: "
                         "decisions stay bit-identical)")
    sp.add_argument("--drift", action="store_true",
                    help="watch the shed rate with the online drift "
                         "monitor (alerts land in the log, the span "
                         "stream and /metrics)")
    sp.add_argument("--model", metavar="REF", default=None,
                    help="model-registry reference served to sessions "
                         "opening the bare LEARNED design (sessions "
                         "opening LEARNED@<ref> pin their own)")
    sp.add_argument("--model-dir", default=None,
                    help="model registry directory (default .repro_models "
                         "or $REPRO_MODEL_DIR)")
    sp.set_defaults(fn=cmd_serve)

    sp = sub.add_parser(
        "replay",
        help="stream a recorded trace through a live server and verify "
             "bit-identical decisions",
    )
    sp.add_argument("trace",
                    help="JSONL from: repro trace <workload> --jsonl FILE "
                         "--observations")
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=DEFAULT_PORT)
    sp.add_argument("--timeout", type=float, default=30.0,
                    help="per-reply timeout in seconds (default %(default)s)")
    sp.add_argument("--retries", type=int, default=5,
                    help="attempt budget for connects and shed observations "
                         "(default %(default)s)")
    sp.set_defaults(fn=cmd_replay)

    sp = sub.add_parser(
        "worker",
        help="join a remote sweep: lease cells from a broker "
             "(run/compare/figure --backend remote) and stream results back",
    )
    sp.add_argument("--connect", metavar="HOST:PORT", required=True,
                    help="broker address (the sweep's --listen)")
    sp.add_argument("--name", default=None,
                    help="worker name in broker logs/spans "
                         "(default host:pid)")
    sp.add_argument("--timeout", type=float, default=60.0,
                    help="per-reply timeout in seconds (default %(default)s)")
    sp.add_argument("--connect-timeout", type=float, default=30.0,
                    help="how long to keep retrying the initial connect "
                         "(default %(default)s)")
    sp.add_argument("--max-tasks", type=int, default=None,
                    help="leave after computing this many cells "
                         "(default: stay until the sweep completes)")
    sp.set_defaults(fn=cmd_worker)

    sp = sub.add_parser(
        "metrics",
        help="render a metrics snapshot as Prometheus text exposition "
             "(from a JSON file or a live /metrics endpoint)",
    )
    sp.add_argument("snapshot", nargs="?", default=None,
                    help="JSON metrics snapshot (a registry to_dict() dump, "
                         "a /metrics body, or a sweep instrumentation dump)")
    sp.add_argument("--url", metavar="HOST:PORT", default=None,
                    help="scrape a live service's "
                         "/metrics?format=prometheus instead of a file")
    sp.add_argument("--timeout", type=float, default=5.0,
                    help="HTTP timeout in seconds (default %(default)s)")
    sp.add_argument("--check", action="store_true",
                    help="validate the output through the exposition "
                         "parser; exit 1 on a format violation")
    sp.set_defaults(fn=cmd_metrics)

    sp = sub.add_parser(
        "monitor",
        help="one summary line per interval: tail a trace JSONL or poll "
             "a live /metrics endpoint",
    )
    sp.add_argument("file", nargs="?", default=None,
                    help="JSONL record stream to summarise (epoch trace, "
                         "span stream, or a combined file)")
    sp.add_argument("--url", metavar="HOST:PORT", default=None,
                    help="poll this service's /metrics and print counter "
                         "deltas instead of tailing a file")
    sp.add_argument("--follow", action="store_true",
                    help="file mode: keep tailing for new records "
                         "(default: summarise the whole file once)")
    sp.add_argument("--interval", type=float, default=2.0,
                    help="seconds per summary line (default %(default)s)")
    sp.add_argument("--max-intervals", type=int, default=None,
                    help="stop after this many summary lines "
                         "(default: run until interrupted)")
    sp.add_argument("--idle-limit", type=float, default=None,
                    help="file mode with --follow: give up after this "
                         "many seconds without new records")
    sp.set_defaults(fn=cmd_monitor)

    sp = sub.add_parser(
        "check",
        help="differential validation: audit invariants and cross-check "
             "the engine/sweep/oracle bit-exactness claims",
    )
    group = sp.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true",
                       help="two workloads at CI-smoke scale (default)")
    group.add_argument("--deep", action="store_true",
                       help="the five quickstart workloads at figure scale")
    sp.add_argument("--workloads", default=None,
                    help="comma-separated workload override")
    sp.add_argument("--json", metavar="FILE",
                    help="write the machine-readable report to FILE")
    sp.add_argument("--quiet", action="store_true",
                    help="suppress per-cell progress lines")
    sp.set_defaults(fn=cmd_check)

    sp = sub.add_parser(
        "bench",
        help="run the hot-path microbenchmark suite; emit/compare "
             "versioned BENCH_*.json perf reports",
    )
    sp.add_argument("--quick", action="store_true",
                    help="CI-smoke sizing (fewer epochs/samples per bench)")
    sp.add_argument("--engine", choices=("event", "reference"), default="event",
                    help="timing-engine implementation to benchmark")
    sp.add_argument("--only", default=None,
                    help="comma-separated benchmark subset (default: all)")
    sp.add_argument("--repeats", type=int, default=None,
                    help="timed repetitions per bench, best wall kept "
                         "(default: 2 quick / 3 full)")
    sp.add_argument("--json", metavar="FILE",
                    help="write the machine-readable bench report to FILE")
    sp.add_argument("--against", metavar="FILE",
                    help="compare against a baseline report; exit 1 when a "
                         "gated metric regresses past --gate")
    sp.add_argument("--gate", type=float, default=0.20,
                    help="allowed fractional drop vs the baseline "
                         "(default %(default)s)")
    sp.add_argument("--quiet", action="store_true",
                    help="suppress per-bench progress lines")
    sp.set_defaults(fn=cmd_bench)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(args.log_level, json_mode=args.log_json)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
