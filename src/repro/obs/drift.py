"""Online drift monitoring: rolling windows over quality signals.

The paper's predictive DVFS argument only holds while the predictor
stays accurate; post-hoc aggregates (``repro report --accuracy``) show
*that* accuracy degraded, never *when*. :class:`DriftMonitor` watches
quality signals as they stream and raises a structured alert the moment
a rolling-window statistic crosses its threshold:

* ``rel_error`` - per-epoch relative prediction error (fed by the
  epoch trace recorder, one observation per scored domain-epoch);
* ``shed_rate`` - fraction of admitted-or-shed observations the
  decision service shed (fed per observe frame);
* ``retry_rate`` - fraction of sweep cell attempts that failed
  retryably (fed by the sweep instrumentation).

An alert is emitted when the window holds at least ``min_count``
observations and its mean exceeds the signal's threshold; a cooldown
(one full window by default) stops a persistently-degraded signal from
alerting on every subsequent observation. Recovery is announced once
the mean falls back under the threshold.

Alerts fan out to every attached sink, mirroring how other events in
this codebase are made visible:

* the **span stream** (``tracer.emit`` of an ``alert`` record, plus a
  zero-duration ``drift_alert`` span so timelines show the moment);
* the **metrics registry** (``drift_alerts_total``,
  ``drift_alerts_<signal>`` counters, ``drift_<signal>_level`` gauge);
* the **log** (a WARNING with structured fields).

The monitor is deliberately dependency-free and deterministic: plain
deques and float sums, no wall clock - the "time" of an alert is the
observation index, so a replayed stream alerts at exactly the same
points.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry

#: The signals a default-configured monitor watches.
SIGNAL_REL_ERROR = "rel_error"
SIGNAL_SHED_RATE = "shed_rate"
SIGNAL_RETRY_RATE = "retry_rate"


@dataclass(frozen=True)
class DriftConfig:
    """Rolling-window sizing and per-signal thresholds."""

    #: Observations per rolling window.
    window: int = 64
    #: Observations required before the window may alert (a two-sample
    #: spike should not page anyone).
    min_count: int = 16
    #: Mean relative prediction error above this is drift. The paper's
    #: designs hold mean error well under 20% on steady phases; 0.5
    #: means predictions are off by half, decisions are near-random.
    rel_error_threshold: float = 0.5
    #: Mean shed fraction above this means the service is persistently
    #: over capacity, not absorbing a burst.
    shed_rate_threshold: float = 0.2
    #: Mean retryable-failure fraction across sweep cell attempts.
    retry_rate_threshold: float = 0.25
    #: Observations to suppress re-alerts for after an alert fires
    #: (0 = use ``window``, i.e. one full fresh window of evidence).
    cooldown: int = 0
    #: Extra signals: name -> threshold (observed via
    #: :meth:`DriftMonitor.observe`).
    thresholds: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_count <= self.window:
            raise ValueError("min_count must be in [1, window]")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")

    def threshold_for(self, signal: str) -> float:
        if signal == SIGNAL_REL_ERROR:
            return self.rel_error_threshold
        if signal == SIGNAL_SHED_RATE:
            return self.shed_rate_threshold
        if signal == SIGNAL_RETRY_RATE:
            return self.retry_rate_threshold
        try:
            return self.thresholds[signal]
        except KeyError:
            raise ValueError(f"no threshold configured for signal {signal!r}") from None

    @property
    def effective_cooldown(self) -> int:
        return self.cooldown if self.cooldown > 0 else self.window


@dataclass(frozen=True)
class DriftAlert:
    """One threshold crossing (``kind="alert"``) or recovery."""

    signal: str
    #: ``"alert"`` (mean crossed above threshold) or ``"recovered"``.
    kind: str
    #: Window mean at the moment of emission.
    value: float
    threshold: float
    #: Observations in the window when it fired.
    window_count: int
    #: Index of the observation (per signal, from 0) that triggered it.
    at_index: int

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "alert",
            "signal": self.signal,
            "kind": self.kind,
            "value": self.value,
            "threshold": self.threshold,
            "window_count": self.window_count,
            "at_index": self.at_index,
        }

    def render(self) -> str:
        verb = "drift" if self.kind == "alert" else "recovered"
        return (
            f"{verb}: {self.signal} mean {self.value:.3f} "
            f"{'>' if self.kind == 'alert' else '<='} "
            f"threshold {self.threshold:.3f} "
            f"(window n={self.window_count}, obs #{self.at_index})"
        )


class _SignalWindow:
    """Rolling window + alert state for one signal."""

    __slots__ = ("values", "sum", "seen", "alerting", "last_alert_at")

    def __init__(self, window: int) -> None:
        self.values: Deque[float] = deque(maxlen=window)
        self.sum = 0.0
        self.seen = 0
        self.alerting = False
        self.last_alert_at = -1

    def push(self, value: float) -> float:
        if len(self.values) == self.values.maxlen:
            self.sum -= self.values[0]
        self.values.append(value)
        self.sum += value
        self.seen += 1
        return self.sum / len(self.values)


class DriftMonitor:
    """Feeds rolling windows; emits :class:`DriftAlert` on crossings."""

    def __init__(
        self,
        config: DriftConfig = DriftConfig(),
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        log=None,
    ) -> None:
        self.config = config
        self.registry = registry
        self.tracer = tracer
        self.log = log
        self._signals: Dict[str, _SignalWindow] = {}
        #: Every alert and recovery emitted, in order.
        self.alerts: List[DriftAlert] = []

    # ------------------------------------------------------------------
    # Observation entry points

    def observe(self, signal: str, value: float) -> Optional[DriftAlert]:
        """Push one observation; returns the alert if one fired."""
        threshold = self.config.threshold_for(signal)
        win = self._signals.get(signal)
        if win is None:
            win = self._signals[signal] = _SignalWindow(self.config.window)
        mean = win.push(value)
        if self.registry is not None:
            self.registry.gauge(f"drift_{signal}_level").set(mean)

        index = win.seen - 1
        if len(win.values) < self.config.min_count:
            return None
        if mean > threshold:
            if win.alerting and (
                index - win.last_alert_at < self.config.effective_cooldown
            ):
                return None
            win.alerting = True
            win.last_alert_at = index
            return self._emit(
                DriftAlert(signal, "alert", mean, threshold, len(win.values), index)
            )
        if win.alerting:
            win.alerting = False
            return self._emit(
                DriftAlert(
                    signal, "recovered", mean, threshold, len(win.values), index
                )
            )
        return None

    def observe_error(self, rel_error: float) -> Optional[DriftAlert]:
        """One scored domain-epoch's relative prediction error."""
        return self.observe(SIGNAL_REL_ERROR, rel_error)

    def observe_shed(self, shed: bool) -> Optional[DriftAlert]:
        """One observe frame: shed (True) or admitted (False)."""
        return self.observe(SIGNAL_SHED_RATE, 1.0 if shed else 0.0)

    def observe_retry(self, retried: bool) -> Optional[DriftAlert]:
        """One sweep cell attempt: failed retryably (True) or not."""
        return self.observe(SIGNAL_RETRY_RATE, 1.0 if retried else 0.0)

    # ------------------------------------------------------------------

    def mean(self, signal: str) -> Optional[float]:
        """Current window mean of a signal (None before any data)."""
        win = self._signals.get(signal)
        if win is None or not win.values:
            return None
        return win.sum / len(win.values)

    @property
    def alert_count(self) -> int:
        return sum(1 for a in self.alerts if a.kind == "alert")

    def _emit(self, alert: DriftAlert) -> DriftAlert:
        self.alerts.append(alert)
        if self.registry is not None:
            if alert.kind == "alert":
                self.registry.inc("drift_alerts_total")
                self.registry.inc(f"drift_alerts_{alert.signal}")
            else:
                self.registry.inc("drift_recoveries_total")
        if self.tracer is not None:
            self.tracer.emit(alert.as_record())
            self.tracer.event(
                "drift_alert" if alert.kind == "alert" else "drift_recovered",
                signal=alert.signal,
                value=alert.value,
                threshold=alert.threshold,
            )
        if self.log is not None:
            level = self.log.warning if alert.kind == "alert" else self.log.info
            level(
                alert.render(),
                extra={
                    "signal": alert.signal,
                    "value": round(alert.value, 6),
                    "threshold": alert.threshold,
                    "kind": alert.kind,
                },
            )
        return alert


__all__ = [
    "DriftAlert",
    "DriftConfig",
    "DriftMonitor",
    "SIGNAL_REL_ERROR",
    "SIGNAL_RETRY_RATE",
    "SIGNAL_SHED_RATE",
]
