"""Prometheus text exposition (format v0.0.4) for a MetricsRegistry.

:func:`render_prometheus` turns a
:class:`~repro.telemetry.metrics.MetricsRegistry` (or its
``to_dict()`` snapshot) into the plain-text scrape format every
Prometheus-compatible collector speaks::

    # HELP service_batch_size histogram
    # TYPE service_batch_size histogram
    service_batch_size_bucket{le="1"} 4
    service_batch_size_bucket{le="2"} 9
    ...
    service_batch_size_bucket{le="+Inf"} 17
    service_batch_size_sum 53
    service_batch_size_count 17

Mapping notes:

* registry counters -> ``counter``; gauges -> ``gauge``; fixed-bucket
  histograms -> ``histogram`` with *cumulative* ``_bucket`` series
  (the registry stores per-bucket counts), ``le`` rendered with
  shortest-repr floats and a final ``+Inf`` bucket equal to ``_count``;
* metric names are sanitised to the Prometheus grammar
  (``[a-zA-Z_:][a-zA-Z0-9_:]*``) - anything else becomes ``_``;
* optional constant labels (e.g. build provenance) are attached to
  every sample.

:func:`parse_exposition` is the read-side contract checker CI scrapes
with: it re-parses an exposition body line by line, validates the
grammar, histogram bucket monotonicity and ``+Inf``/``_count``
agreement, and returns the samples - so a format regression fails the
build before an external scraper trips over it.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.telemetry.metrics import MetricsRegistry

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITISE_RE = re.compile(r"[^a-zA-Z0-9_:]")
#: One exposition sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')

#: Content type a compliant scraper expects for this format version.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def sanitise_name(name: str) -> str:
    """Coerce an arbitrary registry name into the Prometheus grammar."""
    if _NAME_RE.match(name):
        return name
    cleaned = _SANITISE_RE.sub("_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def _fmt(value: float) -> str:
    """Shortest exact rendering; integers without a trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _label_str(labels: Optional[Mapping[str, str]], extra: str = "") -> str:
    parts = []
    if labels:
        parts.extend(
            f'{k}="{str(v)}"' for k, v in sorted(labels.items())
        )
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(
    registry: Union[MetricsRegistry, Mapping[str, object]],
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a registry (or its ``to_dict`` snapshot) as exposition text.

    ``labels`` are constant labels attached to every sample (use for
    build provenance, e.g. ``{"config_hash": ..., "version": ...}``).
    """
    snapshot = (
        registry.to_dict() if isinstance(registry, MetricsRegistry) else registry
    )
    counters = dict(snapshot.get("counters", {}))
    gauges = dict(snapshot.get("gauges", {}))
    histograms = dict(snapshot.get("histograms", {}))

    lines: List[str] = []

    def simple(kind: str, items: Mapping[str, object]) -> None:
        for name, value in sorted(items.items()):
            pname = sanitise_name(name)
            lines.append(f"# HELP {pname} repro {kind} {name}")
            lines.append(f"# TYPE {pname} {kind}")
            lines.append(f"{pname}{_label_str(labels)} {_fmt(float(value))}")

    simple("counter", counters)
    simple("gauge", gauges)

    for name, spec in sorted(histograms.items()):
        pname = sanitise_name(name)
        bounds = [float(b) for b in spec["bounds"]]
        counts = [int(c) for c in spec["counts"]]
        total = int(spec["total"])
        lines.append(f"# HELP {pname} repro histogram {name}")
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            le = 'le="' + _fmt(bound) + '"'
            lines.append(f"{pname}_bucket{_label_str(labels, le)} {cumulative}")
        inf_le = 'le="+Inf"'
        lines.append(f"{pname}_bucket{_label_str(labels, inf_le)} {total}")
        lines.append(f"{pname}_sum{_label_str(labels)} {_fmt(float(spec['sum']))}")
        lines.append(f"{pname}_count{_label_str(labels)} {total}")

    return "\n".join(lines) + "\n"


class ExpositionError(ValueError):
    """The exposition body violates the text-format contract."""


def _parse_value(token: str, line_no: int) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise ExpositionError(f"line {line_no}: bad sample value {token!r}") from None


def parse_exposition(text: str) -> Dict[Tuple[str, str], float]:
    """Parse + validate exposition text; returns ``{(name, labels): value}``.

    Checks, beyond per-line grammar:

    * every ``# TYPE`` names a valid type and precedes its samples;
    * histogram ``_bucket`` series have non-decreasing counts as ``le``
      increases, and the ``+Inf`` bucket equals ``_count``;
    * no duplicate samples.

    Raises :class:`ExpositionError` on any violation - this is the CI
    scrape gate.
    """
    samples: Dict[Tuple[str, str], float] = {}
    types: Dict[str, str] = {}
    #: histogram name -> list of (le, cumulative count), label-grouped.
    buckets: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}

    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ExpositionError(f"line {line_no}: malformed TYPE comment")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionError(f"line {line_no}: unknown type {kind!r}")
            if name in types:
                raise ExpositionError(f"line {line_no}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP and other comments
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ExpositionError(f"line {line_no}: malformed sample {line!r}")
        name, label_body, value_token = (
            m.group("name"), m.group("labels"), m.group("value")
        )
        label_pairs: Dict[str, str] = {}
        if label_body:
            for part in label_body.split(","):
                lm = _LABEL_RE.match(part.strip())
                if lm is None:
                    raise ExpositionError(
                        f"line {line_no}: malformed label {part!r}"
                    )
                label_pairs[lm.group(1)] = lm.group(2)
        value = _parse_value(value_token, line_no)

        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base not in types:
            raise ExpositionError(
                f"line {line_no}: sample {name!r} lacks a preceding TYPE"
            )

        if types.get(base) == "histogram" and name == f"{base}_bucket":
            le = label_pairs.get("le")
            if le is None:
                raise ExpositionError(
                    f"line {line_no}: histogram bucket without le label"
                )
            other = ",".join(
                f"{k}={v}" for k, v in sorted(label_pairs.items()) if k != "le"
            )
            buckets.setdefault((base, other), []).append(
                (_parse_value(le, line_no), value)
            )

        key = (name, ",".join(f"{k}={v}" for k, v in sorted(label_pairs.items())))
        if key in samples:
            raise ExpositionError(f"line {line_no}: duplicate sample {key}")
        samples[key] = value

    for (base, other), series in buckets.items():
        if sorted(le for le, _ in series) != [le for le, _ in series]:
            raise ExpositionError(f"{base}: bucket le values not ascending")
        counts = [c for _, c in series]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise ExpositionError(f"{base}: bucket counts not cumulative")
        if not series or series[-1][0] != math.inf:
            raise ExpositionError(f"{base}: missing +Inf bucket")
        count_key = (
            f"{base}_count", other
        )
        if count_key not in samples:
            raise ExpositionError(f"{base}: histogram lacks _count")
        if samples[count_key] != series[-1][1]:
            raise ExpositionError(
                f"{base}: +Inf bucket {series[-1][1]} != _count "
                f"{samples[count_key]}"
            )
        if (f"{base}_sum", other) not in samples:
            raise ExpositionError(f"{base}: histogram lacks _sum")

    return samples


__all__ = [
    "CONTENT_TYPE",
    "ExpositionError",
    "parse_exposition",
    "render_prometheus",
    "sanitise_name",
]
