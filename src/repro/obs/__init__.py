"""Observability: span tracing, drift monitoring, Prometheus, logging.

The offline sweep and the online decision service share one
observability stack:

* :mod:`repro.obs.trace` - hierarchical span tracer with cross-process
  propagation (sweep -> cell -> run -> epoch; session -> request ->
  decision), zero-overhead when disabled;
* :mod:`repro.obs.drift` - rolling-window drift monitor over prediction
  error, shed rate, and retry rate, alerting into spans/metrics/logs;
* :mod:`repro.obs.prom` - Prometheus text exposition (v0.0.4) for the
  :class:`~repro.telemetry.metrics.MetricsRegistry`, plus the parser CI
  uses as a scrape gate;
* :mod:`repro.obs.log` - structured logging (``--log-level`` /
  ``--log-json``);
* :mod:`repro.obs.monitor` - the ``repro monitor`` live summary engine.
"""

from repro.obs.drift import (
    SIGNAL_REL_ERROR,
    SIGNAL_RETRY_RATE,
    SIGNAL_SHED_RATE,
    DriftAlert,
    DriftConfig,
    DriftMonitor,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.monitor import (
    IntervalSummary,
    diff_metrics,
    fetch_metrics,
    iter_jsonl,
    summarize_records,
)
from repro.obs.prom import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    ExpositionError,
    parse_exposition,
    render_prometheus,
    sanitise_name,
)
from repro.obs.trace import (
    SPAN_RECORD_TYPE,
    Span,
    SpanContext,
    Tracer,
    span_records,
)

__all__ = [
    "DriftAlert",
    "DriftConfig",
    "DriftMonitor",
    "ExpositionError",
    "IntervalSummary",
    "PROMETHEUS_CONTENT_TYPE",
    "SIGNAL_REL_ERROR",
    "SIGNAL_RETRY_RATE",
    "SIGNAL_SHED_RATE",
    "SPAN_RECORD_TYPE",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_logging",
    "diff_metrics",
    "fetch_metrics",
    "get_logger",
    "iter_jsonl",
    "parse_exposition",
    "render_prometheus",
    "sanitise_name",
    "span_records",
    "summarize_records",
]
