"""Structured logging for the repro toolchain.

``src/`` historically contained zero ``logging`` usage: faults, retries
and shed requests were visible only as metric counters. This module is
the one place logging is configured, so every subsystem emits through a
child of the ``repro`` logger and the CLI's ``--log-level`` /
``--log-json`` flags govern all of them at once.

Two disciplines keep logging out of the determinism story:

* **Never on a result path** - log calls describe events (a retry, a
  shed, a drift alert); they never compute anything a ``RunResult``
  depends on.
* **Cheap when off** - the root ``repro`` logger defaults to
  ``WARNING`` with no handler of its own, so an un-configured library
  import costs a level check per call and emits nothing below that.

:func:`configure_logging` installs a single stream handler with either
a human one-line format or JSON-lines output (one object per record,
``extra=`` fields inlined), suitable for shipping to a log pipeline.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

#: Every repro logger is a child of this name.
ROOT_LOGGER = "repro"

#: Attributes of a LogRecord that are plumbing, not payload; everything
#: else that callers pass via ``extra=`` lands in the JSON object.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg + extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class LineFormatter(logging.Formatter):
    """Human one-liner: ``HH:MM:SS level logger: msg [k=v ...]``."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        extras = " ".join(
            f"{k}={v}"
            for k, v in sorted(record.__dict__.items())
            if k not in _RESERVED and not k.startswith("_")
        )
        line = (
            f"{stamp} {record.levelname.lower():7s} "
            f"{record.name}: {record.getMessage()}"
        )
        if extras:
            line += f" [{extras}]"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def get_logger(name: str = "") -> logging.Logger:
    """A child of the ``repro`` root logger (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure_logging(
    level: str = "warning",
    json_mode: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root logger.

    Idempotent: reconfiguring replaces the previously installed
    handler instead of stacking a second one (important for tests and
    long-lived REPL sessions). Only the ``repro`` subtree is touched -
    the global root logger and other libraries are left alone.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(
            f"unknown log level {level!r} "
            f"(use debug/info/warning/error/critical)"
        )
    root = logging.getLogger(ROOT_LOGGER)
    for handler in [h for h in root.handlers if getattr(h, "_repro_handler", False)]:
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else LineFormatter())
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root


__all__ = [
    "ROOT_LOGGER",
    "JsonFormatter",
    "LineFormatter",
    "configure_logging",
    "get_logger",
]
