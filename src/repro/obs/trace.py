"""Hierarchical span tracing for the offline sweep and online service.

A :class:`Tracer` produces :class:`Span` records - named wall-clock
intervals with parent/child links - covering the full stack::

    sweep                       (SweepExecutor.run)
      cell comd/PCSTALL #1      (one attempt of one sweep cell)
        run                     (DvfsSimulation.run, possibly in a worker)
          epoch 0..N            (one per executed epoch)
          oracle_sample         (fork-and-pre-execute truth sampling)

    session 3                   (DecisionService connection)
      request                   (one admitted observation)
        decision                (controller observe + decide)

Design constraints, in priority order:

* **Zero overhead when off.** Every instrumented site holds an
  ``Optional[Tracer]`` and pays one ``is None`` branch when tracing is
  disabled; no tracer, span, or record object is allocated. Results
  are bit-identical either way - spans only *observe* wall time, they
  never feed back into a simulation or a decision.
* **Monotonic ids, cross-process safe.** Span ids are dot-free
  monotonic integers rendered under a tracer-local prefix
  (``"7"``, ``"7.1"``, ``"7.2"`` for spans a worker opened under
  parent span 7), so ids stay unique when a sweep fans cells across a
  process pool and the worker's spans are merged back.
* **Wall-clock alignment.** Timing uses ``time.perf_counter_ns`` for
  precision, re-anchored to ``time.time_ns`` at tracer creation, so
  spans from different processes land on one shared timeline and can
  be rendered next to each other (``repro trace --perfetto``).
* **Bounded memory.** Finished spans go to a ring buffer (and a JSONL
  sink when configured) exactly like the epoch trace recorder - the
  ring keeps the recent past for drill-down, the JSONL archives
  everything.

Cross-process propagation mirrors ``SweepInstrumentation``'s merge
pattern: the parent ships a :class:`SpanContext` (trace id + parent
span id) in the task payload, the worker builds a :class:`Tracer` from
it via :meth:`Tracer.from_context`, and the finished span records come
back with the result to be folded in with :meth:`Tracer.adopt`.
"""

from __future__ import annotations

import json
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.telemetry.metrics import MetricsRegistry

#: Record type emitted for every finished span (see telemetry.schema).
SPAN_RECORD_TYPE = "span"


class Span:
    """One named wall-clock interval; finished via :meth:`Tracer.finish`."""

    __slots__ = ("name", "span_id", "parent_id", "t_start_ns", "t_end_ns", "attrs")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str,
        t_start_ns: int,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start_ns = t_start_ns
        self.t_end_ns: Optional[int] = None
        self.attrs = attrs

    @property
    def done(self) -> bool:
        return self.t_end_ns is not None

    @property
    def duration_ns(self) -> int:
        if self.t_end_ns is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.t_end_ns - self.t_start_ns

    def as_record(self, trace_id: str) -> Dict[str, object]:
        return {
            "type": SPAN_RECORD_TYPE,
            "trace_id": trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start_ns": self.t_start_ns,
            "t_end_ns": self.t_end_ns,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # debugging aid only
        state = f"{self.duration_ns}ns" if self.done else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class SpanContext:
    """What crosses a process boundary: the trace id + a parent span id."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: Dict[str, str]) -> "SpanContext":
        return cls(str(wire["trace_id"]), str(wire["span_id"]))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __repr__(self) -> str:
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Tracer:
    """Creates, times, and sinks spans for one trace.

    One tracer per process per trace: the root tracer (``Tracer()``)
    mints a fresh trace id and writes the stream header; worker-side
    tracers (:meth:`from_context`) join an existing trace under a
    shipped parent span and hold their records for the parent to
    :meth:`adopt`.
    """

    def __init__(
        self,
        ring_size: int = 4096,
        jsonl_path: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        trace_id: Optional[str] = None,
        _prefix: str = "",
        _parent_id: str = "",
    ) -> None:
        if ring_size < 0:
            raise ValueError("ring_size must be non-negative")
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.registry = registry
        #: Finished-span records, most recent ``ring_size`` (0 = unbounded;
        #: worker tracers use that so every record ships back intact).
        self.records: Deque[Dict[str, object]] = deque(
            maxlen=ring_size if ring_size > 0 else None
        )
        self.jsonl_path = jsonl_path
        self._fh = None
        self._prefix = _prefix
        self._root_parent = _parent_id
        self._next_id = 0
        self.total_spans = 0
        self.dropped = 0
        #: Active context-manager span chain (``with tracer.span(...)``).
        self._stack: List[Span] = []
        # Map the monotonic perf clock onto the shared unix epoch once,
        # so spans from every process land on one comparable timeline.
        self._unix_anchor_ns = time.time_ns()
        self._perf_anchor_ns = time.perf_counter_ns()
        if not _prefix:
            self._emit_record(
                self._header_record(), count=False
            )

    # ------------------------------------------------------------------
    # Construction across process boundaries

    @classmethod
    def from_context(cls, ctx: SpanContext) -> "Tracer":
        """Worker-side tracer continuing a shipped trace.

        Records are kept unbounded (``ring_size=0``) because the whole
        point is to ship them all back; no header record and no JSONL -
        the parent owns the sinks.
        """
        return cls(
            ring_size=0,
            trace_id=ctx.trace_id,
            _prefix=ctx.span_id,
            _parent_id=ctx.span_id,
        )

    def context(self, span: Optional[Span] = None) -> SpanContext:
        """The propagation context of ``span`` (or the current span)."""
        if span is None:
            span = self._stack[-1] if self._stack else None
        return SpanContext(
            self.trace_id, span.span_id if span is not None else self._root_parent
        )

    # ------------------------------------------------------------------
    # Span lifecycle

    def _now_ns(self) -> int:
        return self._unix_anchor_ns + (
            time.perf_counter_ns() - self._perf_anchor_ns
        )

    def _mint_id(self) -> str:
        self._next_id += 1
        n = str(self._next_id)
        return f"{self._prefix}.{n}" if self._prefix else n

    def start(
        self, name: str, parent: Optional[Span] = None, **attrs: object
    ) -> Span:
        """Open a span. ``parent=None`` nests under the current
        context-manager span (or the tracer's root parent)."""
        if parent is not None:
            parent_id = parent.span_id
        elif self._stack:
            parent_id = self._stack[-1].span_id
        else:
            parent_id = self._root_parent
        return Span(name, self._mint_id(), parent_id, self._now_ns(), attrs)

    def finish(self, span: Span, **attrs: object) -> Span:
        """Stamp the end time and sink the record (idempotence guarded)."""
        if span.done:
            raise ValueError(f"span {span.name!r} already finished")
        if attrs:
            span.attrs.update(attrs)
        span.t_end_ns = self._now_ns()
        self.total_spans += 1
        if self.registry is not None:
            self.registry.inc("trace_spans_total")
            self.registry.inc(f"trace_spans_{span.name}")
        self._emit_record(span.as_record(self.trace_id))
        return span

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """``with tracer.span("epoch", epoch=3):`` - nested via a stack."""
        s = self.start(name, **attrs)
        self._stack.append(s)
        try:
            yield s
        finally:
            self._stack.pop()
            self.finish(s)

    def event(self, name: str, **attrs: object) -> Span:
        """A zero-duration point-in-time span (e.g. a drift alert)."""
        s = self.start(name, **attrs)
        now = self._now_ns()
        s.t_end_ns = now if now > s.t_start_ns else s.t_start_ns
        self.total_spans += 1
        if self.registry is not None:
            self.registry.inc("trace_spans_total")
        self._emit_record(s.as_record(self.trace_id))
        return s

    # ------------------------------------------------------------------
    # Sinks + cross-process merge

    def emit(self, record: Dict[str, object]) -> None:
        """Sink a non-span record into the span stream (drift alerts)."""
        self._emit_record(record, count=False)

    def collect(self) -> List[Dict[str, object]]:
        """Drain every held record (worker side, to ship with a result)."""
        out = list(self.records)
        self.records.clear()
        return out

    def adopt(self, records: Iterable[Dict[str, object]]) -> int:
        """Fold a worker tracer's shipped records into this tracer's
        sinks; returns how many were adopted."""
        n = 0
        for record in records:
            n += 1
            if record.get("type") == SPAN_RECORD_TYPE:
                self.total_spans += 1
                if self.registry is not None:
                    self.registry.inc("trace_spans_total")
                    self.registry.inc(f"trace_spans_{record.get('name')}")
            self._emit_record(record)
        return n

    def _header_record(self) -> Dict[str, object]:
        from repro.telemetry.schema import build_meta

        return {"type": "trace", "trace_id": self.trace_id, **build_meta()}

    def _emit_record(self, record: Dict[str, object], count: bool = True) -> None:
        if count and self.records.maxlen is not None and (
            len(self.records) == self.records.maxlen
        ):
            self.dropped += 1
        self.records.append(record)
        if self.jsonl_path is not None:
            if self._fh is None:
                self._fh = open(self.jsonl_path, "w", encoding="utf-8")
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        """Flush and close the JSONL sink, if one is open."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def span_records(tracer: Optional[Tracer]) -> List[Dict[str, object]]:
    """The tracer's held records, or ``[]`` for a disabled tracer."""
    return list(tracer.records) if tracer is not None else []


__all__ = ["Span", "SpanContext", "Tracer", "SPAN_RECORD_TYPE", "span_records"]
