"""Live monitoring: tail a span/observation JSONL or poll ``/metrics``.

``repro monitor`` renders one summary line per interval so an operator
(or a CI log) can watch a sweep or a serving session as it runs:

* **File mode** (``repro monitor FILE``): tails a JSONL stream - the
  epoch trace recorder's output, a span tracer's output, or a combined
  stream - and summarises the records that arrived in each interval
  (epochs, spans, mean relative error, drift alerts, slowest span).
* **HTTP mode** (``repro monitor --url HOST:PORT``): polls a live
  decision service's ``/metrics`` endpoint and prints per-interval
  *deltas* of the headline counters (requests, decisions, sheds, drift
  alerts) - i.e. rates, not lifetime totals.

Both modes are pure functions over (records | snapshots) -> line, so
tests drive them without sleeping; the CLI wraps them in the actual
tail/poll loop.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, TextIO


@dataclass
class IntervalSummary:
    """What one monitoring interval saw (file mode)."""

    records: int = 0
    epochs: int = 0
    domains: int = 0
    spans: int = 0
    observations: int = 0
    alerts: int = 0
    recoveries: int = 0
    #: Signals that alerted this interval.
    alert_signals: List[str] = field(default_factory=list)
    #: Sum/count of rel_error over this interval's domain records.
    _err_sum: float = 0.0
    _err_n: int = 0
    #: Mispredictions / decisions this interval.
    mispredicted: int = 0
    decisions: int = 0
    #: Longest span seen this interval: (name, duration_ns).
    slowest_span: Optional[tuple] = None

    def add(self, record: Mapping[str, object]) -> None:
        self.records += 1
        rtype = record.get("type")
        if rtype == "epoch":
            self.epochs += 1
        elif rtype == "domain":
            self.domains += 1
            err = record.get("rel_error")
            if err is not None:
                self._err_sum += float(err)  # type: ignore[arg-type]
                self._err_n += 1
            missed = record.get("mispredicted")
            if missed is not None:
                self.decisions += 1
                if missed:
                    self.mispredicted += 1
        elif rtype == "span":
            self.spans += 1
            t0, t1 = record.get("t_start_ns"), record.get("t_end_ns")
            if t0 is not None and t1 is not None:
                dur = int(t1) - int(t0)  # type: ignore[arg-type]
                if self.slowest_span is None or dur > self.slowest_span[1]:
                    self.slowest_span = (record.get("name"), dur)
        elif rtype == "alert":
            if record.get("kind") == "recovered":
                self.recoveries += 1
            else:
                self.alerts += 1
                self.alert_signals.append(str(record.get("signal")))
        elif rtype == "observation":
            self.observations += 1

    @property
    def mean_rel_error(self) -> Optional[float]:
        return self._err_sum / self._err_n if self._err_n else None

    def render(self, stamp: Optional[str] = None) -> str:
        parts = [f"records={self.records}"]
        if self.epochs:
            parts.append(f"epochs={self.epochs}")
        if self.spans:
            parts.append(f"spans={self.spans}")
        err = self.mean_rel_error
        if err is not None:
            parts.append(f"err={err:.3f}")
        if self.decisions:
            parts.append(f"miss={self.mispredicted}/{self.decisions}")
        if self.alerts:
            parts.append(f"ALERTS={self.alerts}({','.join(self.alert_signals)})")
        if self.recoveries:
            parts.append(f"recovered={self.recoveries}")
        if self.slowest_span is not None:
            name, dur = self.slowest_span
            parts.append(f"slowest={name}:{dur / 1e6:.2f}ms")
        prefix = f"[{stamp}] " if stamp else ""
        return prefix + " ".join(parts)


def summarize_records(records) -> IntervalSummary:
    """Fold an iterable of trace records into one interval summary."""
    summary = IntervalSummary()
    for record in records:
        summary.add(record)
    return summary


def iter_jsonl(
    fh: TextIO,
    follow: bool = False,
    poll_s: float = 0.2,
    idle_limit_s: Optional[float] = None,
) -> Iterator[Optional[Dict[str, object]]]:
    """Yield records from a JSONL stream; ``None`` marks an idle poll.

    With ``follow=False`` the iterator stops at EOF. With
    ``follow=True`` it keeps polling (tail -f); ``idle_limit_s`` bounds
    how long it waits without new data before giving up (None = forever).
    Partial trailing lines (a writer mid-append) are retried, not
    errored.
    """
    pending = ""
    idle_since: Optional[float] = None
    while True:
        chunk = fh.readline()
        if chunk:
            pending += chunk
            if not pending.endswith("\n"):
                continue  # torn tail: wait for the rest of the line
            line, pending = pending.strip(), ""
            idle_since = None
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue  # torn or foreign line: skip, keep tailing
            continue
        if not follow:
            return
        now = time.monotonic()
        if idle_since is None:
            idle_since = now
        elif idle_limit_s is not None and now - idle_since >= idle_limit_s:
            return
        yield None
        time.sleep(poll_s)


#: /metrics counters the HTTP mode tracks as per-interval deltas.
POLL_COUNTERS = (
    ("service_requests", "req"),
    ("service_decisions", "dec"),
    ("service_shed", "shed"),
    ("service_out_of_order", "ooo"),
    ("drift_alerts_total", "ALERTS"),
)


def diff_metrics(
    prev: Optional[Mapping[str, object]], cur: Mapping[str, object]
) -> str:
    """One line of counter deltas between two ``/metrics`` snapshots."""

    def counters(snapshot: Mapping[str, object]) -> Dict[str, float]:
        raw = snapshot.get("counters", {})
        return {k: float(v) for k, v in dict(raw).items()}  # type: ignore[arg-type]

    cur_c = counters(cur)
    prev_c = counters(prev) if prev is not None else {}
    parts = []
    for name, label in POLL_COUNTERS:
        delta = cur_c.get(name, 0.0) - prev_c.get(name, 0.0)
        if delta or label in ("req", "dec"):
            parts.append(f"{label}=+{delta:.0f}")
    sessions = cur.get("sessions")
    if sessions is not None:
        parts.append(f"sessions={sessions}")
    gauges = dict(cur.get("gauges", {}))
    for name, value in sorted(gauges.items()):
        if str(name).startswith("drift_") and str(name).endswith("_level"):
            signal = str(name)[len("drift_"):-len("_level")]
            parts.append(f"{signal}={float(value):.3f}")  # type: ignore[arg-type]
    return " ".join(parts)


def fetch_metrics(
    host: str, port: int, timeout_s: float = 5.0
) -> Dict[str, object]:
    """GET ``/metrics`` (JSON form) from a live service."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


__all__ = [
    "IntervalSummary",
    "POLL_COUNTERS",
    "diff_metrics",
    "fetch_metrics",
    "iter_jsonl",
    "summarize_records",
]
