"""Hardware storage-overhead model (TABLE I).

Byte counts of the state each predictor design keeps per instance. The
PCSTALL numbers follow the paper's accounting:

* 128-entry sensitivity table with 1-byte quantised sensitivities
  -> 128 B,
* one starting-PC register per wavefront slot (index bits only: 7 bits
  for 128 entries, rounded to a byte) x 40 slots -> 40 B,
* one stall-time register per wavefront slot (4 B each) x 40 -> 160 B,

for a total of 328 B per instance. The CU-level reactive models need
only a handful of accumulator registers; CRISP keeps the most state of
the prior models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class StorageBudget:
    """Per-instance storage of one predictor design, in bytes."""

    components: Dict[str, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())


def pcstall_storage(
    n_entries: int = 128,
    entry_bytes: int = 1,
    waves_per_cu: int = 40,
    pc_register_bytes: int = 1,
    stall_register_bytes: int = 4,
) -> StorageBudget:
    """PCSTALL storage for a given table geometry and CU occupancy."""
    return StorageBudget(
        {
            "sensitivity_table": n_entries * entry_bytes,
            "starting_pc_registers": waves_per_cu * pc_register_bytes,
            "stall_time_registers": waves_per_cu * stall_register_bytes,
        }
    )


def crisp_storage() -> StorageBudget:
    """CRISP keeps store-stall, overlap, and critical-path accumulators."""
    return StorageBudget(
        {
            "critical_path_timestamps": 24,
            "store_stall_accumulator": 8,
            "overlap_accumulator": 8,
            "instruction_counters": 8,
        }
    )


def crit_storage() -> StorageBudget:
    return StorageBudget({"critical_path_timestamps": 24, "instruction_counters": 8})


def lead_storage() -> StorageBudget:
    return StorageBudget({"leading_load_accumulator": 8, "instruction_counters": 4})


def stall_storage() -> StorageBudget:
    return StorageBudget({"stall_accumulator": 4})


#: TABLE I: per-instance storage of every evaluated design.
STORAGE_TABLE: Dict[str, StorageBudget] = {
    "PCSTALL": pcstall_storage(),
    "CRISP": crisp_storage(),
    "CRIT": crit_storage(),
    "LEAD": lead_storage(),
    "STALL": stall_storage(),
}


def storage_overhead_bytes(design: str) -> int:
    """Total per-instance storage of a named design."""
    try:
        return STORAGE_TABLE[design].total_bytes
    except KeyError:
        raise KeyError(
            f"unknown design {design!r}; known: {sorted(STORAGE_TABLE)}"
        ) from None


__all__ = [
    "StorageBudget",
    "STORAGE_TABLE",
    "storage_overhead_bytes",
    "pcstall_storage",
    "crisp_storage",
    "crit_storage",
    "lead_storage",
    "stall_storage",
]
