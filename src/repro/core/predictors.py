"""Prediction mechanisms: reactive, PC-based, and oracle-fed (TABLE III).

A predictor answers one question before each epoch: *what is the
sensitivity line of each V/f domain for the upcoming epoch?* The paper's
taxonomy (Figure 3):

* **Reactive** (:class:`ReactivePredictor`, :class:`AccurateReactivePredictor`)
  - last-value prediction: whatever the elapsed epoch's estimate was.
* **PC-based** (:class:`PCBasedPredictor`, :class:`AccuratePCPredictor`)
  - look up each resident wavefront's *next PC* in a sensitivity table
  populated by past epochs (PCSTALL when fed by the wavefront STALL
  estimator; ACCPC when fed with oracle-accurate estimates).
* **Oracle** (:class:`OraclePredictor`) - fed the true next-epoch line by
  the fork-and-pre-execute harness; the upper bound.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import GpuConfig
from repro.core.estimators import EstimationModel, WavefrontStallModel
from repro.core.pc_table import PCTable, PCTableConfig
from repro.core.sensitivity import LinearSensitivity, aggregate
from repro.gpu.gpu import EpochResult


@dataclass
class ObserveContext:
    """Everything a predictor may consult when digesting an epoch."""

    config: GpuConfig
    f_lo_ghz: float
    f_hi_ghz: float
    #: True per-domain sensitivity lines of the *elapsed* epoch, when an
    #: oracle sampling pass ran (consumed by the ACC* predictors).
    true_domain_lines: Optional[List[LinearSensitivity]] = None


class Predictor(abc.ABC):
    """Predicts next-epoch sensitivity for every V/f domain."""

    name: str = "abstract"
    #: Whether this design needs oracle sampling of the elapsed epoch.
    needs_elapsed_truth: bool = False
    #: Whether this design needs oracle sampling of the next epoch.
    needs_future_truth: bool = False

    @abc.abstractmethod
    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        """Digest the elapsed epoch."""

    @abc.abstractmethod
    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        """Sensitivity line per domain for the next epoch (None = no
        prediction available yet; the controller holds frequency)."""


def _domain_cu_ids(config: GpuConfig) -> List[List[int]]:
    per = config.cus_per_domain
    return [list(range(d * per, (d + 1) * per)) for d in range(config.n_domains)]


class StaticPredictor(Predictor):
    """No prediction: the controller never moves off its frequency."""

    name = "STATIC"

    def __init__(self, n_domains: int) -> None:
        self._n = n_domains

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        pass

    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        return [None] * self._n


class ReactivePredictor(Predictor):
    """Last-value prediction from a counter-based estimation model."""

    def __init__(self, model: EstimationModel, config: GpuConfig) -> None:
        self.model = model
        self.name = model.name
        self.config = config
        self._last: List[Optional[LinearSensitivity]] = [None] * config.n_domains

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        for d, cu_ids in enumerate(_domain_cu_ids(self.config)):
            f = result.frequencies_ghz[d]
            lines = [
                self.model.estimate_cu(result, cu, f, ctx.f_lo_ghz, ctx.f_hi_ghz, ctx.config)
                for cu in cu_ids
            ]
            self._last[d] = aggregate(lines)

    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        return list(self._last)


class AccurateReactivePredictor(Predictor):
    """ACCREAC: reactive use of the oracle-accurate elapsed estimate."""

    name = "ACCREAC"
    needs_elapsed_truth = True

    def __init__(self, config: GpuConfig) -> None:
        self.config = config
        self._last: List[Optional[LinearSensitivity]] = [None] * config.n_domains

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        if ctx.true_domain_lines is None:
            raise ValueError("ACCREAC requires oracle truth for the elapsed epoch")
        self._last = list(ctx.true_domain_lines)

    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        return list(self._last)


class PCBasedPredictor(Predictor):
    """PCSTALL: wavefront-level estimates stored in PC-indexed tables.

    ``cus_per_table`` controls sharing: 1 = a private table per CU
    (default); ``config.n_cus`` = one table for the whole GPU.
    """

    name = "PCSTALL"

    def __init__(
        self,
        config: GpuConfig,
        estimator: Optional[EstimationModel] = None,
        table_config: PCTableConfig = PCTableConfig(),
        cus_per_table: int = 1,
    ) -> None:
        if config.n_cus % cus_per_table:
            raise ValueError("cus_per_table must divide n_cus")
        self.config = config
        self.estimator = estimator or WavefrontStallModel()
        self.table_config = table_config
        self.cus_per_table = cus_per_table
        self.tables = [
            PCTable(table_config) for _ in range(config.n_cus // cus_per_table)
        ]
        self._last_result: Optional[EpochResult] = None
        #: Reactive fallback on table miss: last estimate per wavefront id.
        self._last_wave_lines: Dict[int, LinearSensitivity] = {}

    def table_for_cu(self, cu_id: int) -> PCTable:
        return self.tables[cu_id // self.cus_per_table]

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        self._last_result = result
        next_wave_lines: Dict[int, LinearSensitivity] = {}
        for cu_id in range(self.config.n_cus):
            f = result.frequencies_ghz[cu_id // self.config.cus_per_domain]
            estimates = self.estimator.estimate_wavefronts(
                result, cu_id, f, ctx.f_lo_ghz, ctx.f_hi_ghz, ctx.config
            )
            table = self.table_for_cu(cu_id)
            for est in estimates:
                table.update(est.record.start_pc_idx, est.line)
                next_wave_lines[est.record.wf_id] = est.line
        self._last_wave_lines = next_wave_lines

    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        result = self._last_result
        if result is None:
            return [None] * self.config.n_domains
        out: List[Optional[LinearSensitivity]] = []
        for cu_ids in _domain_cu_ids(self.config):
            total = LinearSensitivity.zero()
            seen_any = False
            for cu_id in cu_ids:
                table = self.table_for_cu(cu_id)
                for record in result.wave_records[cu_id]:
                    seen_any = True
                    line = table.lookup(record.next_pc_idx)
                    if line is None:
                        line = self._last_wave_lines.get(
                            record.wf_id, LinearSensitivity.zero()
                        )
                    total = total + line
            out.append(total if seen_any else None)
        return out

    def hit_ratio(self) -> float:
        lookups = sum(t.lookups for t in self.tables)
        hits = sum(t.hits for t in self.tables)
        return hits / lookups if lookups else 0.0

    def table_stats(self) -> Dict[str, int]:
        """Cumulative PC-table counters summed across every table.

        The telemetry recorder diffs consecutive snapshots into
        per-epoch lookup/hit/update/eviction deltas.
        """
        return {
            "lookups": sum(t.lookups for t in self.tables),
            "hits": sum(t.hits for t in self.tables),
            "updates": sum(t.updates for t in self.tables),
            "evictions": sum(t.evictions for t in self.tables),
        }


class AccuratePCPredictor(PCBasedPredictor):
    """ACCPC: the PC-based mechanism fed with oracle-accurate estimates.

    The per-domain truth is distributed to wavefronts proportionally to
    their committed share, then stored in the PC tables exactly like
    PCSTALL's own estimates. Impractical in hardware (needs the oracle)
    but bounds what PC-indexed prediction could achieve (Figure 14).
    """

    name = "ACCPC"
    needs_elapsed_truth = True

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        if ctx.true_domain_lines is None:
            raise ValueError("ACCPC requires oracle truth for the elapsed epoch")
        self._last_result = result
        next_wave_lines: Dict[int, LinearSensitivity] = {}
        for d, cu_ids in enumerate(_domain_cu_ids(self.config)):
            truth = ctx.true_domain_lines[d]
            domain_committed = sum(
                r.stats.committed for cu in cu_ids for r in result.wave_records[cu]
            )
            for cu_id in cu_ids:
                table = self.table_for_cu(cu_id)
                for record in result.wave_records[cu_id]:
                    if domain_committed > 0:
                        share = record.stats.committed / domain_committed
                    else:
                        n = sum(len(result.wave_records[c]) for c in cu_ids)
                        share = 1.0 / n if n else 0.0
                    line = LinearSensitivity(truth.i0 * share, truth.slope * share)
                    table.update(record.start_pc_idx, line)
                    next_wave_lines[record.wf_id] = line
        self._last_wave_lines = next_wave_lines


class PhaseHistoryPredictor(Predictor):
    """Global phase-history-table predictor (related work [55, 57]).

    CPU-era phase prediction: quantise the domain's sensitivity into a
    small number of levels, remember what level followed each recent
    history pattern, and predict the level that followed the current
    pattern last time. Captures short repetitive patterns in the
    *aggregate* signal - but, unlike PCSTALL, has no access to the
    per-wavefront position information, so GPU mix-driven variation
    defeats it (Section 2.4's critique).
    """

    name = "HISTORY"

    #: Longest accepted history pattern. The pattern table can hold up
    #: to ``n_levels ** history_length`` entries per domain, so an
    #: unbounded length is a memory blow-up dressed as a parameter (at
    #: the default 8 levels, 16 already allows ~2.8e14 patterns - far
    #: beyond any epoch stream's reach, so the cap costs nothing real).
    MAX_HISTORY_LENGTH = 16

    def __init__(
        self,
        model: EstimationModel,
        config: GpuConfig,
        history_length: int = 3,
        n_levels: int = 8,
    ) -> None:
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if history_length > self.MAX_HISTORY_LENGTH:
            raise ValueError(
                f"history_length {history_length} exceeds the "
                f"MAX_HISTORY_LENGTH cap of {self.MAX_HISTORY_LENGTH} "
                f"(pattern-table size grows as n_levels ** history_length)"
            )
        if n_levels < 2:
            raise ValueError("need at least two quantisation levels")
        self.model = model
        self.config = config
        self.history_length = history_length
        self.n_levels = n_levels
        #: Per domain: recent level pattern.
        self._history: List[tuple] = [() for _ in range(config.n_domains)]
        #: Per domain: pattern -> (level, representative line) seen next.
        self._table: List[Dict[tuple, "LinearSensitivity"]] = [
            {} for _ in range(config.n_domains)
        ]
        self._last: List[Optional[LinearSensitivity]] = [None] * config.n_domains
        #: Per domain: running max |slope| for quantisation scale.
        self._scale: List[float] = [1.0] * config.n_domains

    def _level_of(self, domain: int, slope: float) -> int:
        scale = self._scale[domain]
        frac = min(1.0, abs(slope) / scale) if scale > 0 else 0.0
        return min(self.n_levels - 1, int(frac * self.n_levels))

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        for d, cu_ids in enumerate(_domain_cu_ids(self.config)):
            f = result.frequencies_ghz[d]
            line = aggregate(
                self.model.estimate_cu(result, cu, f, ctx.f_lo_ghz, ctx.f_hi_ghz, ctx.config)
                for cu in cu_ids
            )
            self._scale[d] = max(self._scale[d] * 0.999, abs(line.slope), 1.0)
            level = self._level_of(d, line.slope)
            pattern = self._history[d]
            if len(pattern) == self.history_length:
                # Record what followed this pattern.
                self._table[d][pattern] = line
            self._history[d] = (pattern + (level,))[-self.history_length :]
            self._last[d] = line

    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        out: List[Optional[LinearSensitivity]] = []
        for d in range(self.config.n_domains):
            pattern = self._history[d]
            predicted = self._table[d].get(pattern) if len(pattern) == self.history_length else None
            out.append(predicted if predicted is not None else self._last[d])
        return out

    def table_entries(self) -> int:
        """Total stored patterns across all domains (bounded by
        ``n_domains * n_levels ** history_length``)."""
        return sum(len(t) for t in self._table)

    def max_table_entries(self) -> int:
        """The hard ceiling the pattern tables can never exceed."""
        return self.config.n_domains * self.n_levels ** self.history_length


class OraclePredictor(Predictor):
    """ORACLE: told the true next-epoch line by the pre-execute harness."""

    name = "ORACLE"
    needs_future_truth = True

    def __init__(self, n_domains: int) -> None:
        self._n = n_domains
        self._next: List[Optional[LinearSensitivity]] = [None] * n_domains

    def set_future_truth(self, lines: Sequence[LinearSensitivity]) -> None:
        if len(lines) != self._n:
            raise ValueError("wrong number of domain lines")
        self._next = list(lines)

    def observe(self, result: EpochResult, ctx: ObserveContext) -> None:
        pass

    def predict_domains(self) -> List[Optional[LinearSensitivity]]:
        return list(self._next)


__all__ = [
    "Predictor",
    "ObserveContext",
    "StaticPredictor",
    "ReactivePredictor",
    "AccurateReactivePredictor",
    "PCBasedPredictor",
    "AccuratePCPredictor",
    "PhaseHistoryPredictor",
    "OraclePredictor",
]
