"""The paper's primary contribution: frequency-sensitivity estimation,
PC-indexed prediction (PCSTALL), objectives and the DVFS controller."""

from repro.core.sensitivity import LinearSensitivity, fit_linear, aggregate
from repro.core.estimators import (
    EstimationModel,
    StallModel,
    LeadingLoadModel,
    CriticalPathModel,
    CrispModel,
    WavefrontStallModel,
    WavefrontEstimate,
)
from repro.core.pc_table import PCTable, PCTableConfig
from repro.core.predictors import (
    Predictor,
    ReactivePredictor,
    PCBasedPredictor,
    AccurateReactivePredictor,
    AccuratePCPredictor,
    PhaseHistoryPredictor,
    OraclePredictor,
    StaticPredictor,
)
from repro.core.objectives import (
    Objective,
    EDnPObjective,
    PerformanceCapObjective,
    QoSDeadlineObjective,
    StaticObjective,
)
from repro.core.controller import DvfsController
from repro.core.hardware import storage_overhead_bytes, STORAGE_TABLE

__all__ = [
    "LinearSensitivity",
    "fit_linear",
    "aggregate",
    "EstimationModel",
    "StallModel",
    "LeadingLoadModel",
    "CriticalPathModel",
    "CrispModel",
    "WavefrontStallModel",
    "WavefrontEstimate",
    "PCTable",
    "PCTableConfig",
    "Predictor",
    "ReactivePredictor",
    "PCBasedPredictor",
    "AccurateReactivePredictor",
    "AccuratePCPredictor",
    "PhaseHistoryPredictor",
    "OraclePredictor",
    "StaticPredictor",
    "Objective",
    "EDnPObjective",
    "PerformanceCapObjective",
    "QoSDeadlineObjective",
    "StaticObjective",
    "DvfsController",
    "storage_overhead_bytes",
    "STORAGE_TABLE",
]
