"""Frequency-sensitivity estimation models (Sections 2.3 and 4.2).

All models share the interval-analysis skeleton: split the elapsed epoch
into an *asynchronous* slice ``T_async`` (memory-bound; wall-clock
constant under frequency change) and a *core* slice ``T_core`` (scales
inversely with frequency). For an epoch of length ``T`` run at ``f1``
that committed ``I`` instructions, the predicted commits at ``f2`` in an
equally long epoch follow from rate scaling::

    I(f2) = T * I / (T_core * f1/f2 + T_async)

The models differ only in how they extract ``T_async`` from hardware
counters, and at what level (CU vs wavefront) they apply the split:

* :class:`StallModel` (CU) - idle-issue time is async (no MLP).
* :class:`LeadingLoadModel` (CU) - latency of leading loads is async.
* :class:`CriticalPathModel` (CU) - non-overlapped memory latency.
* :class:`CrispModel` (CU) - critical path plus store-stall correction
  and compute/memory overlap credit (the GPU state of the art [20]).
* :class:`WavefrontStallModel` (wavefront) - the paper's estimator:
  per-wavefront ``s_waitcnt`` stall time, age-normalised for scheduling
  contention (Section 4.4); feeds the PC table.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Tuple

from repro.config import GpuConfig
from repro.core.sensitivity import LinearSensitivity
from repro.gpu.gpu import EpochResult, WaveEpochRecord


def interval_line(
    committed: float,
    t_core_ns: float,
    t_async_ns: float,
    f1_ghz: float,
    f_lo_ghz: float,
    f_hi_ghz: float,
) -> LinearSensitivity:
    """Linearise the interval model over the DVFS frequency range.

    Evaluates the rate-scaling formula at the grid endpoints and draws a
    line through them - matching how the paper's linear sensitivity is
    defined over the 1.3-2.2 GHz window (Section 3.2).
    """
    total = t_core_ns + t_async_ns
    if total <= 0.0 or committed <= 0.0:
        return LinearSensitivity(max(0.0, committed), 0.0)

    def commits_at(f2: float) -> float:
        denom = t_core_ns * (f1_ghz / f2) + t_async_ns
        if denom <= 0.0:
            return committed
        return total * committed / denom

    i_lo = commits_at(f_lo_ghz)
    i_hi = commits_at(f_hi_ghz)
    if f_hi_ghz == f_lo_ghz:
        return LinearSensitivity(i_lo, 0.0)
    return LinearSensitivity.from_two_points(f_lo_ghz, i_lo, f_hi_ghz, i_hi)


@dataclass(frozen=True)
class WavefrontEstimate:
    """Per-wavefront sensitivity estimate, keyed by the epoch's start PC."""

    record: WaveEpochRecord
    line: LinearSensitivity


class EstimationModel(abc.ABC):
    """Estimates the sensitivity of an *elapsed* epoch from counters."""

    name: str = "abstract"

    @abc.abstractmethod
    def estimate_cu(
        self,
        result: EpochResult,
        cu_id: int,
        f_ghz: float,
        f_lo_ghz: float,
        f_hi_ghz: float,
        config: GpuConfig,
    ) -> LinearSensitivity:
        """Sensitivity line of one CU for the elapsed epoch."""

    def estimate_wavefronts(
        self,
        result: EpochResult,
        cu_id: int,
        f_ghz: float,
        f_lo_ghz: float,
        f_hi_ghz: float,
        config: GpuConfig,
    ) -> List[WavefrontEstimate]:
        """Per-wavefront estimates; default distributes the CU estimate
        proportionally to each wavefront's committed share."""
        cu_line = self.estimate_cu(result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config)
        records = result.wave_records[cu_id]
        total = sum(r.stats.committed for r in records)
        if total <= 0 or not records:
            return [WavefrontEstimate(r, LinearSensitivity.zero()) for r in records]
        out = []
        for r in records:
            share = r.stats.committed / total
            out.append(
                WavefrontEstimate(
                    r, LinearSensitivity(cu_line.i0 * share, cu_line.slope * share)
                )
            )
        return out


def _cu_core_ns(result: EpochResult, cu_id: int) -> float:
    return result.cu_stats[cu_id].core_busy_ns


def _wave_stat_mean(result: EpochResult, cu_id: int, attr: str) -> float:
    records = result.wave_records[cu_id]
    if not records:
        return 0.0
    return sum(getattr(r.stats, attr) for r in records) / len(records)


class StallModel(EstimationModel):
    """STALL [24]: async time = time the core issued nothing.

    Ignores memory-level parallelism: any idle-issue time is blamed on
    memory, which overestimates the async slice for latency-hidden GPU
    phases.
    """

    name = "STALL"

    def estimate_cu(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        t = result.duration_ns
        t_core = min(t, _cu_core_ns(result, cu_id))
        t_async = t - t_core
        committed = result.cu_stats[cu_id].committed
        return interval_line(committed, t_core, t_async, f_ghz, f_lo_ghz, f_hi_ghz)


class LeadingLoadModel(EstimationModel):
    """LEAD [24,32,33]: async time = accumulated leading-load latency.

    Incorporates MLP by only counting loads issued with nothing in
    flight. Applied at the CU level the per-wavefront leading loads are
    averaged, treating the CU as one in-order thread - the approximation
    the paper criticises (Section 4.1).
    """

    name = "LEAD"

    def estimate_cu(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        t = result.duration_ns
        t_async = min(t, _wave_stat_mean(result, cu_id, "leading_load_ns"))
        t_core = t - t_async
        committed = result.cu_stats[cu_id].committed
        return interval_line(committed, t_core, t_async, f_ghz, f_lo_ghz, f_hi_ghz)


class CriticalPathModel(EstimationModel):
    """CRIT [10]: async time = non-overlapped memory latency on the
    critical path, averaged across wavefronts at the CU level."""

    name = "CRIT"

    def estimate_cu(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        t = result.duration_ns
        t_async = min(t, _wave_stat_mean(result, cu_id, "critical_mem_ns"))
        t_core = t - t_async
        committed = result.cu_stats[cu_id].committed
        return interval_line(committed, t_core, t_async, f_ghz, f_lo_ghz, f_hi_ghz)


class CrispModel(EstimationModel):
    """CRISP [20]: the GPU extension of the critical-path model.

    Blends the issue-idle time with per-wavefront stall measurements,
    credits compute/memory overlap, and adds the store-stall term CRISP
    introduced. Still treats the CU as a single-threaded core
    (Figure 2a), which is its fundamental limitation at fine grain.
    """

    name = "CRISP"

    #: Weight of the store-stall correction term.
    store_weight: float = 0.3
    #: Fraction of measured per-wave stall treated as hidden by overlap.
    overlap_credit: float = 0.5

    def estimate_cu(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        t = result.duration_ns
        t_idle = max(0.0, t - _cu_core_ns(result, cu_id))
        avg_stall = _wave_stat_mean(result, cu_id, "stall_ns")
        avg_store = _wave_stat_mean(result, cu_id, "store_stall_ns")
        # Overlap credit: stall time that other wavefronts covered with
        # compute does not make the CU asynchronous.
        t_async = t_idle + self.overlap_credit * max(
            0.0, avg_stall - t_idle
        ) + self.store_weight * avg_store
        t_async = min(t, t_async)
        t_core = t - t_async
        committed = result.cu_stats[cu_id].committed
        return interval_line(committed, t_core, t_async, f_ghz, f_lo_ghz, f_hi_ghz)


class WavefrontStallModel(EstimationModel):
    """The paper's estimator: the STALL model applied per wavefront.

    Each wavefront's ``s_waitcnt`` stall time is directly measurable;
    the remaining time is its core time. Estimates are normalised by the
    wavefront's relative age because the oldest-first scheduler gives
    younger wavefronts extra (frequency-scaling) contention delay
    (Section 4.4, Figure 11a).
    """

    name = "WF-STALL"

    #: Strength of the age normalisation; 0 disables it (ablation).
    age_kappa: float = 0.35

    def __init__(self, age_kappa: float = 0.35) -> None:
        self.age_kappa = age_kappa

    def estimate_wavefronts(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        records = result.wave_records[cu_id]
        t = result.duration_ns
        n = max(1, len(records))
        out: List[WavefrontEstimate] = []
        for r in records:
            s = r.stats
            t_async = min(t, s.stall_ns + s.barrier_stall_ns)
            t_core = t - t_async
            line = interval_line(s.committed, t_core, t_async, f_ghz, f_lo_ghz, f_hi_ghz)
            if self.age_kappa > 0.0 and n > 1:
                # Younger (higher-rank) wavefronts saw scheduling
                # contention that scales with frequency: part of their
                # apparent stall is actually core time. Shift a rank-
                # proportional slice of i0 into slope.
                shift = self.age_kappa * (r.age_rank / (n - 1)) if n > 1 else 0.0
                mid_f = 0.5 * (f_lo_ghz + f_hi_ghz)
                moved = shift * max(0.0, line.i0) * 0.1
                line = LinearSensitivity(line.i0 - moved, line.slope + moved / mid_f)
            out.append(WavefrontEstimate(r, line))
        return out

    def estimate_cu(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        parts = self.estimate_wavefronts(result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config)
        total = LinearSensitivity.zero()
        for p in parts:
            total = total + p.line
        return total


class WavefrontLeadModel(EstimationModel):
    """Leading-load model applied per wavefront (extension).

    Uses each wavefront's own leading-load latency as its asynchronous
    time. Included to show the PC-based mechanism is estimator-agnostic
    (the paper picked the STALL model purely for simplicity, Section 5.3).
    """

    name = "WF-LEAD"

    def estimate_wavefronts(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        t = result.duration_ns
        out: List[WavefrontEstimate] = []
        for r in result.wave_records[cu_id]:
            s = r.stats
            t_async = min(t, s.leading_load_ns + s.barrier_stall_ns)
            line = interval_line(s.committed, t - t_async, t_async, f_ghz, f_lo_ghz, f_hi_ghz)
            out.append(WavefrontEstimate(r, line))
        return out

    def estimate_cu(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        parts = self.estimate_wavefronts(result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config)
        total = LinearSensitivity.zero()
        for p in parts:
            total = total + p.line
        return total


class WavefrontCritModel(EstimationModel):
    """Critical-path model applied per wavefront (extension)."""

    name = "WF-CRIT"

    def estimate_wavefronts(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        t = result.duration_ns
        out: List[WavefrontEstimate] = []
        for r in result.wave_records[cu_id]:
            s = r.stats
            t_async = min(t, s.critical_mem_ns + s.barrier_stall_ns)
            line = interval_line(s.committed, t - t_async, t_async, f_ghz, f_lo_ghz, f_hi_ghz)
            out.append(WavefrontEstimate(r, line))
        return out

    def estimate_cu(self, result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config):
        parts = self.estimate_wavefronts(result, cu_id, f_ghz, f_lo_ghz, f_hi_ghz, config)
        total = LinearSensitivity.zero()
        for p in parts:
            total = total + p.line
        return total


ALL_CU_MODELS: Tuple[EstimationModel, ...] = (
    StallModel(),
    LeadingLoadModel(),
    CriticalPathModel(),
    CrispModel(),
)


__all__ = [
    "EstimationModel",
    "StallModel",
    "LeadingLoadModel",
    "CriticalPathModel",
    "CrispModel",
    "WavefrontStallModel",
    "WavefrontLeadModel",
    "WavefrontCritModel",
    "WavefrontEstimate",
    "interval_line",
    "ALL_CU_MODELS",
]
