"""The per-domain DVFS manager (Section 5): predict -> select -> apply.

At every epoch boundary the controller feeds the elapsed epoch to its
predictor, asks it for next-epoch sensitivity lines, and lets the
objective choose each domain's frequency. It also keeps the bookkeeping
the evaluation needs: the last predictions (for the accuracy metric) and
per-frequency residency (Figure 16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SimConfig
from repro.core.objectives import Objective, ObjectiveContext
from repro.core.predictors import ObserveContext, Predictor
from repro.core.sensitivity import LinearSensitivity
from repro.gpu.gpu import EpochResult
from repro.power.model import PowerModel


#: Frequency matching tolerances for snapping a chosen frequency onto
#: the V/f grid (mirrors :attr:`~repro.dvfs.oracle.OracleSample`'s
#: ``commits_at`` tolerances): the grid is 100 MHz-spaced, so 1 kHz
#: absolute slack absorbs float noise from unit conversion or grid
#: regeneration without ever bridging two distinct grid points.
FREQ_ABS_TOL_GHZ = 1e-6
FREQ_REL_TOL = 1e-9


@dataclass
class ControllerLog:
    """What the controller believed and chose, per epoch."""

    chosen_freqs: List[List[float]] = field(default_factory=list)
    predictions: List[List[Optional[LinearSensitivity]]] = field(default_factory=list)

    def frequency_residency(self, freq_grid: Sequence[float]) -> Dict[float, float]:
        """Fraction of (domain, epoch) decisions spent at each frequency.

        Chosen frequencies are snapped to the nearest grid frequency
        within :data:`FREQ_ABS_TOL_GHZ` before counting, so a chosen
        value that picked up float noise (e.g. round-tripped through a
        wire format) still lands in its grid bucket instead of being
        counted in the total but dropped from the returned dict - that
        exact-``==`` hashing bug made Fig. 16 residency fractions
        silently sum to < 1. A frequency that matches *no* grid point
        is a logic error upstream and raises.
        """
        grid = list(freq_grid)
        counts = {f: 0 for f in grid}
        total = 0
        for epoch in self.chosen_freqs:
            for f in epoch:
                if f in counts:  # exact hit: the common, noise-free path
                    counts[f] += 1
                else:
                    counts[_snap_to_grid(f, grid)] += 1
                total += 1
        if not total:
            return {f: 0.0 for f in grid}
        return {f: counts[f] / total for f in grid}


def _snap_to_grid(f: float, grid: Sequence[float]) -> float:
    """The grid frequency ``f`` really is, or raise if truly off-grid."""
    for g in grid:
        if math.isclose(f, g, rel_tol=FREQ_REL_TOL, abs_tol=FREQ_ABS_TOL_GHZ):
            return g
    raise ValueError(
        f"chosen frequency {f!r} GHz matches no grid frequency "
        f"(grid: {list(grid)!r}); the objective must pick from the grid"
    )


class DvfsController:
    """Drives one predictor + objective over all V/f domains."""

    def __init__(
        self,
        predictor: Predictor,
        objective: Objective,
        sim_config: SimConfig,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.predictor = predictor
        self.objective = objective
        self.config = sim_config
        self.power = power_model or PowerModel(sim_config.power)
        self.log = ControllerLog()
        n_domains = sim_config.gpu.n_domains
        mem_power = self.power.memory_power(sim_config.gpu.memory.n_l2_banks)
        self._ctx = ObjectiveContext(
            power=self.power,
            epoch_ns=sim_config.dvfs.epoch_ns,
            n_cus_in_domain=sim_config.gpu.cus_per_domain,
            issue_width=sim_config.gpu.issue_width,
            memory_power_share=mem_power / n_domains,
            reference_freq_ghz=sim_config.dvfs.reference_freq_ghz,
        )
        self._current: List[float] = [sim_config.dvfs.reference_freq_ghz] * n_domains

    # ------------------------------------------------------------------

    def observe(
        self,
        result: EpochResult,
        true_domain_lines: Optional[List[LinearSensitivity]] = None,
    ) -> None:
        """Digest the elapsed epoch (runs the predictor's update path)."""
        ctx = ObserveContext(
            config=self.config.gpu,
            f_lo_ghz=self.config.dvfs.f_min,
            f_hi_ghz=self.config.dvfs.f_max,
            true_domain_lines=true_domain_lines,
        )
        self.predictor.observe(result, ctx)
        per = self.config.gpu.cus_per_domain
        for d in range(self.config.gpu.n_domains):
            commits = sum(
                result.cu_stats[cu].committed for cu in range(d * per, (d + 1) * per)
            )
            self.objective.observe_epoch(
                d, self._measured_domain_power(result, d), commits
            )

    def _measured_domain_power(self, result: EpochResult, domain: int) -> float:
        """Actual wall power of a domain over the elapsed epoch, plus its
        share of the constant memory power (feedback for the adaptive
        ED^nP delay weight)."""
        gpu_cfg = self.config.gpu
        f = result.frequencies_ghz[domain]
        cycles = result.duration_ns * f
        slots = cycles * gpu_cfg.issue_width
        total = 0.0
        per = gpu_cfg.cus_per_domain
        for cu_id in range(domain * per, (domain + 1) * per):
            issued = result.cu_stats[cu_id].issued
            activity = min(1.0, issued / slots) if slots > 0 else 0.0
            total += self.power.cu_power(f, activity)
        return total + self._ctx.memory_power_share

    def decide(self) -> List[float]:
        """Frequencies for the next epoch, one per domain."""
        predictions = self.predictor.predict_domains()
        grid = self.config.dvfs.frequencies_ghz
        chosen: List[float] = []
        for d, line in enumerate(predictions):
            f = self.objective.choose(line, grid, self._current[d], self._ctx, domain=d)
            chosen.append(f)
        self._current = chosen
        self.log.chosen_freqs.append(list(chosen))
        self.log.predictions.append(list(predictions))
        return chosen

    def choose_for(
        self,
        line: Optional[LinearSensitivity],
        domain: int,
        current_f: Optional[float] = None,
    ) -> float:
        """Frequency the objective would pick for ``line``, statelessly.

        Telemetry uses this to score decisions against the oracle: feed
        it the oracle's *true* sensitivity line (and the frequency that
        was current when the real decision was made) and the result is
        the oracle-best choice under the same objective. Neither the
        controller's log nor its current frequencies change.
        """
        f0 = current_f if current_f is not None else self._current[domain]
        return self.objective.choose(
            line, self.config.dvfs.frequencies_ghz, f0, self._ctx, domain=domain
        )

    @property
    def current_frequencies(self) -> List[float]:
        return list(self._current)

    def last_predictions(self) -> List[Optional[LinearSensitivity]]:
        if not self.log.predictions:
            return [None] * self.config.gpu.n_domains
        return self.log.predictions[-1]


__all__ = ["DvfsController", "ControllerLog"]
