"""The PC-indexed sensitivity table (Section 4.4, Figure 12).

A small direct-mapped table indexed by wavefront PC. Entries hold the
sensitivity line of the time epoch that *started* at that PC, written by
the update mechanism after each epoch and read by the lookup mechanism
just before the next epoch.

The paper's tuning (Figure 11b and the hit-ratio study):

* 4-bit PC offset -> ~4 instructions share an entry,
* 128 entries -> covers 512 instructions, enough for the loop bodies of
  typical GPU kernels with a 95%+ hit ratio.

A table may be private to a CU or shared by many (the Figure 10 study
shows sharing costs little accuracy); sharing is expressed by simply
routing several CUs' updates/lookups to the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.sensitivity import LinearSensitivity


@dataclass(frozen=True)
class PCTableConfig:
    """Geometry of the PC-indexed table."""

    n_entries: int = 128
    offset_bits: int = 4
    instruction_bytes: int = 4
    #: Exponential blending weight for updates; 1.0 = last-value
    #: (the paper's behaviour), lower values smooth noisy estimates.
    update_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.n_entries < 1:
            raise ValueError("table needs at least one entry")
        if self.offset_bits < 0:
            raise ValueError("offset_bits must be non-negative")
        if not 0.0 < self.update_weight <= 1.0:
            raise ValueError("update_weight must be in (0, 1]")

    @property
    def instructions_per_entry(self) -> int:
        return max(1, (1 << self.offset_bits) // self.instruction_bytes)

    @property
    def covered_instructions(self) -> int:
        return self.n_entries * self.instructions_per_entry


@dataclass
class _Entry:
    valid: bool = False
    i0: float = 0.0
    slope: float = 0.0
    #: Pre-wrap PC key of the writer. The hardware table is tagless (the
    #: paper stores index bits only) and uses aliased entries blindly;
    #: the key exists purely for the simulator's hit-ratio accounting,
    #: which is how the paper sized the table (128 entries -> 95%+ hits).
    pc_key: int = -1


class PCTable:
    """Direct-mapped PC-indexed sensitivity store."""

    def __init__(self, config: PCTableConfig = PCTableConfig()) -> None:
        self.config = config
        self._entries: List[_Entry] = [_Entry() for _ in range(config.n_entries)]
        self.lookups = 0
        self.hits = 0
        self.updates = 0
        #: Valid entries overwritten by a *different* (aliasing) PC - the
        #: direct-mapped table's capacity/conflict pressure signal.
        self.evictions = 0

    def index_of(self, pc_bytes: int) -> int:
        """Table index for a byte PC: drop offset bits, wrap modulo size."""
        return (pc_bytes >> self.config.offset_bits) % self.config.n_entries

    def index_of_instruction(self, pc_idx: int) -> int:
        return self.index_of(pc_idx * self.config.instruction_bytes)

    def _key_of_instruction(self, pc_idx: int) -> int:
        """Pre-wrap PC key (all PC bits above the offset)."""
        return (pc_idx * self.config.instruction_bytes) >> self.config.offset_bits

    # ------------------------------------------------------------------

    def update(self, pc_idx: int, line: LinearSensitivity) -> None:
        """Store the estimate of the epoch that started at ``pc_idx``.

        Update happens off the critical path (after the epoch); with
        ``update_weight == 1`` the entry is simply overwritten
        (last-value semantics, as in the paper).
        """
        entry = self._entries[self.index_of_instruction(pc_idx)]
        key = self._key_of_instruction(pc_idx)
        w = self.config.update_weight
        if entry.valid and entry.pc_key != key:
            self.evictions += 1
        if entry.valid and entry.pc_key == key and w < 1.0:
            entry.i0 = (1 - w) * entry.i0 + w * line.i0
            entry.slope = (1 - w) * entry.slope + w * line.slope
        else:
            entry.i0 = line.i0
            entry.slope = line.slope
        entry.valid = True
        entry.pc_key = key
        self.updates += 1

    def lookup(self, pc_idx: int) -> Optional[LinearSensitivity]:
        """Predicted sensitivity for an epoch starting at ``pc_idx``.

        Returns None on a miss (invalid entry); callers fall back to a
        reactive estimate for that wavefront. A valid entry written by a
        *different* (aliasing) PC is still returned - the hardware table
        is tagless - but does not count as a hit, matching how the paper
        sized the table by hit ratio.
        """
        self.lookups += 1
        entry = self._entries[self.index_of_instruction(pc_idx)]
        if not entry.valid:
            return None
        if entry.pc_key == self._key_of_instruction(pc_idx):
            self.hits += 1
        return LinearSensitivity(entry.i0, entry.slope)

    # ------------------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def occupancy(self) -> float:
        valid = sum(1 for e in self._entries if e.valid)
        return valid / len(self._entries)

    def invalidate(self) -> None:
        """Flush the table (e.g. at a kernel boundary, optional)."""
        for e in self._entries:
            e.valid = False
            e.pc_key = -1

    def reset_counters(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.updates = 0
        self.evictions = 0


__all__ = ["PCTable", "PCTableConfig"]
