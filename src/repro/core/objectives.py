"""Objective functions mapping a predicted sensitivity line to a frequency.

The prediction mechanism is objective-agnostic (Section 5.2): it yields
``I(f)`` for the next epoch; the objective then scores every V/f state
and picks the winner. Implemented objectives:

* :class:`EDnPObjective` - minimise Energy * Delay^n per unit of work;
  n=1 is EDP (battery-bound), n=2 is ED2P (server-bound).
* :class:`PerformanceCapObjective` - minimise energy subject to a bound
  on predicted performance loss versus the maximum frequency
  (Section 6.4's 5%/10% degradation limits).
* :class:`StaticObjective` - a fixed frequency (the paper's static
  baselines at 1.3/1.7/2.2 GHz).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.sensitivity import LinearSensitivity
from repro.power.model import PowerModel


@dataclass(frozen=True)
class ObjectiveContext:
    """Platform facts an objective needs to score a frequency."""

    power: PowerModel
    epoch_ns: float
    n_cus_in_domain: int
    issue_width: int
    #: This domain's share of the constant memory-subsystem power.
    memory_power_share: float
    #: The static reference frequency (normalisation baseline).
    reference_freq_ghz: float = 1.7

    def predicted_activity(self, line: LinearSensitivity, f_ghz: float) -> float:
        """Issue occupancy implied by the predicted commit count."""
        slots = self.epoch_ns * f_ghz * self.issue_width * self.n_cus_in_domain
        if slots <= 0:
            return 0.0
        return min(1.0, line.predict(f_ghz) / slots)

    def domain_power(self, line: LinearSensitivity, f_ghz: float) -> float:
        """Predicted wall power of the whole domain at ``f_ghz``."""
        activity = self.predicted_activity(line, f_ghz)
        return (
            self.power.cu_power(f_ghz, activity) * self.n_cus_in_domain
            + self.memory_power_share
        )


class Objective(abc.ABC):
    """Chooses the operating frequency for the next epoch of one domain."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(
        self,
        line: Optional[LinearSensitivity],
        freq_grid: Sequence[float],
        current_f: float,
        ctx: ObjectiveContext,
        domain: int = 0,
    ) -> float:
        """Frequency for the next epoch. ``line`` may be None (no
        prediction yet) in which case implementations should hold."""

    def observe_epoch(
        self, domain: int, measured_power: float, measured_commits: float
    ) -> None:
        """Feedback hook: the domain's measured power and committed work
        over the elapsed epoch. Stateful objectives use it to calibrate
        their work/energy exchange rate; default no-op."""


class StaticObjective(Objective):
    """Always run at a fixed frequency."""

    def __init__(self, f_ghz: float) -> None:
        self.f_ghz = f_ghz
        self.name = f"STATIC@{f_ghz:.1f}GHz"

    def choose(self, line, freq_grid, current_f, ctx, domain=0):
        return self.f_ghz


class EDnPObjective(Objective):
    """Minimise predicted ED^nP via marginal work pricing.

    Control is fixed-time-epoch (Section 3.1): the knob changes how much
    *work* ``I(f)`` the next epoch completes, at power ``P(f)``. For a
    run of total work ``W``, energy ``E`` and delay ``D``, perturbing
    one epoch's frequency changes ``E`` by ``t*dP`` minus the tail
    energy saved by finishing earlier, and ``D`` by ``-dI/R`` where
    ``R = W/D`` is the average work rate. Setting ``d(E*D^n) = 0`` gives
    the per-epoch rule: minimise

        ``cost(f) = P(f) - (n+1) * (P_avg / I_avg) * I(f)``

    i.e. each unit of work is worth ``(n+1)`` times the run's average
    energy-per-work. Ratio-form greedies (``P/I^(n+1)``) overshoot both
    frequency extremes; this linear pricing makes a perfectly informed
    predictor (ORACLE) actually minimise the global metric.

    The exchange rate is *anchored at the reference frequency*: each
    epoch prices work at ``(n+1) * P(f_ref) / I(f_ref)`` using its own
    predicted line. A self-referential rate (the policy's achieved
    average) admits multiple fixed points - boosting raises the achieved
    power, which raises the price, which justifies more boosting - so
    the policy-independent anchor keeps the controller at the fixed
    point near the static baseline, matching how the paper's
    hierarchical power manager constrains the hardware loop (Section
    5.4).
    """

    def __init__(self, n: int = 2, price_scale: float = 1.0) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        if price_scale <= 0:
            raise ValueError("price_scale must be positive")
        self.n = n
        self.price_scale = price_scale
        self.name = f"ED{n}P" if n != 1 else "EDP"

    def _work_price(self, line: LinearSensitivity, ctx: ObjectiveContext) -> float:
        """Power-per-work exchange rate, anchored at the reference.

        ``price_scale`` is a platform calibration constant (the anchor
        approximates the optimum's Lagrange multiplier only to first
        order); 1.0 works well for the default power model.
        """
        f_ref = ctx.reference_freq_ghz
        p_ref = ctx.domain_power(line, f_ref)
        i_ref = max(line.predict(f_ref), 1.0)
        return self.price_scale * (self.n + 1) * p_ref / i_ref

    def choose(self, line, freq_grid, current_f, ctx, domain=0):
        if line is None:
            return current_f
        price = self._work_price(line, ctx)
        best_f = current_f
        best_cost = float("inf")
        for f in freq_grid:
            cost = ctx.domain_power(line, f) - price * line.predict(f)
            if cost < best_cost:
                best_cost = cost
                best_f = f
        return best_f


class PerformanceCapObjective(Objective):
    """Minimise energy subject to a predicted performance-loss cap.

    Keeps only frequencies whose predicted commits stay within
    ``(1 - max_degradation)`` of the predicted commits at the top
    frequency, then picks the one with the lowest predicted power
    (energy, since the epoch length is fixed).
    """

    def __init__(self, max_degradation: float) -> None:
        if not 0.0 <= max_degradation < 1.0:
            raise ValueError("max_degradation must be in [0, 1)")
        self.max_degradation = max_degradation
        self.name = f"ENERGY@{max_degradation:.0%}"

    def choose(self, line, freq_grid, current_f, ctx, domain=0):
        if line is None:
            return freq_grid[-1]
        f_max = freq_grid[-1]
        required = (1.0 - self.max_degradation) * line.predict(f_max)
        best_f = f_max
        best_power = float("inf")
        for f in freq_grid:
            if line.predict(f) + 1e-9 < required:
                continue
            power = ctx.domain_power(line, f)
            if power < best_power:
                best_power = power
                best_f = f
        return best_f


class QoSDeadlineObjective(Objective):
    """Meet a work-rate deadline at minimum energy (Section 5.2's
    quality-of-service extension).

    The job owner specifies a target instruction rate (per domain, in
    instructions per epoch); the objective picks the cheapest frequency
    whose predicted commits meet it, or the top frequency when the
    target is unreachable (best effort).
    """

    def __init__(self, target_commits_per_epoch: float) -> None:
        if target_commits_per_epoch <= 0:
            raise ValueError("target must be positive")
        self.target = target_commits_per_epoch
        self.name = f"QOS@{target_commits_per_epoch:.0f}"

    def choose(self, line, freq_grid, current_f, ctx, domain=0):
        if line is None:
            return freq_grid[-1]
        best_f = None
        best_power = float("inf")
        for f in freq_grid:
            if line.predict(f) + 1e-9 < self.target:
                continue
            power = ctx.domain_power(line, f)
            if power < best_power:
                best_power = power
                best_f = f
        return best_f if best_f is not None else freq_grid[-1]


__all__ = [
    "Objective",
    "ObjectiveContext",
    "StaticObjective",
    "EDnPObjective",
    "PerformanceCapObjective",
    "QoSDeadlineObjective",
]
