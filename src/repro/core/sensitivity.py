"""The frequency-sensitivity metric (Section 3.2).

Instructions committed in a fixed-time epoch are approximately linear in
the operating frequency over the DVFS range (Figure 5)::

    I_f = I0 + S * f

``S`` - the *sensitivity* - is the increase in instruction throughput per
unit frequency, and quantifies the phase: high S = compute-intensive,
low S = memory-bound. Sensitivity is commutative (Section 4.2): the
sensitivity of a V/f domain is the sum of its CUs', which is the sum of
their wavefronts'.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


@dataclass(frozen=True)
class LinearSensitivity:
    """The linear phase model ``I(f) = i0 + slope * f``.

    ``slope`` is the sensitivity ``S`` (instructions per GHz for the
    epoch duration it was measured over); ``i0`` the frequency-independent
    instruction base.
    """

    i0: float
    slope: float

    def predict(self, f_ghz: float) -> float:
        """Predicted instructions committed at ``f_ghz`` (floored at 0)."""
        return max(0.0, self.i0 + self.slope * f_ghz)

    def __add__(self, other: "LinearSensitivity") -> "LinearSensitivity":
        return LinearSensitivity(self.i0 + other.i0, self.slope + other.slope)

    @staticmethod
    def zero() -> "LinearSensitivity":
        return LinearSensitivity(0.0, 0.0)

    @staticmethod
    def from_two_points(f1: float, i1: float, f2: float, i2: float) -> "LinearSensitivity":
        """Exact line through two (frequency, instructions) samples."""
        if f1 == f2:
            raise ValueError("need two distinct frequencies")
        slope = (i2 - i1) / (f2 - f1)
        return LinearSensitivity(i1 - slope * f1, slope)


def aggregate(parts: Iterable[LinearSensitivity]) -> LinearSensitivity:
    """Sum of sensitivities: wavefronts -> CU -> V/f domain (Section 4.2)."""
    total = LinearSensitivity.zero()
    for p in parts:
        total = total + p
    return total


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit of I(f) samples, with goodness-of-fit."""

    model: LinearSensitivity
    r_squared: float
    n_points: int


def fit_linear(freqs_ghz: Sequence[float], instructions: Sequence[float]) -> LinearFit:
    """Least-squares line through (frequency, instructions) samples.

    Used both by the oracle (to extract the *true* sensitivity from the
    fork-and-pre-execute samples) and by the Figure 5 linearity study.
    """
    if len(freqs_ghz) != len(instructions):
        raise ValueError("freqs and instructions must have equal length")
    n = len(freqs_ghz)
    if n < 2:
        raise ValueError("need at least two samples to fit a line")
    mean_f = sum(freqs_ghz) / n
    mean_i = sum(instructions) / n
    sxx = sum((f - mean_f) ** 2 for f in freqs_ghz)
    if sxx == 0:
        raise ValueError("need at least two distinct frequencies")
    sxy = sum((f - mean_f) * (i - mean_i) for f, i in zip(freqs_ghz, instructions))
    slope = sxy / sxx
    i0 = mean_i - slope * mean_f

    ss_tot = sum((i - mean_i) ** 2 for i in instructions)
    ss_res = sum(
        (i - (i0 + slope * f)) ** 2 for f, i in zip(freqs_ghz, instructions)
    )
    if ss_tot <= 1e-12:
        # A flat response is perfectly explained by a flat line.
        r2 = 1.0 if ss_res <= 1e-9 else 0.0
    else:
        r2 = 1.0 - ss_res / ss_tot
    return LinearFit(LinearSensitivity(i0, slope), r2, n)


def relative_change(prev: float, curr: float, floor: float = 1e-9) -> float:
    """|curr - prev| / max(|prev|, |curr|, floor) - the paper's
    'relative change in sensitivity' between epochs (Figures 7 and 10)."""
    denom = max(abs(prev), abs(curr), floor)
    return abs(curr - prev) / denom


def mean_relative_change(series: Sequence[float]) -> float:
    """Average relative change across consecutive values of a series."""
    if len(series) < 2:
        return 0.0
    changes = [relative_change(a, b) for a, b in zip(series, series[1:])]
    return sum(changes) / len(changes)


def weighted_relative_change(
    series_list: Iterable[Sequence[float]], floor: float = 0.0
) -> float:
    """Magnitude-weighted mean relative change across many series.

    Each consecutive pair contributes ``|b - a|`` against a weight of
    ``max(|a|, |b|, floor)``, i.e. pairs are weighted by their
    sensitivity magnitude. This keeps near-zero sensitivities (fully
    memory-bound stretches) from dominating the average through tiny
    denominators - the robust reading of the paper's "average relative
    change" (Figures 7, 10, 11).

    ``floor`` expresses the smallest *meaningful* sensitivity on the
    platform (a small fraction of the achievable commit slope): jitter
    between sensitivities far below it measures measurement noise, not
    phase change, and is weighted accordingly.
    """
    num = 0.0
    den = 0.0
    for series in series_list:
        for a, b in zip(series, series[1:]):
            w = max(abs(a), abs(b), floor)
            if w <= 0.0:
                continue
            num += abs(b - a)
            den += w
    return num / den if den else 0.0


__all__ = [
    "LinearSensitivity",
    "LinearFit",
    "fit_linear",
    "aggregate",
    "relative_change",
    "mean_relative_change",
    "weighted_relative_change",
]
