"""The learned-predictor lab (repro.learn).

Covers the full loop the subsystem promises: record observations ->
extract a supervised dataset -> train ridge / online-RLS models ->
version them in the registry -> serve them back through the LEARNED
design, both in-process and over the decision service, with the same
bit-identity guarantees as the hand-built designs.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.core.estimators import CrispModel
from repro.core.predictors import ObserveContext, PhaseHistoryPredictor
from repro.dvfs.designs import (
    DESIGN_NAMES,
    EXTENSION_DESIGNS,
    learned_design_name,
    make_controller,
)
from repro.dvfs.simulation import DvfsSimulation
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.learn import (
    AUX_NAMES,
    FEATURE_NAMES,
    Dataset,
    DatasetError,
    FeatureScaler,
    LearnedPredictor,
    ModelError,
    ModelRegistry,
    ModelResolutionError,
    OnlineRLSModel,
    RidgeModel,
    SensitivityModel,
    compare_designs,
    dataset_hash,
    evaluate_design,
    extract_dataset,
    extract_rows,
    load_dataset,
    offline_metrics,
    save_dataset,
)
from repro.learn.registry import MODEL_DIR_ENV, artifact_id_of
from repro.runtime.executor import SweepTask, run_task
from repro.telemetry import EpochTraceRecorder, TelemetryConfig, load_trace_jsonl
from repro.workloads import build_workload, workload

from helpers import make_loop_program


# ----------------------------------------------------------------------
# Shared artifacts (recorded once per module: tracing is the slow part)


def record_observation_trace(path, design="PCSTALL", workload_name="dgemm",
                             max_epochs=40):
    config = small_config(n_cus=2, waves_per_cu=4)
    recorder = EpochTraceRecorder(TelemetryConfig(
        ring_size=0,
        jsonl_path=str(path),
        record_pc_attribution=False,
        record_observations=True,
    ))
    task = SweepTask(workload_name, design, config, scale=0.15,
                     max_epochs=max_epochs, oracle_sample_freqs=3,
                     collect_accuracy=True)
    with recorder:
        result = run_task(task, recorder=recorder)
    return str(path), result


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("learn") / "pcstall.jsonl"
    return record_observation_trace(path)[0]


@pytest.fixture(scope="module")
def dataset(trace_path) -> Dataset:
    return extract_dataset([trace_path])


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, dataset):
    """A populated registry: one ridge + one RLS model, named refs."""
    root = tmp_path_factory.mktemp("models")
    registry = ModelRegistry(root)
    train = dataset.rows("train")
    ridge = RidgeModel.train(dataset.features[train], dataset.labels[train],
                             seed=0)
    rls = OnlineRLSModel.train(
        dataset.features[train], dataset.next_f[train],
        dataset.next_commits[train], seed=0,
        labels=dataset.labels[train],
        anchor_freqs=dataset.frequency_range(),
    )
    provenance = {"dataset_hash": dataset.content_hash()}
    registry.save(ridge, provenance, name="ridge0")
    registry.save(rls, provenance, name="rls0")
    return root


# ----------------------------------------------------------------------
# Dataset extraction


class TestDataset:
    def test_shapes_and_names(self, dataset):
        n = len(dataset)
        assert n > 0
        assert dataset.features.shape == (n, len(FEATURE_NAMES))
        assert dataset.labels.shape == (n, 2)
        assert dataset.aux.shape == (n, len(AUX_NAMES))
        assert np.isfinite(dataset.features).all()
        assert np.isfinite(dataset.labels).all()
        assert dataset.n_train + dataset.n_eval == n

    def test_extraction_is_deterministic(self, trace_path, dataset):
        again = extract_dataset([trace_path])
        assert dataset_hash(again) == dataset.content_hash()
        assert (again.eval_mask == dataset.eval_mask).all()

    def test_split_masks_partition_rows(self, dataset):
        train, ev = dataset.rows("train"), dataset.rows("eval")
        assert not (train & ev).any()
        assert (train | ev).all()
        with pytest.raises(ValueError, match="unknown split"):
            dataset.rows("test")

    def test_frequency_range_from_sources(self, dataset):
        lo, hi = dataset.frequency_range()
        assert 0.0 < lo < hi

    def test_save_load_round_trip(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.content_hash() == dataset.content_hash()
        assert (loaded.features == dataset.features).all()
        assert loaded.meta["dataset_hash"] == dataset.content_hash()

    def test_tampered_sidecar_detected(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "ds")
        sidecar = tmp_path / "ds.json"
        meta = json.loads(sidecar.read_text())
        meta["dataset_hash"] = "0" * 64
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(DatasetError, match="hash mismatch"):
            load_dataset(tmp_path / "ds")

    def test_trace_without_observations_rejected(self, trace_path):
        records = [r for r in load_trace_jsonl(trace_path)
                   if r.get("type") != "observation"]
        with pytest.raises(DatasetError, match="observation"):
            extract_rows(records, source="stripped")

    def test_labels_are_next_epoch_truth(self, trace_path, dataset):
        """Row (epoch e, domain d) is labelled with epoch e+1's truth."""
        observations = {
            int(r["epoch"]): r for r in load_trace_jsonl(trace_path)
            if r.get("type") == "observation"
        }
        row = 0  # first extracted row: first epoch pair, domain 0
        epoch = int(dataset.epoch[row])
        truth = observations[epoch + 1]["truth"][0]
        assert dataset.labels[row][0] == pytest.approx(truth[0])
        assert dataset.labels[row][1] == pytest.approx(truth[1])


# ----------------------------------------------------------------------
# Models


class TestModels:
    def _trained(self, dataset, kind):
        train = dataset.rows("train")
        if kind == "ridge":
            return RidgeModel.train(dataset.features[train],
                                    dataset.labels[train], seed=0)
        return OnlineRLSModel.train(
            dataset.features[train], dataset.next_f[train],
            dataset.next_commits[train], seed=0,
            labels=dataset.labels[train],
            anchor_freqs=dataset.frequency_range(),
        )

    @pytest.mark.parametrize("kind", ["ridge", "rls"])
    def test_payload_round_trip_bit_identical(self, dataset, kind):
        model = self._trained(dataset, kind)
        clone = SensitivityModel.from_payload(model.to_payload())
        x = dataset.features
        assert (model.predict_rows(x) == clone.predict_rows(x)).all()
        # And the payload itself is stable (the registry hashes it).
        assert model.to_payload() == clone.to_payload()

    @pytest.mark.parametrize("kind", ["ridge", "rls"])
    def test_training_is_deterministic(self, dataset, kind):
        a, b = self._trained(dataset, kind), self._trained(dataset, kind)
        assert a.to_payload() == b.to_payload()

    def test_offline_metrics_reasonable(self, dataset):
        model = self._trained(dataset, "ridge")
        m = offline_metrics(model, dataset, split="train")
        assert m["scored"] > 0
        assert 0.0 <= m["rel_p50"] <= m["rel_p90"] <= m["rel_p99"]

    def test_rls_online_update_moves_prediction(self, dataset):
        model = self._trained(dataset, "rls")
        phi = dataset.features[0]
        before = model.predict_line(phi)
        for _ in range(10):
            model.update(phi, 1.7, 5 * model.y_scale)
        after = model.predict_line(phi)
        assert after.predict(1.7) != pytest.approx(before.predict(1.7))

    def test_ridge_is_frozen_online(self, dataset):
        model = self._trained(dataset, "ridge")
        weights = model.weights.copy()
        model.update(dataset.features[0], 1.7, 1e6)
        assert (model.weights == weights).all()

    def test_anchors_require_frequencies(self, dataset):
        train = dataset.rows("train")
        with pytest.raises(ModelError, match="anchor_freqs"):
            OnlineRLSModel.train(
                dataset.features[train], dataset.next_f[train],
                dataset.next_commits[train],
                labels=dataset.labels[train], anchor_freqs=(),
            )

    def test_scaler_keeps_constant_columns(self):
        x = np.array([[1.0, 2.0], [1.0, 4.0], [1.0, 6.0]])
        scaler = FeatureScaler.fit(x)
        z = scaler.transform(x)
        assert (z[:, 0] == 1.0).all()  # constant bias column survives
        assert z[:, 1].mean() == pytest.approx(0.0)

    def test_unknown_kind_rejected(self, dataset):
        payload = self._trained(dataset, "ridge").to_payload()
        payload["kind"] = "perceptron"
        with pytest.raises(ModelError, match="unknown model kind"):
            SensitivityModel.from_payload(payload)

    def test_feature_schema_mismatch_rejected(self, dataset):
        payload = self._trained(dataset, "ridge").to_payload()
        payload["feature_schema_version"] = 999
        with pytest.raises(ModelError, match="retrain"):
            SensitivityModel.from_payload(payload)


# ----------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_artifact_id_is_content_addressed(self, dataset, tmp_path):
        """Retraining from the same dataset + seed reproduces the id."""
        train = dataset.rows("train")
        ids = []
        for run in range(2):
            registry = ModelRegistry(tmp_path / f"run{run}")
            model = RidgeModel.train(dataset.features[train],
                                     dataset.labels[train], seed=0)
            ids.append(registry.save(
                model, {"dataset_hash": dataset.content_hash()}, name="m"
            ))
        assert ids[0] == ids[1]

    def test_resolve_by_name_id_and_prefix(self, registry_dir):
        registry = ModelRegistry(registry_dir)
        full = registry.resolve("ridge0")
        assert registry.resolve(full) == full
        assert registry.resolve(full[:12]) == full
        assert registry.resolve("latest")  # always points somewhere

    def test_load_round_trips_weights(self, registry_dir):
        registry = ModelRegistry(registry_dir)
        model, document = registry.load("ridge0")
        assert isinstance(model, RidgeModel)
        assert document["artifact_id"] == artifact_id_of(document)
        assert document["provenance"]["dataset_hash"]

    def test_unknown_ref_lists_known(self, registry_dir):
        with pytest.raises(ModelResolutionError, match="ridge0"):
            ModelRegistry(registry_dir).resolve("nonexistent")

    def test_short_prefix_rejected(self, registry_dir):
        registry = ModelRegistry(registry_dir)
        full = registry.resolve("rls0")
        with pytest.raises(ModelResolutionError, match="unknown model"):
            registry.resolve(full[:4])

    def test_bad_ref_names_rejected(self, registry_dir, dataset):
        registry = ModelRegistry(registry_dir)
        _, document = registry.load("rls0")
        for bad in ("../evil", ".hidden", "a b"):
            with pytest.raises(ModelResolutionError):
                registry.set_ref(bad, document["artifact_id"])

    def test_tampered_artifact_rejected(self, registry_dir, tmp_path):
        registry = ModelRegistry(registry_dir)
        full = registry.resolve("ridge0")
        doc = json.loads(
            (pathlib.Path(registry_dir) / "models" / f"{full}.json").read_text()
        )
        doc["model"]["params"]["l2"] = 123.0
        broken = ModelRegistry(tmp_path / "broken")
        path = pathlib.Path(broken.root) / "models" / f"{full}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc))
        with pytest.raises(ModelResolutionError, match="hash"):
            broken.load(full)


# ----------------------------------------------------------------------
# The LEARNED design: in-process serving


class TestLearnedDesign:
    def test_unknown_design_lists_sorted_names(self):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        expected = ", ".join(sorted(DESIGN_NAMES + EXTENSION_DESIGNS))
        with pytest.raises(ValueError) as excinfo:
            make_controller("NOPE", cfg)
        assert expected in str(excinfo.value)
        assert "STATIC@<f>" in str(excinfo.value)

    def test_bare_learned_needs_a_ref(self):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        with pytest.raises(ModelResolutionError, match="model reference"):
            make_controller("LEARNED", cfg)

    def test_learned_design_name(self):
        assert learned_design_name("abc123") == "LEARNED@abc123"

    def test_controllers_get_fresh_model_instances(self, registry_dir,
                                                   monkeypatch):
        monkeypatch.setenv(MODEL_DIR_ENV, str(registry_dir))
        cfg = small_config(n_cus=2, waves_per_cu=4)
        a = make_controller("LEARNED@rls0", cfg)
        b = make_controller("LEARNED@rls0", cfg)
        assert isinstance(a.predictor, LearnedPredictor)
        assert a.predictor.model is not b.predictor.model

    def test_model_ref_param_serves_bare_learned(self, registry_dir,
                                                 monkeypatch):
        monkeypatch.setenv(MODEL_DIR_ENV, str(registry_dir))
        cfg = small_config(n_cus=2, waves_per_cu=4)
        ctrl = make_controller("LEARNED", cfg, model_ref="ridge0")
        assert isinstance(ctrl.predictor, LearnedPredictor)

    def test_closed_loop_run_and_determinism(self, registry_dir, monkeypatch):
        monkeypatch.setenv(MODEL_DIR_ENV, str(registry_dir))
        cfg = small_config(n_cus=2, waves_per_cu=4)
        results = []
        for _ in range(2):
            kernels = build_workload(workload("dgemm"), scale=0.15)
            ctrl = make_controller("LEARNED@rls0", cfg)
            results.append(DvfsSimulation(
                kernels, ctrl, cfg, design_name="LEARNED@rls0",
                max_epochs=60, collect_accuracy=True,
            ).run())
        assert results[0].epochs > 0
        assert results[0].prediction_accuracy is not None
        # Online updates mutate the model, so a shared instance would
        # break run-to-run determinism; fresh instances keep it exact.
        assert results[0].edp == results[1].edp
        assert results[0].energy.total == results[1].energy.total

    def test_evaluate_design_collects_accuracy(self, registry_dir, dataset):
        model = ModelRegistry(registry_dir).load("ridge0")[0]
        cfg = small_config(n_cus=2, waves_per_cu=4)
        ev = evaluate_design("dgemm", "LEARNED", cfg, model=model,
                             scale=0.15, max_epochs=40,
                             oracle_sample_freqs=3)
        assert ev.result.prediction_accuracy is not None
        assert ev.accuracy.domain_records > 0
        assert ev.edp > 0 and ev.ed2p > 0

    def test_compare_designs_report(self, registry_dir, dataset):
        model = ModelRegistry(registry_dir).load("ridge0")[0]
        cfg = small_config(n_cus=2, waves_per_cu=4)
        report = compare_designs(
            model, "dgemm", cfg, baselines=("STATIC@1.7",),
            include_oracle=True, dataset=dataset,
            scale=0.15, max_epochs=40, oracle_sample_freqs=3,
        )
        assert [r.design for r in report.rows] == \
            ["LEARNED", "STATIC@1.7", "ORACLE"]
        assert report.offline is not None
        rendered = report.render()
        assert "LEARNED" in rendered and "ORACLE" in rendered


# ----------------------------------------------------------------------
# CLI round trip (extract -> train -> list -> eval), reproducible hashes


class TestLearnCli:
    def _extract(self, trace_path, tmp_path):
        from repro.cli import main

        base = tmp_path / "ds"
        assert main(["learn", "extract", trace_path, "-o", str(base)]) == 0
        return base

    def test_round_trip_with_stable_hashes(self, trace_path, tmp_path,
                                           capsys):
        from repro.cli import main

        base = self._extract(trace_path, tmp_path)
        capsys.readouterr()

        ids = []
        for run in range(2):
            model_dir = tmp_path / f"models{run}"
            for kind in ("ridge", "rls"):
                assert main([
                    "learn", "train", str(base), "--kind", kind,
                    "--name", kind, "--model-dir", str(model_dir),
                ]) == 0
                out = capsys.readouterr().out
                ids.append(out.split("artifact ")[1].split()[0])
            assert main(["learn", "list", "--model-dir", str(model_dir)]) == 0
            out = capsys.readouterr().out
            assert "ridge" in out and "rls" in out
        # Two independent runs over the same dataset: identical artifacts.
        assert ids[0] == ids[2] and ids[1] == ids[3]

    def test_eval_runs_and_gates(self, trace_path, tmp_path, capsys):
        from repro.cli import main

        base = self._extract(trace_path, tmp_path)
        model_dir = tmp_path / "models"
        assert main(["learn", "train", str(base), "--kind", "ridge",
                     "--name", "m", "--model-dir", str(model_dir)]) == 0
        capsys.readouterr()
        rc = main([
            "learn", "eval", "m", "dgemm", "--model-dir", str(model_dir),
            "--dataset", str(base), "--baselines", "STATIC@1.7",
            "--cus", "2", "--waves", "4", "--scale", "0.15",
            "--max-epochs", "40", "--gate-baseline", "STATIC@1.7",
        ])
        out = capsys.readouterr().out
        assert "LEARNED" in out and "ORACLE" in out
        assert "held-out offline" in out
        # The gate verdict matches the exit code either way (a tiny
        # 40-epoch run is not required to beat the baseline).
        assert ("OK: LEARNED" in out) == (rc == 0)
        assert ("FAIL: LEARNED" in out) == (rc == 1)

    def test_extract_rejects_bare_trace(self, tmp_path):
        from repro.cli import main

        bare = tmp_path / "bare.jsonl"
        bare.write_text('{"type": "run", "workload": "w"}\n')
        with pytest.raises(SystemExit, match="learn extract"):
            main(["learn", "extract", str(bare), "-o", str(tmp_path / "d")])


# ----------------------------------------------------------------------
# Serving over the decision service + replay bit-identity


class TestLearnedService:
    @pytest.fixture()
    def server(self, registry_dir, monkeypatch):
        from test_service import ServerHandle
        from repro.service.server import ServiceConfig

        monkeypatch.setenv(MODEL_DIR_ENV, str(registry_dir))
        handle = ServerHandle(ServiceConfig(
            port=0, health_port=None, model_ref="ridge0",
        ))
        yield handle
        handle.stop()

    def test_replay_learned_trace_bit_identical(self, server, registry_dir,
                                                tmp_path, monkeypatch):
        from repro.service.replay import replay_trace

        monkeypatch.setenv(MODEL_DIR_ENV, str(registry_dir))
        path, _ = record_observation_trace(
            tmp_path / "learned.jsonl", design="LEARNED@rls0", max_epochs=30,
        )
        report = replay_trace(path, port=server.port)
        assert report.bit_identical, report.render()
        assert report.decisions_compared == report.epochs_streamed > 0

    def test_bare_learned_uses_service_default_model(self, server):
        from repro.service.client import DecisionClient

        cfg = small_config(n_cus=2, waves_per_cu=4)
        with DecisionClient(port=server.port).connect() as client:
            decision = client.open_session("LEARNED", cfg)
            assert len(decision) == cfg.gpu.n_domains

    def test_unknown_model_ref_rejected_as_bad_open(self, server):
        from repro.service.client import DecisionClient, SessionRejected

        cfg = small_config(n_cus=2, waves_per_cu=4)
        with DecisionClient(port=server.port).connect() as client:
            with pytest.raises(SessionRejected) as excinfo:
                client.open_session("LEARNED@no-such-model", cfg)
            assert excinfo.value.code == "bad_open"


# ----------------------------------------------------------------------
# PhaseHistoryPredictor bounded-table guarantee (satellite)


class TestPhaseHistoryBound:
    @pytest.fixture(scope="class")
    def epoch_results(self):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        gpu = Gpu(cfg.gpu, 1.7)
        gpu.load_kernel(Kernel.homogeneous(
            make_loop_program(trips=3000), WorkgroupGeometry(4, 2)
        ))
        return cfg, [gpu.run_epoch(1000.0) for _ in range(8)]

    def test_cap_enforced(self):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        with pytest.raises(ValueError, match="MAX_HISTORY_LENGTH"):
            PhaseHistoryPredictor(
                CrispModel(), cfg.gpu,
                history_length=PhaseHistoryPredictor.MAX_HISTORY_LENGTH + 1,
            )
        # The cap itself is accepted.
        PhaseHistoryPredictor(
            CrispModel(), cfg.gpu,
            history_length=PhaseHistoryPredictor.MAX_HISTORY_LENGTH,
        )

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        history_length=st.integers(min_value=1, max_value=3),
        n_levels=st.integers(min_value=2, max_value=4),
        order=st.lists(st.integers(min_value=0, max_value=7),
                       min_size=1, max_size=40),
    )
    def test_table_stays_bounded(self, epoch_results, history_length,
                                 n_levels, order):
        """However epochs arrive, storage never exceeds the hard bound."""
        cfg, results = epoch_results
        p = PhaseHistoryPredictor(CrispModel(), cfg.gpu,
                                  history_length=history_length,
                                  n_levels=n_levels)
        ctx = ObserveContext(config=cfg.gpu, f_lo_ghz=1.3, f_hi_ghz=2.2)
        for i in order:
            p.observe(results[i], ctx)
            assert p.table_entries() <= p.max_table_entries()
            # ... and never more than one entry per observed pattern.
            assert p.table_entries() <= len(order) * cfg.gpu.n_domains
        assert p.max_table_entries() == \
            cfg.gpu.n_domains * n_levels ** history_length
