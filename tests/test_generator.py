"""The declarative kernel generator (workloads/generator.py).

Everything downstream - result caching, trace replay, sweep
equivalence - leans on one property: a spec plus a seed is the whole
story. Same spec, same seed, same programs, bit for bit.
"""

from __future__ import annotations

import random

import pytest

from repro.gpu.isa import InstructionKind
from repro.workloads.generator import (
    KernelSpec,
    PhaseSpec,
    build_kernel,
    build_program,
    build_workload,
)
from repro.workloads.suite import workload, workload_names


def spec(**overrides) -> KernelSpec:
    base = dict(
        name="t",
        phases=(PhaseSpec(valu=4, loads=2, iterations=3),
                PhaseSpec(valu=2, loads=1, stores=1, iterations=2)),
        outer_iterations=10,
        n_workgroups=2,
        waves_per_workgroup=2,
        n_variants=3,
        variant_jitter=0.3,
        stagger_valu=2,
        seed=99,
    )
    base.update(overrides)
    return KernelSpec(**base)


# ----------------------------------------------------------------------
# Determinism

def test_same_seed_same_programs():
    a, b = build_kernel(spec()), build_kernel(spec())
    # Program and Instruction are frozen dataclasses: equality is deep
    # and exact, so this asserts bit-identical generated code.
    assert a.variants == b.variants
    assert a.geometry == b.geometry


def test_different_seed_different_programs():
    a = build_kernel(spec(seed=1))
    b = build_kernel(spec(seed=2))
    assert a.variants != b.variants


def test_jitter_zero_makes_variants_differ_only_by_stagger():
    kernel = build_kernel(spec(variant_jitter=0.0, stagger_valu=1))
    base = kernel.variants[0].instructions
    for v, program in enumerate(kernel.variants):
        instructions = program.instructions
        # Variant v carries a v-instruction compute preamble...
        assert len(instructions) == len(base) + v
        preamble = instructions[:v]
        assert all(i.kind == InstructionKind.VALU for i in preamble)
        # ...and is otherwise the same program (modulo branch offsets,
        # so compare the instruction kinds, not whole instructions).
        assert [i.kind for i in instructions[v:]] == [i.kind for i in base]


def test_suite_workloads_are_deterministic():
    for name in workload_names():
        first = build_workload(workload(name), scale=0.1)
        second = build_workload(workload(name), scale=0.1)
        assert [k.variants for k in first] == [k.variants for k in second], name


# ----------------------------------------------------------------------
# Size bounds and scaling

def outer_trips(program) -> int:
    """Dynamic outer iterations = the back-edge trip count + 1."""
    branches = [i for i in program.instructions
                if i.kind == InstructionKind.BRANCH]
    return (branches[-1].trip_count if branches else 0) + 1


def test_scale_shrinks_outer_iterations():
    full = build_kernel(spec(variant_jitter=0.0, n_variants=1), scale=1.0)
    quarter = build_kernel(spec(variant_jitter=0.0, n_variants=1), scale=0.25)
    # The outer loop is a back-edge, so the *static* program is the
    # same size; the dynamic trip count is what scale divides.
    assert outer_trips(full.variants[0]) == 10
    assert outer_trips(quarter.variants[0]) == 2  # round(10 * 0.25)
    assert (len(quarter.variants[0].instructions)
            == len(full.variants[0].instructions))


def test_scale_floor_is_one_outer_iteration():
    tiny = build_kernel(spec(variant_jitter=0.0, n_variants=1), scale=1e-9)
    # outer = max(1, round(10 * 1e-9)) = 1: the kernel still runs.
    assert tiny.static_instruction_count() > 0
    floor = build_kernel(spec(variant_jitter=0.0, n_variants=1,
                              outer_iterations=1), scale=1.0)
    assert tiny.variants == floor.variants


def test_n_variants_respected():
    for n in (1, 2, 5):
        assert len(build_kernel(spec(n_variants=n)).variants) == n


def test_jittered_phases_stay_valid_over_many_seeds():
    # The jitter clamps iterations to >= 1 and counts to >= 0; a phase
    # body can never become empty because valu=0 keeps valu at 0 only
    # when it started there. Hammer it across seeds.
    for seed in range(50):
        kernel = build_kernel(spec(seed=seed, variant_jitter=0.45))
        for program in kernel.variants:
            assert len(program.instructions) > 1


def test_phase_spec_validation():
    with pytest.raises(ValueError):
        PhaseSpec(iterations=0)
    with pytest.raises(ValueError):
        PhaseSpec(fence_every=0)
    with pytest.raises(ValueError):
        PhaseSpec(valu=-1)
    with pytest.raises(ValueError):
        PhaseSpec(valu=0, loads=0, stores=0)


# ----------------------------------------------------------------------
# build_program structure

def test_unrolled_phase_has_no_branches():
    program = build_program([PhaseSpec(valu=2, loads=1, iterations=4)])
    assert all(i.kind != InstructionKind.BRANCH for i in program.instructions)


def test_looped_phase_is_smaller_than_unrolled():
    unrolled = build_program([PhaseSpec(valu=8, loads=2, iterations=20)])
    looped = build_program(
        [PhaseSpec(valu=8, loads=2, iterations=20, unroll=False)]
    )
    assert len(looped.instructions) < len(unrolled.instructions)


def test_outer_loop_adds_single_backedge():
    once = build_program([PhaseSpec(valu=2, iterations=2)], outer_iterations=1)
    many = build_program([PhaseSpec(valu=2, iterations=2)], outer_iterations=7)
    branches = [i for i in many.instructions if i.kind == InstructionKind.BRANCH]
    assert len(branches) == 1
    assert len(many.instructions) == len(once.instructions) + 1


def test_jitter_helper_bounds():
    # Directly exercise the jitter bounds: iterations never below 1.
    from repro.workloads.generator import _jitter_phase

    phase = PhaseSpec(valu=1, loads=1, iterations=1)
    for seed in range(50):
        jittered = _jitter_phase(phase, random.Random(seed), 0.49)
        assert jittered.iterations >= 1
        assert jittered.valu >= 0
        assert jittered.loads >= 0
