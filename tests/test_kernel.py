"""Kernel and workgroup geometry."""

import pytest

from repro.gpu.isa import Program, endpgm, valu
from repro.gpu.kernel import Kernel, WorkgroupGeometry


def prog(n=3, name="p"):
    return Program(tuple([valu() for _ in range(n)]) + (endpgm(),), name=name)


class TestGeometry:
    def test_total_waves(self):
        g = WorkgroupGeometry(n_workgroups=5, waves_per_workgroup=4)
        assert g.total_waves == 20

    def test_rejects_zero_workgroups(self):
        with pytest.raises(ValueError):
            WorkgroupGeometry(0)

    def test_rejects_zero_waves(self):
        with pytest.raises(ValueError):
            WorkgroupGeometry(1, 0)


class TestKernel:
    def test_homogeneous(self):
        k = Kernel.homogeneous(prog(), WorkgroupGeometry(2, 2))
        assert len(k.variants) == 1
        assert k.program_for(0, 0) is k.variants[0]
        assert k.program_for(5, 3) is k.variants[0]

    def test_variant_round_robin(self):
        variants = (prog(2, "a"), prog(4, "b"), prog(6, "c"))
        k = Kernel(variants, WorkgroupGeometry(3, 2))
        assert k.program_for(0, 0).name == "a"
        assert k.program_for(0, 1).name == "b"
        assert k.program_for(1, 1).name == "c"
        assert k.program_for(3, 0).name == "a"

    def test_rejects_empty_variants(self):
        with pytest.raises(ValueError):
            Kernel((), WorkgroupGeometry(1, 1))

    def test_name_defaults_to_program(self):
        k = Kernel.homogeneous(prog(name="fancy"), WorkgroupGeometry(1, 1))
        assert k.name == "fancy"

    def test_static_instruction_count_is_max(self):
        k = Kernel((prog(2), prog(10)), WorkgroupGeometry(1, 1))
        assert k.static_instruction_count() == 11

    def test_total_waves(self):
        k = Kernel.homogeneous(prog(), WorkgroupGeometry(4, 3))
        assert k.total_waves == 12
