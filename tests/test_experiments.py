"""Experiment drivers (fast, tiny-scale versions)."""

import pytest

from repro.analysis.experiments import (
    EVAL_DESIGNS,
    ExperimentSetup,
    design_matrix,
    fig05_linearity,
    fig06_profiles,
    fig08_wavefront_contributions,
    fig10_pc_repeatability,
    oracle_validation,
    tab1_storage,
)
from repro.config import small_config


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(
        config=small_config(),
        workloads=("comd", "xsbench"),
        scale=0.15,
        max_epochs=120,
        oracle_sample_freqs=3,
    )


class TestSetup:
    def test_workload_list_default_is_full_suite(self):
        assert len(ExperimentSetup().workload_list()) == 16

    def test_workload_list_subset(self, setup):
        assert setup.workload_list() == ["comd", "xsbench"]


class TestTab1:
    def test_matches_hardware_model(self):
        r = tab1_storage()
        assert r.bytes_per_design["PCSTALL"] == 328
        assert "PCSTALL" in r.render()


class TestFig05:
    def test_runs_and_renders(self, setup):
        r = fig05_linearity(setup, sample_epochs=(2, 4))
        assert set(r.per_workload) == {"comd", "xsbench"}
        assert 0.0 <= r.mean_r_squared <= 1.0
        assert "R^2" in r.render()


class TestFig06:
    def test_profiles_have_series(self, setup):
        r = fig06_profiles(setup, apps=("comd",), max_epochs=8)
        assert len(r.profiles["comd"]) == 8
        assert "comd" in r.render()


class TestFig08:
    def test_contributions_structure(self, setup):
        r = fig08_wavefront_contributions(setup, app="comd", max_epochs=8, max_slots=4)
        assert len(r.slot_series) == 4
        assert len(r.cu_series) == 8


class TestFig10:
    def test_granularities_reported(self, setup):
        r = fig10_pc_repeatability(setup, apps=("comd",), max_epochs=12)
        assert set(r.per_granularity) == {"wf", "cu", "gpu"}
        assert r.consecutive_wf > 0


class TestOracleValidation:
    def test_high_accuracy(self, setup):
        r = oracle_validation(setup, app="comd", probes=2)
        assert r.accuracy > 0.9


class TestEpochTrend:
    def test_trend_structure(self, setup):
        from repro.analysis.experiments import epoch_duration_trend

        r = epoch_duration_trend(
            setup, designs=("STALL",), epoch_durations_ns=(1_000.0,), n=2
        )
        assert 1_000.0 in r.values
        assert "STALL" in r.values[1_000.0]
        assert r.metric_name == "ED2P"
        assert "STALL" in r.render()

    def test_edp_metric_name(self, setup):
        from repro.analysis.experiments import epoch_duration_trend

        r = epoch_duration_trend(
            setup, designs=("STALL",), epoch_durations_ns=(1_000.0,), n=1
        )
        assert r.metric_name == "EDP"


class TestFig18Drivers:
    def test_energy_savings_driver(self, setup):
        from repro.analysis.experiments import fig18a_energy_savings

        r = fig18a_energy_savings(setup, designs=("STALL",), caps=(0.10,))
        assert "STALL" in r.savings[0.10]
        assert "save@10%" in r.render()

    def test_granularity_driver(self, setup):
        from repro.analysis.experiments import fig18b_granularity

        r = fig18b_granularity(setup, designs=("STALL",), granularities=(1, 2))
        assert set(r.ed2p) == {1, 2}
        assert all(v > 0 for g in r.ed2p.values() for v in g.values())


class TestDesignMatrix:
    def test_small_matrix(self, setup):
        m = design_matrix(setup, designs=("STALL", "PCSTALL"))
        assert set(m.runs) == {"comd", "xsbench"}
        assert m.accuracy("PCSTALL") > 0
        assert 0 < m.geomean_ed2p("PCSTALL") < 2.0
        for renderer in (m.render_fig14, m.render_fig15, m.render_fig16):
            assert renderer()

    def test_normalisation_against_baseline(self, setup):
        m = design_matrix(setup, designs=("STALL",))
        v = m.normalized_ed2p("comd", "STALL")
        assert v == pytest.approx(
            m.runs["comd"]["STALL"].ed2p / m.baseline["comd"].ed2p
        )
