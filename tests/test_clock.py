"""V/f domain map."""

import pytest

from repro.config import GpuConfig, MemoryConfig
from repro.gpu.clock import ClockDomain, DomainMap


def make_map(n_cus=4, per=2, f=1.7):
    cfg = GpuConfig(n_cus=n_cus, waves_per_cu=4, cus_per_domain=per,
                    memory=MemoryConfig(n_l2_banks=2))
    return DomainMap(cfg, f)


class TestDomainMap:
    def test_partitioning(self):
        dm = make_map()
        assert len(dm) == 2
        assert dm[0].cu_ids == (0, 1)
        assert dm[1].cu_ids == (2, 3)

    def test_initial_frequencies(self):
        dm = make_map(f=1.5)
        assert dm.frequencies() == [1.5, 1.5]

    def test_domain_of_cu(self):
        dm = make_map()
        assert dm.domain_of_cu(0).domain_id == 0
        assert dm.domain_of_cu(3).domain_id == 1

    def test_domain_of_unknown_cu(self):
        dm = make_map()
        with pytest.raises(KeyError):
            dm.domain_of_cu(99)

    def test_iteration(self):
        dm = make_map()
        assert [d.domain_id for d in dm] == [0, 1]

    def test_clone_independent(self):
        dm = make_map()
        c = dm.clone()
        c[0].frequency_ghz = 2.2
        c[0].transitions = 5
        assert dm[0].frequency_ghz == pytest.approx(1.7)
        assert dm[0].transitions == 0

    def test_transitions_counter(self):
        d = ClockDomain(0, (0,), 1.7)
        d.transitions += 1
        assert d.clone().transitions == 1
