"""The online decision service: protocol, server, client, replay.

The heart of this suite is the bit-identical contract: a live
``DecisionService`` fed a recorded epoch trace must return exactly the
decisions the offline ``DvfsSimulation`` made - across designs, after
shed-and-resend, and with other sessions misbehaving around it.

Servers run on a private event loop in a daemon thread, bound to
ephemeral ports, so tests neither collide nor leak.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.config import small_config
from repro.runtime.cache import config_hash
from repro.runtime.executor import RetryPolicy, SweepTask, run_task
from repro.service import protocol as proto
from repro.service.client import (
    DecisionClient,
    ServiceError,
    ServiceShutdown,
    SessionRejected,
    check_health,
)
from repro.service.replay import load_replay_trace, replay_trace
from repro.service.server import DecisionService, ServiceConfig
from repro.telemetry import EpochTraceRecorder, TelemetryConfig, validate_trace_file


# ----------------------------------------------------------------------
# Harness

class ServerHandle:
    """A DecisionService running on its own loop in a daemon thread."""

    def __init__(self, config: ServiceConfig) -> None:
        self.service = DecisionService(config)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def health_port(self) -> int:
        port = self.service.health_port
        assert port is not None
        return port

    def counter(self, name: str) -> float:
        return self.service.registry.counter(name).value

    def shutdown(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        ).result(timeout=30)

    def stop(self) -> None:
        if not self.service._closed.is_set():
            self.shutdown()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def server():
    handle = ServerHandle(ServiceConfig(port=0, health_port=0))
    yield handle
    handle.stop()


def record_trace(path, design="PCSTALL", workload="dgemm", max_epochs=40):
    """Record a small replayable trace; returns (path, offline RunResult)."""
    config = small_config(n_cus=2, waves_per_cu=4)
    recorder = EpochTraceRecorder(TelemetryConfig(
        ring_size=0,
        jsonl_path=str(path),
        record_pc_attribution=False,
        record_observations=True,
    ))
    task = SweepTask(workload, design, config, scale=0.15,
                     max_epochs=max_epochs, oracle_sample_freqs=3,
                     collect_accuracy=True)
    with recorder:
        result = run_task(task, recorder=recorder)
    return str(path), result


@pytest.fixture(scope="module")
def pcstall_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "pcstall.jsonl"
    return record_trace(path)


def open_raw_session(port, trace):
    """A raw socket session (bypasses DecisionClient's conveniences)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    sock.settimeout(30)
    proto.send_frame(sock, {
        "type": "open",
        "protocol": proto.PROTOCOL_VERSION,
        "design": trace.design,
        "config": trace.sim_config_wire,
        "objective": trace.objective,
    })
    reply = proto.recv_frame(sock)
    assert reply is not None and reply["type"] == "open_ok", reply
    return sock, reply


# ----------------------------------------------------------------------
# Protocol unit tests

def test_frame_round_trip():
    message = {"type": "ping", "x": [1.5, -2.25e-17], "s": "επω"}
    frame = proto.encode_frame(message)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert proto.decode_payload(frame[4:]) == message


def test_frame_rejects_non_object_payload():
    with pytest.raises(proto.ProtocolError):
        proto.decode_payload(b"[1, 2, 3]")
    with pytest.raises(proto.ProtocolError):
        proto.decode_payload(b"not json")


def test_epoch_result_wire_round_trip(pcstall_trace):
    import json

    path, _ = pcstall_trace
    trace = load_replay_trace(path)
    for obs in trace.observations[:5]:
        result = proto.epoch_result_from_wire(obs["result"])
        # Re-encoding a decoded result reproduces the wire form exactly
        # (floats round-trip bit-for-bit through JSON repr).
        from repro.telemetry.schema import epoch_result_to_wire

        again = json.loads(json.dumps(epoch_result_to_wire(result)))
        assert again == obs["result"]


def test_sim_config_wire_round_trip():
    from repro.telemetry.schema import sim_config_to_wire

    config = small_config(n_cus=4, waves_per_cu=8, cus_per_domain=2)
    rebuilt = proto.sim_config_from_wire(sim_config_to_wire(config))
    assert rebuilt == config
    assert config_hash(rebuilt) == config_hash(config)


def test_sim_config_from_wire_rejects_unknown_fields():
    from repro.telemetry.schema import sim_config_to_wire

    wire = sim_config_to_wire(small_config(n_cus=2, waves_per_cu=4))
    wire["gpu"]["from_the_future"] = 1
    with pytest.raises(proto.ProtocolError):
        proto.sim_config_from_wire(wire)


@pytest.mark.parametrize("name,expect", [
    ("", type(None)),
    ("EDP", "EDP"),
    ("ED2P", "ED2P"),
    ("ed2p", "ED2P"),
    ("ENERGY@5%", "ENERGY@5%"),
    ("cap5", "ENERGY@5%"),
    ("QOS@1000", "QOS@1000"),
    ("STATIC@1.7GHz", "STATIC@1.7GHz"),
])
def test_objective_from_name(name, expect):
    objective = proto.objective_from_name(name)
    if expect is type(None):
        assert objective is None
    else:
        assert objective.name == expect


def test_objective_from_name_rejects_garbage():
    with pytest.raises(proto.ProtocolError):
        proto.objective_from_name("MAXIMIZE_VIBES")


# ----------------------------------------------------------------------
# Trace recording (the telemetry side of the contract)

def test_observation_records_validate_and_stay_out_of_ring(tmp_path):
    path = tmp_path / "obs.jsonl"
    config = small_config(n_cus=2, waves_per_cu=4)
    recorder = EpochTraceRecorder(TelemetryConfig(
        ring_size=4096, jsonl_path=str(path), record_observations=True,
    ))
    task = SweepTask("dgemm", "PCSTALL", config, scale=0.15, max_epochs=10,
                     oracle_sample_freqs=3, collect_accuracy=True)
    with recorder:
        run_task(task, recorder=recorder)

    counts = validate_trace_file(path)
    assert counts["observation"] == counts["epoch"]
    assert counts["run"] == 1
    # Observations are stream-only: none in the ring, none counted.
    assert not any(r["type"] == "observation" for r in recorder.records)
    assert recorder.dropped == 0


def test_record_observations_requires_jsonl():
    with pytest.raises(ValueError, match="jsonl_path"):
        TelemetryConfig(record_observations=True)


def test_load_replay_trace_needs_observations(tmp_path):
    path = tmp_path / "plain.jsonl"
    config = small_config(n_cus=2, waves_per_cu=4)
    recorder = EpochTraceRecorder(TelemetryConfig(
        ring_size=0, jsonl_path=str(path), record_pc_attribution=False,
    ))
    task = SweepTask("dgemm", "PCSTALL", config, scale=0.15, max_epochs=5,
                     oracle_sample_freqs=3, collect_accuracy=True)
    with recorder:
        run_task(task, recorder=recorder)
    with pytest.raises(ValueError, match="--observations"):
        load_replay_trace(str(path))


# ----------------------------------------------------------------------
# The correctness anchor: bit-identical online replay

@pytest.mark.parametrize("design", ["PCSTALL", "CRISP", "ACCREAC", "STATIC@1.7"])
def test_replay_bit_identical(tmp_path, server, design):
    path, _ = record_trace(tmp_path / f"{design.replace('@', '_')}.jsonl",
                           design=design, max_epochs=30)
    report = replay_trace(path, port=server.port)
    assert report.bit_identical, report.render()
    assert report.decisions_compared == report.epochs_streamed > 0


def test_replay_cli_exit_codes(server, pcstall_trace):
    from repro.cli import main

    path, _ = pcstall_trace
    assert main(["replay", path, "--port", str(server.port)]) == 0


def test_open_mirrors_offline_first_decision(server, pcstall_trace):
    path, _ = pcstall_trace
    trace = load_replay_trace(path)
    with DecisionClient(port=server.port).connect() as client:
        decision = client.open_session(trace.design, trace.sim_config_wire,
                                       objective=trace.objective)
        assert decision == trace.chosen[0]
        assert client.n_domains == trace.n_domains


# ----------------------------------------------------------------------
# Session and error semantics

def test_oracle_design_rejected(server):
    with DecisionClient(port=server.port).connect() as client:
        with pytest.raises(SessionRejected) as excinfo:
            client.open_session("ORACLE", small_config(n_cus=2, waves_per_cu=4))
        assert excinfo.value.code == "unservable_design"


def test_unknown_design_rejected(server):
    with DecisionClient(port=server.port).connect() as client:
        with pytest.raises(SessionRejected) as excinfo:
            client.open_session("NOPE", small_config(n_cus=2, waves_per_cu=4))
        assert excinfo.value.code == "bad_open"


def test_out_of_order_epoch_rejected_without_state_change(server, pcstall_trace):
    path, _ = pcstall_trace
    trace = load_replay_trace(path)
    with DecisionClient(port=server.port).connect() as client:
        client.open_session(trace.design, trace.sim_config_wire,
                            objective=trace.objective)
        with pytest.raises(ServiceError, match="out_of_order"):
            client.observe(7, trace.observations[7]["result"],
                           truth_lines=trace.observations[7]["truth"])
        # The rejection changed nothing: the expected epoch still works
        # and the decision still matches the offline run.
        decision = client.observe(0, trace.observations[0]["result"],
                                  truth_lines=trace.observations[0]["truth"])
        assert decision == trace.chosen[1]
    assert server.counter("service_out_of_order") == 1


def test_session_cap_rejects_then_recovers(pcstall_trace):
    handle = ServerHandle(ServiceConfig(port=0, health_port=None, max_sessions=1))
    try:
        path, _ = pcstall_trace
        trace = load_replay_trace(path)
        with DecisionClient(port=handle.port).connect() as first:
            first.open_session(trace.design, trace.sim_config_wire,
                               objective=trace.objective)
            with DecisionClient(port=handle.port).connect() as second:
                with pytest.raises(SessionRejected) as excinfo:
                    second.open_session(trace.design, trace.sim_config_wire,
                                        objective=trace.objective)
                assert excinfo.value.code == "capacity"
        # First session closed; capacity is available again.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                with DecisionClient(port=handle.port).connect() as third:
                    third.open_session(trace.design, trace.sim_config_wire,
                                       objective=trace.objective)
                break
            except SessionRejected:
                time.sleep(0.02)
        else:
            pytest.fail("capacity never freed after session close")
        assert handle.counter("service_rejects") >= 1
    finally:
        handle.stop()


def test_ping_and_orderly_close(server, pcstall_trace):
    path, _ = pcstall_trace
    trace = load_replay_trace(path)
    client = DecisionClient(port=server.port).connect()
    client.open_session(trace.design, trace.sim_config_wire,
                        objective=trace.objective)
    client.ping()
    client.close()
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if server.counter("service_sessions_closed") >= 1:
            break
        time.sleep(0.02)
    assert server.counter("service_sessions_closed") >= 1
    assert server.counter("service_disconnects") == 0


# ----------------------------------------------------------------------
# Fault injection: disconnects and slow consumers

def test_abrupt_disconnect_leaves_server_serving(server, pcstall_trace):
    path, _ = pcstall_trace
    trace = load_replay_trace(path)

    sock, _ = open_raw_session(server.port, trace)
    for epoch in range(3):
        obs = trace.observations[epoch]
        proto.send_frame(sock, {"type": "observe", "seq": epoch, "epoch": epoch,
                                "result": obs["result"], "truth": obs["truth"]})
        reply = proto.recv_frame(sock)
        assert reply is not None and reply["type"] == "decision"
    sock.close()  # vanish mid-session, no goodbye

    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if server.counter("service_disconnects") >= 1:
            break
        time.sleep(0.02)
    assert server.counter("service_disconnects") >= 1

    # The server is unharmed: a full replay is still bit-identical.
    report = replay_trace(path, port=server.port)
    assert report.bit_identical, report.render()


def test_slow_consumer_is_shed_then_recovers_bit_identical(pcstall_trace):
    handle = ServerHandle(ServiceConfig(port=0, health_port=None, max_inflight=2))
    try:
        path, _ = pcstall_trace
        trace = load_replay_trace(path)
        n_epochs = len(trace.observations)
        sock, open_reply = open_raw_session(handle.port, trace)
        decisions = {0: open_reply["decision"]}

        # One sendall of every observation at once: the reader drains
        # them from its buffer without yielding to the batch worker, so
        # everything past the inflight cap is deterministically shed.
        burst = b"".join(
            proto.encode_frame({
                "type": "observe", "seq": epoch, "epoch": epoch,
                "result": trace.observations[epoch]["result"],
                "truth": trace.observations[epoch]["truth"],
            })
            for epoch in range(n_epochs)
        )
        sock.sendall(burst)

        # Each burst frame earns exactly one reply: a decision (admitted
        # in order), a shed (over the inflight cap), or an out_of_order
        # error (admitted after earlier frames were shed - the epoch
        # guard rejects it without touching state). Shed and errored
        # epochs both just need an in-order resend.
        shed, resend, decided = set(), set(), set()
        for _ in range(n_epochs):
            reply = proto.recv_frame(sock)
            assert reply is not None
            if reply["type"] == "shed":
                shed.add(reply["seq"])
                resend.add(reply["seq"])
            elif reply["type"] == "error":
                assert reply["code"] == "out_of_order", reply
                resend.add(reply["seq"])
            else:
                assert reply["type"] == "decision", reply
                decisions[reply["epoch"]] = reply["decision"]
                decided.add(reply["seq"])
        assert shed, "burst past the inflight cap must shed something"
        assert decided, "admitted observations must still be decided"

        # Recovery: resend every undecided epoch in order, lock-step.
        # The server's expected-epoch guard makes the resends exact.
        for epoch in sorted(resend):
            for attempt in range(50):
                obs = trace.observations[epoch]
                proto.send_frame(sock, {
                    "type": "observe", "seq": 1000 + epoch, "epoch": epoch,
                    "result": obs["result"], "truth": obs["truth"],
                })
                reply = proto.recv_frame(sock)
                assert reply is not None
                if reply["type"] == "shed":
                    time.sleep(0.01)
                    continue
                assert reply["type"] == "decision", reply
                decisions[reply["epoch"]] = reply["decision"]
                break
            else:
                pytest.fail(f"epoch {epoch} still shed after 50 resends")
        sock.close()

        assert handle.counter("service_shed") >= len(shed)
        # Every offline decision was reproduced despite the shedding.
        for epoch in range(n_epochs):
            assert decisions[epoch] == trace.chosen[epoch], f"epoch {epoch}"
    finally:
        handle.stop()


# ----------------------------------------------------------------------
# Graceful shutdown

def test_graceful_shutdown_drains_and_notifies(pcstall_trace):
    handle = ServerHandle(ServiceConfig(port=0, health_port=None))
    try:
        path, _ = pcstall_trace
        trace = load_replay_trace(path)
        sock, _ = open_raw_session(handle.port, trace)
        for epoch in range(3):
            obs = trace.observations[epoch]
            proto.send_frame(sock, {"type": "observe", "seq": epoch,
                                    "epoch": epoch, "result": obs["result"],
                                    "truth": obs["truth"]})
            reply = proto.recv_frame(sock)
            assert reply is not None and reply["type"] == "decision"

        # One more observation in flight while shutdown runs: depending
        # on timing it is decided (drained), shed as draining, or beaten
        # by the shutdown notice - all legal; a hang is not.
        obs = trace.observations[3]
        proto.send_frame(sock, {"type": "observe", "seq": 3, "epoch": 3,
                                "result": obs["result"], "truth": obs["truth"]})
        handle.shutdown()

        saw_shutdown = False
        while True:
            reply = proto.recv_frame(sock)
            if reply is None:
                break
            if reply["type"] == "decision":
                assert reply["decision"] == trace.chosen[4]
            elif reply["type"] == "shutdown":
                saw_shutdown = True
            else:
                assert reply["type"] == "shed", reply
        sock.close()
        assert saw_shutdown, "clients must be told the server is going away"
        assert handle.counter("service_drain_clean") == 1
        assert handle.counter("service_drain_timeout") == 0
    finally:
        handle.stop()


def test_open_rejected_while_draining(server):
    port = server.port  # the listener closes on shutdown; resolve first
    server.shutdown()
    with pytest.raises((SessionRejected, ServiceShutdown, OSError)):
        client = DecisionClient(
            port=port,
            retry=RetryPolicy(max_attempts=1),
        ).connect()
        client.open_session("PCSTALL", small_config(n_cus=2, waves_per_cu=4))


# ----------------------------------------------------------------------
# Health and metrics endpoints

def test_healthz_and_metrics(server, pcstall_trace):
    body = check_health(port=server.health_port)
    assert body["http_status"] == 200
    assert body["status"] == "ok"

    path, _ = pcstall_trace
    replay_trace(path, port=server.port)

    import http.client
    import json

    conn = http.client.HTTPConnection("127.0.0.1", server.health_port, timeout=5)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        assert response.status == 200
        snapshot = json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()
    assert snapshot["counters"]["service_decisions"] > 0
    assert snapshot["counters"]["service_sessions_opened"] >= 1
    assert "service_batch_size" in snapshot["histograms"]

    conn = http.client.HTTPConnection("127.0.0.1", server.health_port, timeout=5)
    try:
        conn.request("GET", "/nope")
        assert conn.getresponse().status == 404
    finally:
        conn.close()


# ----------------------------------------------------------------------
# The CLI entry points, end to end (subprocess + signals)

def test_serve_subprocess_sigterm_drains(tmp_path, pcstall_trace):
    import os
    import re
    import signal
    import subprocess
    import sys

    path, _ = pcstall_trace
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--health-port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    try:
        assert process.stdout is not None
        banner = process.stdout.readline()
        match = re.search(r"listening on 127\.0\.0\.1:(\d+), health on :(\d+)",
                          banner)
        assert match, f"unexpected banner: {banner!r}"
        port, health_port = int(match.group(1)), int(match.group(2))

        from repro.service.client import wait_until_healthy

        wait_until_healthy(port=health_port, timeout_s=15.0)
        report = replay_trace(path, port=port)
        assert report.bit_identical, report.render()

        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
        assert process.returncode == 0, out
        assert "drained:" in out
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
