"""Co-located multi-tenant execution."""

import pytest

from dataclasses import replace

from repro.config import small_config
from repro.core import EDnPObjective
from repro.dvfs.colocation import ColocationSimulation, Tenant
from repro.dvfs.designs import make_controller
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.workloads import build_workload, workload

from helpers import make_loop_program


@pytest.fixture
def cfg():
    return small_config(n_cus=4, waves_per_cu=8)


def tenants(cfg, scale=0.1):
    compute = build_workload(workload("hacc"), scale=scale)
    memory = build_workload(workload("xsbench"), scale=scale)
    return [
        Tenant("compute", compute, (0, 1)),
        Tenant("memory", memory, (2, 3)),
    ]


class TestPinnedDispatch:
    def test_kernel_pinned_to_subset(self, cfg):
        gpu = Gpu(cfg.gpu, 1.7)
        prog = make_loop_program(trips=50)
        gpu.load_kernel(Kernel.homogeneous(prog, WorkgroupGeometry(4, 2)), cu_ids=(1,))
        assert gpu.cus[0].idle
        assert not gpu.cus[1].idle

    def test_invalid_cu_rejected(self, cfg):
        gpu = Gpu(cfg.gpu, 1.7)
        prog = make_loop_program(trips=5)
        with pytest.raises(ValueError):
            gpu.load_kernel(Kernel.homogeneous(prog, WorkgroupGeometry(1, 1)), cu_ids=(99,))

    def test_concurrent_kernels_unique_workgroups(self, cfg):
        """Two kernels loaded at once must not collide in barrier
        bookkeeping (globally unique workgroup ids)."""
        gpu = Gpu(cfg.gpu, 1.7)
        prog = make_loop_program(trips=30, with_barrier=True)
        gpu.load_kernel(Kernel.homogeneous(prog, WorkgroupGeometry(2, 2)), cu_ids=(0,))
        gpu.load_kernel(Kernel.homogeneous(prog, WorkgroupGeometry(2, 2)), cu_ids=(0,))
        for _ in range(500):
            if gpu.done:
                break
            gpu.run_epoch(1000.0)
        assert gpu.done


class TestColocationSimulation:
    def test_rejects_overlapping_tenants(self, cfg):
        ks = build_workload(workload("comd"), scale=0.05)
        with pytest.raises(ValueError):
            ColocationSimulation(
                [Tenant("a", ks, (0, 1)), Tenant("b", ks, (1, 2))],
                make_controller("STATIC@1.7", cfg),
                cfg,
            )

    def test_runs_to_completion(self, cfg):
        sim = ColocationSimulation(
            tenants(cfg), make_controller("STATIC@1.7", cfg), cfg, max_epochs=800
        )
        r = sim.run()
        assert set(r.completion_ns) == {"compute", "memory"}
        assert r.delay_ns == max(r.completion_ns.values())
        assert r.energy.total > 0

    def test_per_cu_dvfs_tunes_tenants_independently(self, cfg):
        """With per-CU domains, the compute tenant's CUs should run
        faster on average than the memory tenant's CUs."""
        ctrl = make_controller("PCSTALL", cfg, EDnPObjective(2))
        sim = ColocationSimulation(tenants(cfg, scale=0.15), ctrl, cfg, max_epochs=800)
        sim.run()
        freqs = ctrl.log.chosen_freqs
        mean_compute = sum(e[0] + e[1] for e in freqs) / (2 * len(freqs))
        mean_memory = sum(e[2] + e[3] for e in freqs) / (2 * len(freqs))
        assert mean_compute > mean_memory

    def test_fine_domains_beat_coarse_for_colocation(self, cfg):
        """The Fig 18b effect, made visible by heterogeneous tenants:
        per-CU domains achieve lower ED2P than one chip-wide domain."""

        def run(cus_per_domain):
            c = replace(cfg, gpu=replace(cfg.gpu, cus_per_domain=cus_per_domain))
            ctrl = make_controller("PCSTALL", c, EDnPObjective(2))
            return ColocationSimulation(
                tenants(c, scale=0.15), ctrl, c, max_epochs=800
            ).run()

        fine = run(1)
        coarse = run(4)
        assert fine.ed2p < coarse.ed2p
