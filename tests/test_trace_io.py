"""Trace/run export and import."""

import pytest

from repro.analysis.phases import profile_sensitivity
from repro.analysis.trace_io import (
    load_run_json,
    load_trace_csv,
    run_result_to_dict,
    save_run_json,
    save_trace_csv,
    trace_to_rows,
)
from repro.config import small_config
from repro.dvfs.designs import make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.workloads import build_workload, workload


@pytest.fixture(scope="module")
def cfg():
    return small_config(n_cus=2, waves_per_cu=4)


@pytest.fixture(scope="module")
def run_result(cfg):
    kernels = build_workload(workload("comd"), scale=0.1)
    ctrl = make_controller("PCSTALL", cfg)
    return DvfsSimulation(kernels, ctrl, cfg, max_epochs=100, collect_accuracy=True,
                          oracle_sample_freqs=3).run()


@pytest.fixture(scope="module")
def trace(cfg):
    kernels = build_workload(workload("comd"), scale=0.1)
    return profile_sensitivity(kernels, cfg, max_epochs=6, workload_name="comd")


class TestRunJson:
    def test_dict_contains_metrics(self, run_result):
        d = run_result_to_dict(run_result)
        assert d["design"] == "PCSTALL"
        assert d["ed2p"] == pytest.approx(run_result.ed2p)
        assert abs(sum(d["frequency_residency"].values()) - 1.0) < 1e-6

    def test_round_trip(self, run_result, tmp_path):
        path = tmp_path / "run.json"
        save_run_json(run_result, path)
        loaded = load_run_json(path)
        assert loaded["total_committed"] == run_result.total_committed
        assert loaded["energy"]["total"] == pytest.approx(run_result.energy.total)


class TestRunJsonMeta:
    def test_meta_embedded_and_strict_round_trip(self, run_result, cfg, tmp_path):
        from repro.runtime.cache import config_hash
        from repro.telemetry import TRACE_SCHEMA_VERSION

        path = tmp_path / "run.json"
        save_run_json(run_result, path, config=cfg)
        loaded = load_run_json(path, strict=True)
        meta = loaded["meta"]
        assert meta["schema_version"] == TRACE_SCHEMA_VERSION
        assert meta["config_hash"] == config_hash(cfg)
        assert meta["engine"] == cfg.gpu.engine
        import repro

        assert meta["repro_version"] == repro.__version__

    def test_strict_load_rejects_missing_meta(self, run_result, tmp_path):
        import json

        path = tmp_path / "legacy.json"
        d = run_result_to_dict(run_result)
        d.pop("meta")
        path.write_text(json.dumps(d))
        with pytest.raises(ValueError):
            load_run_json(path, strict=True)
        assert load_run_json(path)["design"] == "PCSTALL"  # lenient default

    def test_strict_load_rejects_wrong_schema_version(self, run_result, tmp_path):
        import json

        path = tmp_path / "future.json"
        d = run_result_to_dict(run_result)
        d["meta"]["schema_version"] = 999
        path.write_text(json.dumps(d))
        with pytest.raises(ValueError, match="schema version"):
            load_run_json(path, strict=True)


class TestTraceCsv:
    def test_rows_cover_all_levels(self, trace):
        rows = trace_to_rows(trace)
        levels = {r[1] for r in rows}
        assert levels == {"cu", "domain", "wf"}

    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert len(loaded) == len(trace_to_rows(trace))
        cu_rows = [r for r in loaded if r["level"] == "cu"]
        assert cu_rows[0]["slope"] == pytest.approx(trace.epochs[0].cu_slopes[0])

    def test_commits_parsed(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        wf_rows = [r for r in loaded if r["level"] == "wf"]
        assert all(isinstance(r["commits"], int) for r in wf_rows)
        domain_rows = [r for r in loaded if r["level"] == "domain"]
        assert all(r["commits"] is None for r in domain_rows)
