"""Whole-GPU: epoch stepping, domains, transitions, snapshot replay."""

import pytest

from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


def loaded_gpu(config, trips=100, n_workgroups=4):
    gpu = Gpu(config.gpu, initial_freq_ghz=1.7)
    prog = make_loop_program(trips=trips)
    gpu.load_kernel(Kernel.homogeneous(prog, WorkgroupGeometry(n_workgroups, 2)))
    return gpu


class TestEpochStepping:
    def test_time_advances_by_epoch(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        gpu.run_epoch(1000.0)
        assert gpu.time == pytest.approx(1000.0)
        gpu.run_epoch(500.0)
        assert gpu.time == pytest.approx(1500.0)

    def test_epoch_result_structure(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        r = gpu.run_epoch(1000.0)
        assert len(r.cu_stats) == tiny_config.gpu.n_cus
        assert len(r.wave_records) == tiny_config.gpu.n_cus
        assert r.total_committed() > 0
        assert r.duration_ns == pytest.approx(1000.0)

    def test_run_to_completion(self, tiny_config):
        gpu = loaded_gpu(tiny_config, trips=30)
        results = gpu.run_to_completion(1000.0)
        assert gpu.done
        assert results
        assert gpu.completion_time > 0.0

    def test_workgroups_distributed_round_robin(self, tiny_config):
        gpu = loaded_gpu(tiny_config, n_workgroups=4)
        per_cu = [cu.resident_wave_count for cu in gpu.cus]
        assert per_cu == [4, 4]

    def test_wave_records_have_pcs(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        gpu.run_epoch(1000.0)
        r = gpu.run_epoch(1000.0)
        recs = [rec for cu in r.wave_records for rec in cu]
        assert recs
        assert any(rec.start_pc_idx > 0 for rec in recs)


class TestFrequencyControl:
    def test_set_frequencies_applies_to_cus(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        gpu.set_domain_frequencies([1.3, 2.2])
        assert gpu.cus[0].frequency_ghz == pytest.approx(1.3)
        assert gpu.cus[1].frequency_ghz == pytest.approx(2.2)

    def test_change_count_returned(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        assert gpu.set_domain_frequencies([1.3, 1.7]) == 1
        assert gpu.set_domain_frequencies([1.3, 1.7]) == 0

    def test_wrong_length_rejected(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        with pytest.raises(ValueError):
            gpu.set_domain_frequencies([1.7])

    def test_transition_latency_freezes_cu(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        gpu.set_domain_frequencies([2.2, 1.7], transition_latency_ns=100.0)
        r = gpu.run_epoch(1000.0)
        # CU0 lost 100ns; CU1 (unchanged) did not.
        assert gpu.cus[0].now == pytest.approx(1000.0)

    def test_transitions_recorded_in_result(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        gpu.set_domain_frequencies([1.3, 2.2])
        r = gpu.run_epoch(1000.0)
        assert r.transitions == 2
        r2 = gpu.run_epoch(1000.0)
        assert r2.transitions == 0

    def test_frequencies_in_result(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        gpu.set_domain_frequencies([1.5, 1.9])
        r = gpu.run_epoch(1000.0)
        assert r.frequencies_ghz == (1.5, 1.9)

    def test_higher_frequency_commits_more(self, tiny_config):
        lo = loaded_gpu(tiny_config, trips=5000)
        hi = loaded_gpu(tiny_config, trips=5000)
        lo.set_domain_frequencies([1.3, 1.3])
        hi.set_domain_frequencies([2.2, 2.2])
        assert hi.run_epoch(1000.0).total_committed() > lo.run_epoch(1000.0).total_committed()


class TestDomains:
    def test_multi_cu_domain(self):
        from repro.config import GpuConfig, MemoryConfig

        cfg = GpuConfig(n_cus=4, waves_per_cu=4, cus_per_domain=2, memory=MemoryConfig(n_l2_banks=2))
        gpu = Gpu(cfg, 1.7)
        gpu.set_domain_frequencies([1.3, 2.2])
        assert [cu.frequency_ghz for cu in gpu.cus] == [1.3, 1.3, 2.2, 2.2]

    def test_committed_per_domain_aggregates(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        r = gpu.run_epoch(1000.0)
        per_domain = gpu.committed_per_domain(r)
        assert sum(per_domain) == r.total_committed()


class TestSnapshot:
    def test_clone_replays_bit_identically(self, quad_config):
        gpu = loaded_gpu(quad_config, trips=500)
        gpu.run_epoch(1000.0)
        snap = gpu.clone()
        a = gpu.run_epoch(1000.0)
        b = snap.run_epoch(1000.0)
        assert a.committed_per_cu() == b.committed_per_cu()
        assert [s.stall_ns for cu in a.wave_records for s in (r.stats for r in cu)] == [
            s.stall_ns for cu in b.wave_records for s in (r.stats for r in cu)
        ]

    def test_clone_with_different_frequency_diverges(self, quad_config):
        gpu = loaded_gpu(quad_config, trips=5000)
        gpu.run_epoch(1000.0)
        snap = gpu.clone()
        snap.set_domain_frequencies([2.2] * 4)
        a = gpu.run_epoch(1000.0)
        b = snap.run_epoch(1000.0)
        assert b.total_committed() > a.total_committed()

    def test_clone_does_not_mutate_original(self, tiny_config):
        gpu = loaded_gpu(tiny_config)
        t = gpu.time
        snap = gpu.clone()
        snap.run_epoch(1000.0)
        assert gpu.time == t
