"""Benchmark suite: report schema, baseline gate, CLI plumbing."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BENCHMARK_NAMES,
    compare_reports,
    load_bench_json,
    run_benchmarks,
    save_bench_json,
    validate_bench_report,
)
from repro.cli import main


@pytest.fixture(scope="module")
def quick_report():
    """One real (tiny) bench run shared by the schema/gate tests."""
    return run_benchmarks(quick=True, only=["core_engine", "predictor_update"],
                          repeats=1)


class TestReportSchema:
    def test_quick_run_validates(self, quick_report):
        validate_bench_report(quick_report)
        assert quick_report["bench_schema_version"] == BENCH_SCHEMA_VERSION
        assert quick_report["suite"] == "quick"
        assert set(quick_report["results"]) == {"core_engine", "predictor_update"}

    def test_results_carry_throughputs_and_hotpath(self, quick_report):
        core = quick_report["results"]["core_engine"]
        assert core["instr_per_sec"] > 0
        assert 0.0 <= core["batched_issue_ratio"] <= 1.0
        assert core["hotpath"]["batched_instructions"] > 0
        assert core["config_hash"]
        # predictor_update has no meaningful instruction throughput.
        assert quick_report["results"]["predictor_update"]["instr_per_sec"] is None

    def test_save_load_round_trip(self, quick_report, tmp_path):
        path = save_bench_json(quick_report, tmp_path / "BENCH_test.json")
        assert load_bench_json(path) == json.loads(path.read_text())

    def test_wrong_schema_version_rejected(self, quick_report):
        bad = dict(quick_report, bench_schema_version=BENCH_SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="schema version"):
            validate_bench_report(bad)

    def test_missing_result_field_rejected(self, quick_report):
        bad = copy.deepcopy(quick_report)
        del bad["results"]["core_engine"]["instr_per_sec"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_bench_report(bad)

    def test_unknown_benchmark_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmarks(only=["not_a_bench"])

    def test_registry_names_stable(self):
        assert BENCHMARK_NAMES == ("core_engine", "issue_scan", "oracle_sampling",
                                   "predictor_update", "end_to_end")


class TestBaselineGate:
    def test_identical_reports_pass(self, quick_report):
        cmp = compare_reports(quick_report, quick_report, gate=0.20)
        assert cmp.ok
        assert not cmp.missing_in_current and not cmp.missing_in_baseline

    def test_synthetic_regression_fails_the_gate(self, quick_report):
        slower = copy.deepcopy(quick_report)
        core = slower["results"]["core_engine"]
        core["instr_per_sec"] = core["instr_per_sec"] * 0.5
        cmp = compare_reports(slower, quick_report, gate=0.20)
        assert not cmp.ok
        assert [(d.bench, d.metric) for d in cmp.regressions] == [
            ("core_engine", "instr_per_sec")
        ]
        assert "REGRESSED" in cmp.render()

    def test_drop_within_gate_passes(self, quick_report):
        slightly = copy.deepcopy(quick_report)
        core = slightly["results"]["core_engine"]
        core["instr_per_sec"] = core["instr_per_sec"] * 0.85
        assert compare_reports(slightly, quick_report, gate=0.20).ok

    def test_renamed_benchmark_is_listed_not_failed(self, quick_report):
        renamed = copy.deepcopy(quick_report)
        res = renamed["results"].pop("predictor_update")
        renamed["results"]["predictor_update_v2"] = dict(res, name="predictor_update_v2")
        cmp = compare_reports(renamed, quick_report, gate=0.20)
        assert cmp.ok
        assert cmp.missing_in_current == ["predictor_update"]
        assert cmp.missing_in_baseline == ["predictor_update_v2"]

    def test_bad_gate_rejected(self, quick_report):
        with pytest.raises(ValueError, match="gate"):
            compare_reports(quick_report, quick_report, gate=1.5)


class TestCli:
    def test_bench_writes_report_and_gates_against_itself(self, tmp_path, capsys):
        path = tmp_path / "BENCH_ci.json"
        assert main(["bench", "--quick", "--only", "predictor_update",
                     "--repeats", "1", "--quiet", "--json", str(path)]) == 0
        report = load_bench_json(path)
        assert set(report["results"]) == {"predictor_update"}
        assert main(["bench", "--quick", "--only", "predictor_update",
                     "--repeats", "1", "--quiet", "--against", str(path)]) == 0
        out = capsys.readouterr().out
        assert "baseline comparison" in out

    def test_bench_fails_on_regression(self, tmp_path, capsys):
        path = tmp_path / "BENCH_base.json"
        report = run_benchmarks(quick=True, only=["predictor_update"], repeats=1)
        inflated = copy.deepcopy(report)
        extra = inflated["results"]["predictor_update"]["extra"]
        # Gate on a metric the next run cannot possibly reach.
        inflated["results"]["predictor_update"]["batched_issue_ratio"] = 100.0
        assert extra is not None
        save_bench_json(inflated, path)
        assert main(["bench", "--quick", "--only", "predictor_update",
                     "--repeats", "1", "--quiet", "--against", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_committed_baseline_is_valid(self):
        import pathlib

        base = pathlib.Path(__file__).parent.parent / "benchmarks" / "baselines"
        for f in sorted(base.glob("BENCH_*.json")):
            load_bench_json(f)
