"""TABLE I storage-overhead model."""

import pytest

from repro.core.hardware import (
    STORAGE_TABLE,
    crisp_storage,
    pcstall_storage,
    stall_storage,
    storage_overhead_bytes,
)


class TestPcstallStorage:
    def test_paper_total_328_bytes(self):
        assert storage_overhead_bytes("PCSTALL") == 328

    def test_components_match_table1(self):
        b = pcstall_storage()
        assert b.components["sensitivity_table"] == 128
        assert b.components["starting_pc_registers"] == 40
        assert b.components["stall_time_registers"] == 160

    def test_scales_with_geometry(self):
        small = pcstall_storage(n_entries=64, waves_per_cu=20)
        assert small.total_bytes == 64 + 20 + 80


class TestOtherDesigns:
    def test_stall_is_smallest(self):
        sizes = {name: b.total_bytes for name, b in STORAGE_TABLE.items()}
        assert sizes["STALL"] == min(sizes.values())

    def test_ordering_stall_lead_crit_crisp(self):
        assert (
            storage_overhead_bytes("STALL")
            < storage_overhead_bytes("LEAD")
            < storage_overhead_bytes("CRIT")
            < storage_overhead_bytes("CRISP")
        )

    def test_stall_single_register(self):
        assert stall_storage().total_bytes == 4

    def test_crisp_larger_than_crit(self):
        assert crisp_storage().total_bytes > storage_overhead_bytes("CRIT")

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            storage_overhead_bytes("NOPE")

    def test_all_designs_listed(self):
        assert set(STORAGE_TABLE) == {"PCSTALL", "CRISP", "CRIT", "LEAD", "STALL"}
