"""Predictors: reactive last-value, PC-based lookup/update, oracle-fed."""

import pytest

from repro.config import GpuConfig, MemoryConfig
from repro.core.estimators import StallModel, WavefrontStallModel
from repro.core.pc_table import PCTableConfig
from repro.core.predictors import (
    AccuratePCPredictor,
    AccurateReactivePredictor,
    ObserveContext,
    OraclePredictor,
    PCBasedPredictor,
    ReactivePredictor,
    StaticPredictor,
)
from repro.core.sensitivity import LinearSensitivity
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


@pytest.fixture
def gpu_config():
    return GpuConfig(n_cus=2, waves_per_cu=4, memory=MemoryConfig(n_l2_banks=2))


@pytest.fixture
def epoch_result(gpu_config):
    gpu = Gpu(gpu_config, 1.7)
    gpu.load_kernel(
        Kernel.homogeneous(make_loop_program(trips=2000), WorkgroupGeometry(4, 2))
    )
    gpu.run_epoch(1000.0)
    return gpu.run_epoch(1000.0)


def ctx(gpu_config, truth=None):
    return ObserveContext(config=gpu_config, f_lo_ghz=1.3, f_hi_ghz=2.2, true_domain_lines=truth)


class TestStaticPredictor:
    def test_always_none(self, epoch_result, gpu_config):
        p = StaticPredictor(2)
        p.observe(epoch_result, ctx(gpu_config))
        assert p.predict_domains() == [None, None]


class TestReactivePredictor:
    def test_no_prediction_before_first_epoch(self, gpu_config):
        p = ReactivePredictor(StallModel(), gpu_config)
        assert p.predict_domains() == [None, None]

    def test_last_value_semantics(self, epoch_result, gpu_config):
        p = ReactivePredictor(StallModel(), gpu_config)
        p.observe(epoch_result, ctx(gpu_config))
        first = p.predict_domains()
        assert all(line is not None for line in first)
        # Predicting again without new observation returns the same.
        again = p.predict_domains()
        assert [l.slope for l in again] == [l.slope for l in first]

    def test_prediction_positive_for_running_workload(self, epoch_result, gpu_config):
        p = ReactivePredictor(StallModel(), gpu_config)
        p.observe(epoch_result, ctx(gpu_config))
        for line in p.predict_domains():
            assert line.predict(1.7) > 0


class TestAccurateReactive:
    def test_requires_truth(self, epoch_result, gpu_config):
        p = AccurateReactivePredictor(gpu_config)
        with pytest.raises(ValueError):
            p.observe(epoch_result, ctx(gpu_config))

    def test_returns_given_truth(self, epoch_result, gpu_config):
        truth = [LinearSensitivity(100.0, 50.0), LinearSensitivity(10.0, 5.0)]
        p = AccurateReactivePredictor(gpu_config)
        p.observe(epoch_result, ctx(gpu_config, truth))
        out = p.predict_domains()
        assert out[0].slope == pytest.approx(50.0)
        assert out[1].slope == pytest.approx(5.0)


class TestPCBasedPredictor:
    def test_tables_per_cu_by_default(self, gpu_config):
        p = PCBasedPredictor(gpu_config)
        assert len(p.tables) == gpu_config.n_cus

    def test_shared_table(self, gpu_config):
        p = PCBasedPredictor(gpu_config, cus_per_table=2)
        assert len(p.tables) == 1
        assert p.table_for_cu(0) is p.table_for_cu(1)

    def test_rejects_bad_sharing(self, gpu_config):
        with pytest.raises(ValueError):
            PCBasedPredictor(gpu_config, cus_per_table=3)

    def test_observe_populates_tables(self, epoch_result, gpu_config):
        p = PCBasedPredictor(gpu_config)
        p.observe(epoch_result, ctx(gpu_config))
        assert any(t.updates > 0 for t in p.tables)

    def test_predicts_after_observe(self, epoch_result, gpu_config):
        p = PCBasedPredictor(gpu_config)
        p.observe(epoch_result, ctx(gpu_config))
        out = p.predict_domains()
        assert all(line is not None for line in out)

    def test_miss_falls_back_to_reactive(self, epoch_result, gpu_config):
        # Tiny 1-entry table with 0 offset: constant collisions and
        # misses; the fallback keeps predictions defined.
        p = PCBasedPredictor(
            gpu_config, table_config=PCTableConfig(n_entries=1, offset_bits=0)
        )
        p.observe(epoch_result, ctx(gpu_config))
        out = p.predict_domains()
        assert all(line is not None for line in out)

    def test_hit_ratio_reported(self, gpu_config):
        gpu = Gpu(gpu_config, 1.7)
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=3000), WorkgroupGeometry(4, 2))
        )
        p = PCBasedPredictor(gpu_config)
        for _ in range(10):
            r = gpu.run_epoch(1000.0)
            p.observe(r, ctx(gpu_config))
            p.predict_domains()
        assert p.hit_ratio() > 0.5


class TestAccuratePC:
    def test_requires_truth(self, epoch_result, gpu_config):
        p = AccuratePCPredictor(gpu_config)
        with pytest.raises(ValueError):
            p.observe(epoch_result, ctx(gpu_config))

    def test_distributes_truth_to_tables(self, epoch_result, gpu_config):
        truth = [LinearSensitivity(100.0, 40.0), LinearSensitivity(100.0, 40.0)]
        p = AccuratePCPredictor(gpu_config)
        p.observe(epoch_result, ctx(gpu_config, truth))
        out = p.predict_domains()
        # Sum of distributed per-wave lines approximates the truth.
        assert out[0].slope == pytest.approx(40.0, rel=0.3)


class TestOraclePredictor:
    def test_future_truth_returned(self):
        p = OraclePredictor(2)
        lines = [LinearSensitivity(1.0, 2.0), LinearSensitivity(3.0, 4.0)]
        p.set_future_truth(lines)
        assert p.predict_domains()[1].slope == pytest.approx(4.0)

    def test_rejects_wrong_length(self):
        p = OraclePredictor(2)
        with pytest.raises(ValueError):
            p.set_future_truth([LinearSensitivity(1.0, 1.0)])

    def test_flags(self):
        assert OraclePredictor(1).needs_future_truth
        assert not OraclePredictor(1).needs_elapsed_truth
