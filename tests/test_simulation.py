"""End-to-end DVFS simulation runs."""

import pytest

from repro.config import small_config
from repro.core.objectives import EDnPObjective, PerformanceCapObjective
from repro.dvfs.designs import make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


@pytest.fixture
def cfg():
    return small_config(n_cus=2, waves_per_cu=4)


def kernels(trips=1500, n=1):
    return [
        Kernel.homogeneous(
            make_loop_program(trips=trips, name=f"k{i}"), WorkgroupGeometry(4, 2)
        )
        for i in range(n)
    ]


def run(cfg, design, ks=None, **kw):
    ctrl = make_controller(design, cfg, EDnPObjective(2))
    sim = DvfsSimulation(ks or kernels(), ctrl, cfg, design_name=design,
                         max_epochs=300, oracle_sample_freqs=4, **kw)
    return sim.run()


class TestBasicRuns:
    def test_static_run_completes(self, cfg):
        r = run(cfg, "STATIC@1.7")
        assert r.epochs > 0
        assert r.delay_ns > 0
        assert r.energy.total > 0
        assert r.total_committed > 0

    def test_metrics_consistent(self, cfg):
        r = run(cfg, "STATIC@1.7")
        assert r.edp == pytest.approx(r.energy.total * r.delay_ns)
        assert r.ed2p == pytest.approx(r.energy.total * r.delay_ns**2)
        assert r.ednp(3) == pytest.approx(r.energy.total * r.delay_ns**3)

    def test_every_design_runs(self, cfg):
        for design in ("STALL", "CRISP", "ACCREAC", "PCSTALL", "ACCPC", "ORACLE"):
            r = run(cfg, design)
            assert r.epochs > 0, design

    def test_multi_kernel_workload(self, cfg):
        single = run(cfg, "STATIC@1.7", ks=kernels(n=1))
        double = run(cfg, "STATIC@1.7", ks=kernels(n=2))
        assert double.epochs > single.epochs

    def test_empty_kernel_list_rejected(self, cfg):
        with pytest.raises(ValueError):
            DvfsSimulation([], make_controller("STALL", cfg), cfg)

    def test_max_epochs_caps_run(self, cfg):
        ctrl = make_controller("STATIC@1.7", cfg)
        with pytest.warns(RuntimeWarning, match="truncated"):
            r = DvfsSimulation(kernels(trips=100_000), ctrl, cfg, max_epochs=5).run()
        assert r.epochs == 5


class TestCompletionSemantics:
    def test_completed_run_flagged_and_uses_retire_time(self, cfg):
        r = run(cfg, "STATIC@1.7")
        assert r.completed is True
        # Delay is the last retirement, which the final (partial) epoch
        # overshoots: it must be positive and within the epoch grid span.
        assert 0.0 < r.delay_ns <= r.epochs * cfg.dvfs.epoch_ns

    def test_truncated_run_flagged_with_window_delay(self, cfg):
        ctrl = make_controller("STATIC@1.7", cfg)
        with pytest.warns(RuntimeWarning, match="truncated"):
            r = DvfsSimulation(kernels(trips=100_000), ctrl, cfg, max_epochs=7).run()
        assert r.completed is False
        # A truncated run's delay is exactly the simulated window.
        assert r.delay_ns == pytest.approx(7 * cfg.dvfs.epoch_ns)

    def test_truncation_between_kernels_still_flagged(self, cfg):
        # max_epochs lands after kernel 1 finishes but before kernel 2
        # is dispatched & drained - still an incomplete workload.
        ctrl = make_controller("STATIC@1.7", cfg)
        probe = DvfsSimulation(kernels(n=1), ctrl, cfg, max_epochs=300).run()
        ctrl2 = make_controller("STATIC@1.7", cfg)
        with pytest.warns(RuntimeWarning, match="truncated"):
            r = DvfsSimulation(
                kernels(n=2), ctrl2, cfg, max_epochs=probe.epochs
            ).run()
        assert r.completed is False

    def test_completed_run_emits_no_warning(self, cfg, recwarn):
        run(cfg, "STATIC@1.7")
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]


class TestAccuracyTracking:
    def test_static_has_no_accuracy(self, cfg):
        assert run(cfg, "STATIC@1.7").prediction_accuracy is None

    def test_dynamic_designs_scored(self, cfg):
        for design in ("STALL", "PCSTALL"):
            acc = run(cfg, design).prediction_accuracy
            assert acc is not None
            assert 0.0 <= acc <= 1.0

    def test_oracle_accuracy_near_perfect(self, cfg):
        acc = run(cfg, "ORACLE").prediction_accuracy
        assert acc > 0.9

    def test_pc_hit_ratio_reported_for_pc_designs(self, cfg):
        assert run(cfg, "PCSTALL").pc_hit_ratio is not None
        assert run(cfg, "STALL").pc_hit_ratio is None


class TestResidencyAndTransitions:
    def test_residency_sums_to_one(self, cfg):
        r = run(cfg, "CRISP")
        assert sum(r.frequency_residency.values()) == pytest.approx(1.0)

    def test_static_never_transitions_after_start(self, cfg):
        r = run(cfg, "STATIC@1.7")
        # reference == 1.7, so not even an initial transition.
        assert r.total_transitions == 0

    def test_dynamic_design_transitions(self, cfg):
        r = run(cfg, "CRISP")
        assert r.total_transitions > 0


class TestObjectives:
    def test_performance_cap_objective_runs(self, cfg):
        ctrl = make_controller("PCSTALL", cfg, PerformanceCapObjective(0.05))
        r = DvfsSimulation(kernels(), ctrl, cfg, max_epochs=300).run()
        assert r.epochs > 0

    def test_cap_energy_below_max_frequency_static(self, cfg):
        capped = DvfsSimulation(
            kernels(), make_controller("PCSTALL", cfg, PerformanceCapObjective(0.10)),
            cfg, max_epochs=300,
        ).run()
        top = DvfsSimulation(
            kernels(), make_controller("STATIC@2.2", cfg), cfg, max_epochs=300
        ).run()
        assert capped.energy.total < top.energy.total


class TestOracleLifecycle:
    def test_oracle_pool_closed_on_mid_run_exception(self, cfg):
        """A raising controller must not leak the oracle's worker pool."""
        ctrl = make_controller("ORACLE", cfg, EDnPObjective(2))
        sim = DvfsSimulation(
            kernels(), ctrl, cfg, max_epochs=10,
            oracle_sample_freqs=3, oracle_workers=2,
        )
        calls = {"n": 0}
        original = ctrl.decide

        def exploding_decide():
            calls["n"] += 1
            if calls["n"] >= 3:
                raise RuntimeError("controller blew up mid-run")
            return original()

        ctrl.decide = exploding_decide
        with pytest.raises(RuntimeError, match="blew up"):
            sim.run()
        assert sim._oracle is not None
        assert sim._oracle._pool is None

    def test_oracle_pool_closed_after_clean_run(self, cfg):
        ctrl = make_controller("ORACLE", cfg, EDnPObjective(2))
        sim = DvfsSimulation(
            kernels(), ctrl, cfg, max_epochs=10,
            oracle_sample_freqs=3, oracle_workers=2,
        )
        sim.run()
        assert sim._oracle._pool is None

    def test_hotpath_counters_on_result(self, cfg):
        r = run(cfg, "ORACLE")
        hp = r.hotpath
        assert hp is not None
        assert hp["cycles"] > 0
        assert hp["waves_scanned"] > 0
        assert hp["oracle_samples"] == r.epochs
        assert hp["snapshots"] == r.epochs  # one capture per oracle fork
        assert hp["clone_bytes"] == 0  # scratch restores, no deep clones


class TestDeterminism:
    def test_same_run_reproduces(self, cfg):
        a = run(cfg, "PCSTALL")
        b = run(cfg, "PCSTALL")
        assert a.ed2p == pytest.approx(b.ed2p)
        assert a.epochs == b.epochs
        assert a.total_committed == b.total_committed
