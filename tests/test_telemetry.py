"""Telemetry subsystem: metrics, epoch recorder, exporters, accuracy.

The two contracts that matter most are pinned here:

* **Off means off** - a simulation without a recorder produces
  bit-identical results to one with a recorder attached, and never
  allocates a telemetry object (enforced by poisoning the constructors).
* **Mergeable** - registries merged from split runs equal a single
  run's registry, the property the parallel sweep runtime relies on.
"""

import json

import pytest

from repro.config import small_config
from repro.dvfs.designs import make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.telemetry import (
    TRACE_SCHEMA_VERSION,
    AccuracyReport,
    Counter,
    EpochTraceRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryConfig,
    build_meta,
    check_meta,
    load_trace_jsonl,
    merge_all,
    percentile,
    perfetto_trace,
    save_perfetto_json,
    validate_records,
    validate_trace_file,
)
from repro.workloads import build_workload, workload

from test_engine_equivalence import result_signature

CFG = small_config(n_cus=2, waves_per_cu=4)
N_DOMAINS = CFG.gpu.n_domains


def run_sim(telemetry=None, design="PCSTALL", name="dgemm", max_epochs=40):
    kernels = build_workload(workload(name), scale=0.15)
    ctrl = make_controller(design, CFG)
    sim = DvfsSimulation(
        kernels, ctrl, CFG, design_name=design, workload_name=name,
        collect_accuracy=True, max_epochs=max_epochs, oracle_sample_freqs=3,
        telemetry=telemetry,
    )
    return sim.run()


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One PCSTALL run recorded to ring + JSONL."""
    path = tmp_path_factory.mktemp("telemetry") / "epochs.jsonl"
    rec = EpochTraceRecorder(TelemetryConfig(jsonl_path=str(path)))
    result = run_sim(telemetry=rec)
    rec.close()
    return rec, result, path


class TestMetrics:
    def test_counter_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7

    def test_gauge_merge_keeps_max(self):
        a, b = Gauge(), Gauge()
        a.set(2.0)
        b.set(5.0)
        a.merge(b)
        assert a.value == 5.0

    def test_histogram_quantile_and_mean(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.total == 4
        assert h.mean == pytest.approx(1.625)
        assert 0.0 < h.quantile(0.5) <= 2.0

    def test_histogram_merge_bounds_mismatch_raises(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_registry_redeclared_histogram_bounds_raise(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", (3.0,))

    def test_registry_roundtrip_through_dict(self):
        reg = MetricsRegistry()
        reg.inc("cells", 5)
        reg.gauge("peak").set(7.0)
        reg.histogram("wall", (0.1, 1.0)).observe(0.5)
        clone = MetricsRegistry.from_dict(json.loads(json.dumps(reg.to_dict())))
        assert clone.to_dict() == reg.to_dict()

    def test_split_merge_equals_single(self):
        """The parallel-sweep property: per-worker registries merged
        equal one registry that saw every observation."""
        whole = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(3)]
        # Binary-exact values: summation order cannot perturb the sums.
        for i, v in enumerate([0.25, 0.5, 1.5, 0.125, 2.0, 0.75]):
            for reg in (whole, workers[i % 3]):
                reg.inc("n")
                reg.histogram("err").observe(v)
                reg.gauge("peak").set(max(v, reg.gauge("peak").value))
        assert merge_all(workers).to_dict() == whole.to_dict()

    def test_percentile_exact(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        assert percentile([], 50.0) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestRecorder:
    def test_record_stream_shape(self, recorded):
        rec, result, _ = recorded
        counts = validate_records(list(rec.records) + rec.final_records)
        assert counts["run"] == 1
        assert counts["epoch"] == result.epochs
        assert counts["domain"] == result.epochs * N_DOMAINS
        assert counts["summary"] == 1
        assert counts["pc"] >= 1  # PCSTALL attributes error to PCs

    def test_jsonl_stream_validates_and_matches_ring(self, recorded):
        rec, result, path = recorded
        counts = validate_trace_file(path)
        assert counts["epoch"] == result.epochs
        assert counts["domain"] == result.epochs * N_DOMAINS
        records = load_trace_jsonl(path)
        assert records[0]["type"] == "run"
        assert records[-1]["type"] == "summary"

    def test_run_header_meta(self, recorded):
        rec, _, _ = recorded
        meta = check_meta(rec.meta)
        assert meta["schema_version"] == TRACE_SCHEMA_VERSION
        assert meta["config_hash"]
        assert meta["engine"] == CFG.gpu.engine
        assert meta["workload"] == "dgemm"

    def test_domain_records_score_against_oracle(self, recorded):
        rec, _, _ = recorded
        domains = rec.domain_records()
        scored = [r for r in domains if r["rel_error"] is not None]
        assert scored, "PCSTALL must make scorable predictions"
        assert all(r["rel_error"] >= 0.0 for r in scored)
        with_oracle = [r for r in domains if r["oracle_freq_ghz"] is not None]
        assert with_oracle
        for r in with_oracle:
            assert r["mispredicted"] == (
                abs(r["freq_ghz"] - r["oracle_freq_ghz"]) > 1e-6
            )

    def test_stall_breakdown_partitions_epoch(self, recorded):
        rec, _, _ = recorded
        per = CFG.gpu.cus_per_domain
        epoch_ns = CFG.dvfs.epoch_ns
        for r in rec.domain_records():
            assert r["busy_ns"] >= 0.0
            assert r["stall_ns"] >= 0.0
            assert r["busy_ns"] + r["stall_ns"] == pytest.approx(epoch_ns * per)

    def test_pc_table_deltas_sum_to_cumulative(self, recorded):
        rec, result, _ = recorded
        epochs = [r for r in rec.records if r["type"] == "epoch"]
        assert all("pc_lookups" in r for r in epochs)
        assert all(r["pc_lookups"] >= 0 for r in epochs)
        total_hits = sum(r["pc_hits"] for r in epochs)
        total_lookups = sum(r["pc_lookups"] for r in epochs)
        assert 0 < total_lookups
        assert result.pc_hit_ratio == pytest.approx(total_hits / total_lookups)

    def test_pc_attribution_aggregates(self, recorded):
        rec, _, _ = recorded
        assert rec.pc_stats
        for stat in rec.pc_stats.values():
            assert stat.samples > 0
            assert stat.weighted_error >= 0.0

    def test_registry_counters(self, recorded):
        rec, result, _ = recorded
        counters = rec.registry.counter_values("telemetry_")
        assert counters["telemetry_epochs"] == result.epochs
        assert counters["telemetry_decisions"] == result.epochs * N_DOMAINS
        assert (
            counters["telemetry_mispredictions"] <= counters["telemetry_decisions"]
        )

    def test_ring_bounds_memory_but_jsonl_keeps_all(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        rec = EpochTraceRecorder(TelemetryConfig(ring_size=6, jsonl_path=str(path)))
        result = run_sim(telemetry=rec, max_epochs=20)
        rec.close()
        assert len(rec.records) <= 6
        assert rec.dropped > 0
        counts = validate_trace_file(path)  # the stream archived fully
        assert counts["epoch"] == result.epochs

    def test_final_records_never_evict_epochs(self, tmp_path):
        """Flushing PC attribution at end-of-run must not push epoch
        records out of a ring that had room for the whole run."""
        ring = 200 * (N_DOMAINS + 1)
        rec = EpochTraceRecorder(TelemetryConfig(ring_size=ring))
        result = run_sim(telemetry=rec, max_epochs=20)
        assert rec.dropped == 0
        assert len([r for r in rec.records if r["type"] == "epoch"]) == result.epochs
        assert all(r["type"] != "pc" for r in rec.records)
        assert any(r["type"] == "pc" for r in rec.final_records)

    def test_record_epochs_off_still_aggregates(self):
        rec = EpochTraceRecorder(TelemetryConfig(record_epochs=False))
        result = run_sim(telemetry=rec, max_epochs=15)
        assert rec.total_records == 0
        assert rec.epochs == result.epochs
        assert rec.pc_stats  # attribution still collected
        assert rec.registry.counter_values("telemetry_")["telemetry_epochs"] > 0

    def test_negative_ring_size_rejected(self):
        with pytest.raises(ValueError):
            TelemetryConfig(ring_size=-1)


class TestOffPath:
    def test_disabled_results_bit_identical(self):
        baseline = result_signature(run_sim(telemetry=None))
        with_recorder = result_signature(
            run_sim(telemetry=EpochTraceRecorder(TelemetryConfig()))
        )
        assert baseline == with_recorder

    def test_disabled_run_allocates_no_telemetry_objects(self, monkeypatch):
        """With telemetry=None the loop must never touch the telemetry
        classes; poisoned constructors prove it."""

        def boom(self, *a, **kw):
            raise AssertionError("telemetry object allocated on the off path")

        monkeypatch.setattr(EpochTraceRecorder, "__init__", boom)
        monkeypatch.setattr(MetricsRegistry, "__init__", boom)
        result = run_sim(telemetry=None)
        assert result.epochs > 0


class TestPerfetto:
    def test_trace_structure(self, recorded):
        rec, result, _ = recorded
        trace = perfetto_trace(rec.records)
        assert trace["displayTimeUnit"] == "ns"
        assert trace["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "C"} <= phases
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == result.epochs * N_DOMAINS
        for e in slices:
            assert e["dur"] >= 0
            assert e["ts"] >= 0

    def test_counter_tracks_cover_every_domain(self, recorded):
        rec, _, _ = recorded
        counters = {
            e["name"] for e in perfetto_trace(rec.records)["traceEvents"]
            if e["ph"] == "C"
        }
        for d in range(N_DOMAINS):
            assert f"freq domain {d}" in counters
        assert "epoch energy" in counters

    def test_save_writes_loadable_json(self, recorded, tmp_path):
        rec, _, _ = recorded
        path = tmp_path / "trace.perfetto.json"
        n = save_perfetto_json(rec.records, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == n > 0


class TestAccuracyReport:
    def test_ring_and_jsonl_agree(self, recorded):
        rec, _, path = recorded
        from_ring = AccuracyReport.from_recorder(rec)
        from_file = AccuracyReport.from_records(load_trace_jsonl(path))
        assert from_ring.error_percentiles() == from_file.error_percentiles()
        assert from_ring.confusion == from_file.confusion
        assert from_ring.pc_attribution == from_file.pc_attribution

    def test_agreement_and_decisions(self, recorded):
        rec, result, _ = recorded
        rep = AccuracyReport.from_recorder(rec)
        assert rep.decisions == result.epochs * N_DOMAINS
        assert 0.0 <= rep.agreement <= 1.0

    def test_confusion_grid_conserves_counts(self, recorded):
        rec, _, _ = recorded
        rep = AccuracyReport.from_recorder(rec)
        _, grid = rep.confusion_grid()
        assert sum(sum(row) for row in grid) == rep.decisions

    def test_merge_sums(self, recorded):
        rec, _, _ = recorded
        a = AccuracyReport.from_recorder(rec)
        b = AccuracyReport.from_recorder(rec)
        decisions = a.decisions
        merged = a.merge(b)
        assert merged.decisions == 2 * decisions
        assert merged.epochs == 2 * b.epochs

    def test_renderings_are_tables(self, recorded):
        rec, _, _ = recorded
        rep = AccuracyReport.from_recorder(rec, label="dgemm/PCSTALL")
        assert "confusion" in rep.render_confusion()
        assert "PCs" in rep.render_top_pcs(3)


class TestSchema:
    def test_meta_check_rejects_wrong_version(self):
        meta = build_meta()
        meta["schema_version"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            check_meta(meta)

    def test_meta_check_rejects_non_mapping(self):
        with pytest.raises(ValueError):
            check_meta(None)

    def test_stream_must_start_with_run_record(self):
        with pytest.raises(ValueError, match="run record"):
            validate_records([{"type": "summary", "workload": "w", "design": "d",
                              "epochs": 1, "delay_ns": 1.0, "energy_total": 1.0}])

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ValueError, match="unknown record type"):
            validate_records([{"type": "mystery"}])

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_records([])

    def test_config_hash_stamps_platform(self):
        from dataclasses import replace

        a = build_meta(CFG)["config_hash"]
        same = build_meta(small_config(n_cus=2, waves_per_cu=4))["config_hash"]
        other = build_meta(
            replace(CFG, dvfs=replace(CFG.dvfs, epoch_ns=2000.0))
        )["config_hash"]
        assert a == same
        assert a != other
