"""Shared fixtures: tiny platforms and kernels that run in milliseconds."""

from __future__ import annotations

import pytest

from repro.config import DvfsConfig, GpuConfig, MemoryConfig, SimConfig
from repro.gpu.kernel import Kernel, WorkgroupGeometry

from helpers import make_loop_program


@pytest.fixture
def tiny_config() -> SimConfig:
    """2 CUs x 4 waves - smallest interesting platform."""
    return SimConfig(
        gpu=GpuConfig(
            n_cus=2,
            waves_per_cu=4,
            memory=MemoryConfig(n_l2_banks=2),
        ),
        dvfs=DvfsConfig(epoch_ns=1000.0),
    )


@pytest.fixture
def quad_config() -> SimConfig:
    """4 CUs x 8 waves - the standard test platform."""
    return SimConfig(
        gpu=GpuConfig(
            n_cus=4,
            waves_per_cu=8,
            memory=MemoryConfig(n_l2_banks=4),
        ),
        dvfs=DvfsConfig(epoch_ns=1000.0),
    )


@pytest.fixture
def loop_program():
    return make_loop_program()


@pytest.fixture
def loop_kernel(loop_program) -> Kernel:
    return Kernel.homogeneous(loop_program, WorkgroupGeometry(4, 2))
