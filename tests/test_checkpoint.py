"""Checkpoint/resume manifest and crash-safe cache writes."""

import json
import subprocess
import sys

from repro.analysis.trace_io import run_result_to_dict
from repro.config import small_config
from repro.runtime.cache import ResultCache
from repro.runtime.checkpoint import (
    MANIFEST_VERSION,
    SweepCheckpoint,
    default_checkpoint_path,
)
from repro.runtime.executor import SweepExecutor, SweepTask
from repro.runtime.progress import SOURCE_RESUMED, SweepInstrumentation

CFG = small_config(n_cus=2, waves_per_cu=4)


def make_task(workload="comd", design="STATIC@1.7"):
    return SweepTask(
        workload=workload, design=design, config=CFG, scale=0.1,
        max_epochs=60, oracle_sample_freqs=3,
    )


GRID = [
    make_task(w, d)
    for w in ("comd", "xsbench")
    for d in ("STATIC@1.7", "PCSTALL")
]


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepCheckpoint(path, sweep="s1") as ckpt:
            ckpt.record("k1", label="a/b", source="serial", wall_s=0.5)
            ckpt.record("k2", label="c/d", source="parallel", wall_s=1.5)
        again = SweepCheckpoint(path, sweep="s1", resume=True)
        assert "k1" in again and "k2" in again and "k3" not in again
        assert len(again) == 2
        assert again.resumed_from == 2
        again.close()

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepCheckpoint(path) as ckpt:
            ckpt.record("old")
        with SweepCheckpoint(path) as ckpt:  # resume=False: new sweep
            assert "old" not in ckpt
        assert "old" not in SweepCheckpoint(path, resume=True)

    def test_header_line_written(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepCheckpoint(path, sweep="figure-fig14").close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"manifest": MANIFEST_VERSION, "sweep": "figure-fig14"}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepCheckpoint(path) as ckpt:
            ckpt.record("k1", label="a/b")
            ckpt.record("k2", label="c/d")
        # Simulate a kill mid-append: a partial, unterminated JSON line.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "lab')
        again = SweepCheckpoint(path, resume=True)
        assert "k1" in again and "k2" in again
        assert "k3" not in again
        again.close()

    def test_duplicate_record_is_idempotent(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepCheckpoint(path) as ckpt:
            ckpt.record("k1")
            ckpt.record("k1")
        assert len(path.read_text().splitlines()) == 2  # header + one line

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "nope.jsonl", resume=True)
        assert len(ckpt) == 0 and ckpt.resumed_from == 0
        ckpt.close()

    def test_default_path_sanitises_sweep_name(self, tmp_path):
        path = default_checkpoint_path(tmp_path, "figure fig14/all")
        assert path.parent == tmp_path / "checkpoints"
        assert "/" not in path.name and " " not in path.name


class TestExecutorResume:
    def _executor(self, tmp_path, ckpt, progress=None):
        return SweepExecutor(
            cache=ResultCache(tmp_path / "cache"),
            checkpoint=ckpt,
            progress=progress or SweepInstrumentation(),
        )

    def test_interrupted_sweep_resumes_bit_identical(self, tmp_path):
        reference = [run_result_to_dict(r) for r in SweepExecutor().run(GRID)]
        manifest = tmp_path / "sweep.jsonl"

        # "Interrupted" run: only the first half of the grid completes.
        with SweepCheckpoint(manifest, sweep="s") as ckpt:
            self._executor(tmp_path, ckpt).run(GRID[:2])

        progress = SweepInstrumentation()
        with SweepCheckpoint(manifest, sweep="s", resume=True) as ckpt:
            assert ckpt.resumed_from == 2
            results = self._executor(tmp_path, ckpt, progress).run(GRID)

        assert [run_result_to_dict(r) for r in results] == reference
        # Exactly the interrupted half was skipped, the rest computed.
        assert progress.resumed == 2
        assert progress.cache_misses == 2
        sources = [rec.source for rec in progress.cells]
        assert sources.count(SOURCE_RESUMED) == 2

    def test_second_resume_skips_everything(self, tmp_path):
        manifest = tmp_path / "sweep.jsonl"
        with SweepCheckpoint(manifest, sweep="s") as ckpt:
            first = self._executor(tmp_path, ckpt).run(GRID)
        progress = SweepInstrumentation()
        with SweepCheckpoint(manifest, sweep="s", resume=True) as ckpt:
            again = self._executor(tmp_path, ckpt, progress).run(GRID)
        assert [run_result_to_dict(r) for r in again] == [
            run_result_to_dict(r) for r in first
        ]
        assert progress.resumed == len(GRID)
        assert progress.cache_misses == 0

    def test_manifest_entry_without_cache_entry_reruns(self, tmp_path):
        # A manifest can outlive its cache (cache pruned, version bump):
        # membership alone must never produce a result from thin air.
        manifest = tmp_path / "sweep.jsonl"
        task = GRID[0]
        with SweepCheckpoint(manifest, sweep="s") as ckpt:
            expect = self._executor(tmp_path, ckpt).run_one(task)
        for entry in (tmp_path / "cache").glob("*.pkl"):
            entry.unlink()
        progress = SweepInstrumentation()
        with SweepCheckpoint(manifest, sweep="s", resume=True) as ckpt:
            got = self._executor(tmp_path, ckpt, progress).run_one(task)
        assert run_result_to_dict(got) == run_result_to_dict(expect)
        assert progress.resumed == 0 and progress.cache_misses == 1


class TestCrashSafeCacheWrites:
    def test_atomic_put_leaves_no_torn_entry_on_kill(self, tmp_path):
        """A worker killed mid-``put`` must not corrupt the cache.

        The child writes one good entry, then dies *inside* ``put`` for
        a second key (its payload's ``__reduce__`` calls ``os._exit``
        while the temp file is open). The survivor must be readable and
        the dead key must be absent - at worst a stray ``*.tmp``.
        """
        code = (
            "import os, sys\n"
            f"sys.path.insert(0, {str((__import__('pathlib').Path(__file__).resolve().parents[1] / 'src'))!r})\n"
            "from repro.runtime.cache import ResultCache\n"
            "class Bomb:\n"
            "    def __reduce__(self):\n"
            "        os._exit(7)\n"
            f"cache = ResultCache({str(tmp_path)!r})\n"
            "cache.put('goodkey', list(range(1000)))\n"
            "cache.put('badkey', [1, Bomb(), 3])\n"
        )
        proc = subprocess.run([sys.executable, "-c", code], timeout=60)
        assert proc.returncode == 7  # really died inside the second put

        cache = ResultCache(tmp_path)
        assert cache.get("goodkey") == list(range(1000))
        assert cache.get("badkey") is None
        assert not cache.path_for("badkey").exists()

    def test_put_tmp_files_never_visible_as_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", "value")
        assert list(tmp_path.glob("*.tmp")) == []  # renamed away
        assert cache.get("k") == "value"

    def test_stale_tmp_swept_fresh_tmp_kept(self, tmp_path):
        import os
        import time

        stale = tmp_path / "dead.0.0.tmp"
        fresh = tmp_path / "live.0.0.tmp"
        stale.write_bytes(b"x")
        fresh.write_bytes(b"x")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        ResultCache(tmp_path).put("k", 1)
        assert not stale.exists()
        assert fresh.exists()
