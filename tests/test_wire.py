"""Adversarial tests for the length-prefixed JSON framing layer.

The wire protocol (``repro.runtime.wire``) is spoken by the decision
service and between sweep brokers and workers; a misbehaving or killed
peer must surface as a *typed* error (or a clean None), never a hang or
a desynchronised stream. Every scenario here uses real sockets with
short timeouts, so a regression to blocking-forever fails fast.
"""

import asyncio
import socket
import struct
import threading

import pytest

from repro.runtime.wire import (
    MAX_FRAME_BYTES,
    FrameReceiver,
    ProtocolError,
    ReceiveTimeout,
    decode_payload,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)


def pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestEncodeDecode:
    def test_round_trip(self):
        msg = {"type": "x", "f": 0.1 + 0.2, "n": [1, 2.5e-300], "s": "αβ"}
        frame = encode_frame(msg)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == msg

    def test_float_fidelity_is_exact(self):
        values = [0.1, 1.0 / 3.0, 2**-52, 1.7976931348623157e308]
        out = decode_payload(encode_frame({"v": values})[4:])
        assert out["v"] == values  # bit-exact, not approximate

    def test_oversized_message_refused_at_send(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_garbage_json_is_typed(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_payload(b"\xff\xfe{{{")

    def test_non_object_payload_is_typed(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(b"[1,2,3]")


class TestRecvFrame:
    def test_round_trip(self):
        a, b = pair()
        send_frame(a, {"type": "ping", "x": 1.5})
        assert recv_frame(b) == {"type": "ping", "x": 1.5}
        a.close(), b.close()

    def test_clean_close_is_none_both_modes(self):
        for strict in (False, True):
            a, b = pair()
            a.close()
            assert recv_frame(b, strict=strict) is None
            b.close()

    def test_truncated_header(self):
        # Lenient: reads as end of stream. Strict: typed error.
        for strict, expect_raise in ((False, False), (True, True)):
            a, b = pair()
            a.sendall(b"\x00\x00")  # 2 of 4 header bytes
            a.close()
            if expect_raise:
                with pytest.raises(ProtocolError, match="mid-header"):
                    recv_frame(b, strict=True)
            else:
                assert recv_frame(b, strict=strict) is None
            b.close()

    def test_mid_frame_disconnect(self):
        frame = encode_frame({"type": "big", "pad": "y" * 1000})
        for strict in (False, True):
            a, b = pair()
            a.sendall(frame[: len(frame) // 2])
            a.close()
            if strict:
                with pytest.raises(ProtocolError, match="mid-frame"):
                    recv_frame(b, strict=True)
            else:
                assert recv_frame(b) is None
            b.close()

    def test_oversized_length_prefix(self):
        a, b = pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(b)
        a.close(), b.close()

    def test_garbage_json_payload(self):
        a, b = pair()
        junk = b"not json at all"
        a.sendall(struct.pack(">I", len(junk)) + junk)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            recv_frame(b)
        a.close(), b.close()


class TestAsyncReadFrame:
    def _read(self, data: bytes, strict: bool = False):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader, strict=strict)

        return asyncio.run(go())

    def test_round_trip(self):
        assert self._read(encode_frame({"a": 1})) == {"a": 1}

    def test_clean_eof_is_none(self):
        assert self._read(b"") is None
        assert self._read(b"", strict=True) is None

    def test_torn_header_strict(self):
        assert self._read(b"\x00\x00\x01") is None  # lenient
        with pytest.raises(ProtocolError, match="mid-header"):
            self._read(b"\x00\x00\x01", strict=True)

    def test_torn_payload_strict(self):
        frame = encode_frame({"k": "v" * 100})
        assert self._read(frame[:-5]) is None  # lenient
        with pytest.raises(ProtocolError, match="mid-frame"):
            self._read(frame[:-5], strict=True)

    def test_oversized_length_prefix(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            self._read(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")


class TestFrameReceiver:
    def test_frames_survive_poll_timeouts(self):
        """A frame dripped byte-by-byte across many short polls arrives
        intact - the receiver's buffer must never tear mid-frame."""
        a, b = pair()
        receiver = FrameReceiver(b)
        frame = encode_frame({"type": "slow", "v": [0.25, 0.5]})

        def drip():
            for i in range(len(frame)):
                a.sendall(frame[i:i + 1])

        t = threading.Thread(target=drip)
        got = None
        t.start()
        for _ in range(1000):
            try:
                got = receiver.recv(0.002)
                break
            except ReceiveTimeout:
                continue
        t.join()
        assert got == {"type": "slow", "v": [0.25, 0.5]}
        a.close(), b.close()

    def test_multiple_frames_in_one_read(self):
        a, b = pair()
        receiver = FrameReceiver(b)
        a.sendall(encode_frame({"i": 1}) + encode_frame({"i": 2}))
        assert receiver.recv(2.0) == {"i": 1}
        assert receiver.recv(2.0) == {"i": 2}
        a.close(), b.close()

    def test_timeout_is_typed_and_resumable(self):
        a, b = pair()
        receiver = FrameReceiver(b)
        with pytest.raises(ReceiveTimeout):
            receiver.recv(0.05)
        send_frame(a, {"ok": True})
        assert receiver.recv(2.0) == {"ok": True}
        a.close(), b.close()

    def test_clean_close_is_none(self):
        a, b = pair()
        receiver = FrameReceiver(b)
        send_frame(a, {"last": 1})
        a.close()
        assert receiver.recv(2.0) == {"last": 1}
        assert receiver.recv(2.0) is None
        b.close()

    def test_mid_frame_close_is_typed(self):
        a, b = pair()
        receiver = FrameReceiver(b, strict=True)
        a.sendall(encode_frame({"k": "v" * 500})[:-7])
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            receiver.recv(2.0)
        b.close()

    def test_mid_frame_close_lenient_is_none(self):
        a, b = pair()
        receiver = FrameReceiver(b, strict=False)
        a.sendall(encode_frame({"k": "v" * 500})[:-7])
        a.close()
        assert receiver.recv(2.0) is None
        b.close()

    def test_oversized_length_prefix_rejected_before_allocation(self):
        a, b = pair()
        receiver = FrameReceiver(b)
        a.sendall(struct.pack(">I", 2**31))
        with pytest.raises(ProtocolError, match="exceeds"):
            receiver.recv(2.0)
        a.close(), b.close()

    def test_garbage_json_is_typed(self):
        a, b = pair()
        receiver = FrameReceiver(b)
        junk = b"\x00garbage\xff"
        a.sendall(struct.pack(">I", len(junk)) + junk)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            receiver.recv(2.0)
        a.close(), b.close()


class TestServiceReExports:
    def test_protocol_module_reuses_wire(self):
        """service.protocol and runtime.wire must expose the *same*
        objects - two ProtocolError classes would break except clauses."""
        import repro.runtime.wire as wire
        import repro.service.protocol as protocol

        for name in ("ProtocolError", "encode_frame", "decode_payload",
                     "read_frame", "recv_frame", "send_frame"):
            assert getattr(protocol, name) is getattr(wire, name), name
        assert protocol.MAX_FRAME_BYTES == wire.MAX_FRAME_BYTES
