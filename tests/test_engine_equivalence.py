"""Event engine vs reference engine: bit-identical results, fewer scans.

The event-driven fast path in :mod:`repro.gpu.cu` must reproduce the
pre-change per-cycle scheduler *exactly* - same floats, same commit
counts, same residency - for every workload class. The reference loop is
kept in-tree (``GpuConfig.engine = "reference"``) precisely so these
golden-trace comparisons never rot.
"""

from dataclasses import replace

import pytest

from repro.config import small_config
from repro.dvfs.designs import make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.workloads import build_workload, workload

from helpers import make_loop_program

#: One representative per workload class (HPC compute, HPC memory,
#: MI GEMM, MI layer op) - see repro.workloads.suite.
WORKLOADS = ("comd", "xsbench", "dgemm", "BwdBN")


def engine_pair(base_cfg):
    return (
        replace(base_cfg, gpu=replace(base_cfg.gpu, engine="event")),
        replace(base_cfg, gpu=replace(base_cfg.gpu, engine="reference")),
    )


def cu_state(gpu):
    """Everything scheduling-visible, compared with exact ==."""
    return [
        (
            cu.now,
            cu.stats.committed,
            cu.stats.core_busy_ns,
            cu.stats.issued,
            tuple(
                (wf.wf_id, wf.pc_idx, wf.ready_at, wf.blocked, wf.outstanding,
                 wf.stats.committed, wf.stats.stall_ns)
                for wf in cu.waves
            ),
            tuple(cu.completions),
            tuple(cu.pending_workgroups),
        )
        for cu in gpu.cus
    ]


def result_signature(r):
    return (
        r.delay_ns,
        r.energy.total,
        r.energy.cu_dynamic_and_leakage,
        r.energy.memory,
        r.energy.transitions,
        r.total_committed,
        r.epochs,
        r.completed,
        r.prediction_accuracy,
        r.pc_hit_ratio,
        r.total_transitions,
        tuple(sorted(r.frequency_residency.items())),
    )


class TestLockstep:
    """Epoch-by-epoch state equality on the raw GPU (no controller)."""

    @pytest.mark.parametrize("with_barrier", [False, True])
    def test_loop_kernel_lockstep(self, tiny_config, with_barrier):
        prog = make_loop_program(trips=2000, with_barrier=with_barrier)
        kern = Kernel.homogeneous(prog, WorkgroupGeometry(6, 2))
        cfg_e, cfg_r = engine_pair(tiny_config)
        ge, gr = Gpu(cfg_e.gpu), Gpu(cfg_r.gpu)
        ge.load_kernel(kern)
        gr.load_kernel(kern)
        for _ in range(25):
            ge.run_epoch(1000.0)
            gr.run_epoch(1000.0)
            assert cu_state(ge) == cu_state(gr)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_workload_lockstep(self, tiny_config, name):
        kern = build_workload(workload(name), scale=0.15)[0]
        cfg_e, cfg_r = engine_pair(tiny_config)
        ge, gr = Gpu(cfg_e.gpu), Gpu(cfg_r.gpu)
        ge.load_kernel(kern)
        gr.load_kernel(kern)
        for _ in range(30):
            ge.run_epoch(1000.0)
            gr.run_epoch(1000.0)
        assert cu_state(ge) == cu_state(gr)


class TestGoldenRuns:
    """Full DVFS runs (controller + oracle) must be bit-identical."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_run_result_bit_identical(self, name):
        results = {}
        for cfg in engine_pair(small_config(n_cus=2, waves_per_cu=4)):
            kernels = build_workload(workload(name), scale=0.15)
            ctrl = make_controller("PCSTALL", cfg)
            sim = DvfsSimulation(
                kernels, ctrl, cfg, design_name="PCSTALL", workload_name=name,
                collect_accuracy=True, max_epochs=40, oracle_sample_freqs=3,
            )
            results[cfg.gpu.engine] = sim.run()
        assert result_signature(results["event"]) == result_signature(
            results["reference"]
        )

    def test_static_design_bit_identical(self):
        results = {}
        for cfg in engine_pair(small_config(n_cus=2, waves_per_cu=4)):
            kernels = build_workload(workload("comd"), scale=0.15)
            ctrl = make_controller("STATIC@1.7", cfg)
            sim = DvfsSimulation(
                kernels, ctrl, cfg, design_name="STATIC@1.7", workload_name="comd",
                max_epochs=40, oracle_sample_freqs=3,
            )
            results[cfg.gpu.engine] = sim.run()
        assert result_signature(results["event"]) == result_signature(
            results["reference"]
        )


class TestScanReduction:
    def test_event_engine_scans_at_least_3x_fewer_waves(self):
        """The headline win: on the experiment drivers' platform the
        ready-queue + batching cut wavefront-scan events >= 3x (measured
        5.5x-37x per workload at small_config defaults)."""
        scans = {}
        for cfg in engine_pair(small_config()):
            kernels = build_workload(workload("comd"), scale=0.3)
            ctrl = make_controller("PCSTALL", cfg)
            sim = DvfsSimulation(
                kernels, ctrl, cfg, design_name="PCSTALL", workload_name="comd",
                max_epochs=25, oracle_sample_freqs=3,
            )
            r = sim.run()
            scans[cfg.gpu.engine] = r.hotpath["waves_scanned"]
        assert scans["reference"] >= 3 * scans["event"]

    def test_event_engine_clones_nothing_per_sample(self):
        """Oracle sampling restores into a persistent scratch GPU: zero
        clone bytes, while the reference path clones per sample."""
        hot = {}
        for cfg in engine_pair(small_config(n_cus=2, waves_per_cu=4)):
            kernels = build_workload(workload("comd"), scale=0.15)
            ctrl = make_controller("PCSTALL", cfg)
            sim = DvfsSimulation(
                kernels, ctrl, cfg, design_name="PCSTALL", workload_name="comd",
                collect_accuracy=True, max_epochs=20, oracle_sample_freqs=3,
            )
            hot[cfg.gpu.engine] = sim.run().hotpath
        assert hot["event"]["clone_bytes"] == 0
        assert hot["event"]["snapshot_bytes"] > 0
        assert hot["reference"]["clone_bytes"] > hot["event"]["snapshot_bytes"]


class TestEngineConfig:
    def test_unknown_engine_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="engine"):
            replace(tiny_config.gpu, engine="warp-speed")

    def test_engine_flows_into_cache_key(self, tiny_config):
        from repro.runtime import SweepTask, task_key

        keys = {
            cfg.gpu.engine: task_key(
                SweepTask("comd", "PCSTALL", cfg).cache_fields()
            )
            for cfg in engine_pair(tiny_config)
        }
        assert keys["event"] != keys["reference"]
