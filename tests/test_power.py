"""Power model: V(f) map, dynamic/leakage, IVR, energy accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.config import GpuConfig, MemoryConfig, PowerConfig
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.power.energy import EnergyAccountant, EnergyBreakdown, ed_n_p
from repro.power.model import PowerModel, voltage_for_frequency

from helpers import make_loop_program


@pytest.fixture
def model():
    return PowerModel(PowerConfig())


class TestVoltageMap:
    def test_endpoints(self, model):
        cfg = model.config
        assert model.voltage(cfg.f_min_ghz) == pytest.approx(cfg.v_min)
        assert model.voltage(cfg.f_max_ghz) == pytest.approx(cfg.v_max)

    def test_monotonic(self, model):
        freqs = [1.3 + 0.1 * i for i in range(10)]
        volts = [model.voltage(f) for f in freqs]
        assert volts == sorted(volts)

    def test_clamps_out_of_range(self, model):
        assert model.voltage(0.5) == pytest.approx(model.config.v_min)
        assert model.voltage(5.0) == pytest.approx(model.config.v_max)

    @given(st.floats(1.3, 2.2))
    def test_property_in_bounds(self, f):
        cfg = PowerConfig()
        v = voltage_for_frequency(cfg, f)
        assert cfg.v_min <= v <= cfg.v_max


class TestPower:
    def test_dynamic_power_increases_superlinearly(self, model):
        p13 = model.dynamic_power_per_cu(1.3, 1.0)
        p22 = model.dynamic_power_per_cu(2.2, 1.0)
        assert p22 / p13 > 2.2 / 1.3  # more than linear in f

    def test_activity_scales_dynamic_power(self, model):
        busy = model.dynamic_power_per_cu(1.7, 1.0)
        idle = model.dynamic_power_per_cu(1.7, 0.0)
        assert 0.0 < idle < busy
        # Idle floor: clock tree never gates fully.
        assert idle / busy == pytest.approx(model.config.idle_activity)

    def test_leakage_weakly_voltage_dependent(self, model):
        l_lo = model.leakage_power_per_cu(1.3)
        l_hi = model.leakage_power_per_cu(2.2)
        assert l_lo < l_hi
        # "Does not significantly vary" (Section 5): < 2x across range.
        assert l_hi / l_lo < 2.0

    def test_temperature_scales_leakage(self):
        hot = PowerModel(PowerConfig(temperature_factor=1.5))
        cold = PowerModel(PowerConfig(temperature_factor=1.0))
        assert hot.leakage_power_per_cu(1.7) > cold.leakage_power_per_cu(1.7)

    def test_ivr_efficiency_peaks_at_peak_voltage(self, model):
        cfg = model.config
        peak = model.ivr_efficiency(cfg.ivr_peak_voltage)
        low = model.ivr_efficiency(cfg.v_min)
        assert peak == pytest.approx(cfg.ivr_efficiency_peak)
        assert low < peak

    def test_wall_power_includes_ivr_loss(self, model):
        consumed = model.dynamic_power_per_cu(1.7, 0.5) + model.leakage_power_per_cu(1.7)
        wall = model.cu_power(1.7, 0.5)
        assert wall > consumed

    def test_memory_power_scales_with_banks(self, model):
        assert model.memory_power(16) == pytest.approx(2 * model.memory_power(8))

    def test_transition_energy(self, model):
        assert model.transition_energy(3) == pytest.approx(
            3 * model.config.transition_energy
        )

    @given(st.floats(1.3, 2.2), st.floats(0.0, 1.0))
    def test_property_power_positive(self, f, a):
        m = PowerModel(PowerConfig())
        assert m.cu_power(f, a) > 0.0


class TestEdnp:
    def test_ed2p(self):
        assert ed_n_p(2.0, 3.0, 2) == pytest.approx(18.0)

    def test_edp(self):
        assert ed_n_p(2.0, 3.0, 1) == pytest.approx(6.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ed_n_p(-1.0, 1.0)


class TestEnergyAccountant:
    def _run_epochs(self, freq, n=3):
        cfg = GpuConfig(n_cus=2, waves_per_cu=4, memory=MemoryConfig(n_l2_banks=2))
        gpu = Gpu(cfg, initial_freq_ghz=freq)
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=5000), WorkgroupGeometry(4, 2))
        )
        acct = EnergyAccountant(cfg, PowerModel(PowerConfig()))
        for _ in range(n):
            acct.add_epoch(gpu.run_epoch(1000.0))
        return acct

    def test_energy_accumulates(self):
        acct = self._run_epochs(1.7)
        assert acct.breakdown.total > 0
        assert acct.breakdown.elapsed_ns == pytest.approx(3000.0)
        assert len(acct.power_trace) == 3

    def test_higher_frequency_costs_more_energy(self):
        lo = self._run_epochs(1.3).breakdown.total
        hi = self._run_epochs(2.2).breakdown.total
        assert hi > lo

    def test_breakdown_components(self):
        acct = self._run_epochs(1.7)
        b = acct.breakdown
        assert b.cu_dynamic_and_leakage > 0
        assert b.memory > 0
        assert b.total == pytest.approx(
            b.cu_dynamic_and_leakage + b.memory + b.transitions
        )

    def test_ednp_helpers_take_explicit_delay(self):
        b = EnergyBreakdown(cu_dynamic_and_leakage=10.0, elapsed_ns=2.0)
        assert b.edp(1.5) == pytest.approx(15.0)
        assert b.ed2p(1.5) == pytest.approx(22.5)
        assert b.ednp(3, 1.5) == pytest.approx(33.75)

    def test_ednp_zero_arg_forms_deprecated(self):
        # The old zero-arg forms silently used the simulated window as
        # the delay, disagreeing with RunResult's completion-delay EDP.
        b = EnergyBreakdown(cu_dynamic_and_leakage=10.0, elapsed_ns=2.0)
        with pytest.deprecated_call():
            assert b.edp() == pytest.approx(20.0)
        with pytest.deprecated_call():
            assert b.ed2p() == pytest.approx(40.0)
        with pytest.deprecated_call():
            assert b.ednp(3) == pytest.approx(80.0)
