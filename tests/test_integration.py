"""Cross-module integration and system-level invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.core import EDnPObjective
from repro.dvfs.designs import make_controller
from repro.dvfs.simulation import DvfsSimulation
from repro.gpu.gpu import Gpu
from repro.gpu.isa import (
    InstructionKind,
    Program,
    barrier,
    branch,
    endpgm,
    load,
    salu,
    valu,
    waitcnt,
)
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.workloads import build_workload, workload


@pytest.fixture(scope="module")
def cfg():
    return small_config(n_cus=2, waves_per_cu=4)


def run_design(cfg, design, wl="BwdBN", scale=0.2, collect_accuracy=False):
    kernels = build_workload(workload(wl), scale=scale)
    ctrl = make_controller(design, cfg, EDnPObjective(2))
    return DvfsSimulation(
        kernels, ctrl, cfg, design_name=design, max_epochs=300,
        oracle_sample_freqs=4, collect_accuracy=collect_accuracy,
    ).run()


class TestPaperHeadlines:
    """The qualitative claims the paper stands on."""

    def test_pcstall_more_accurate_than_reactive_on_phase_heavy_app(self, cfg):
        pc = run_design(cfg, "PCSTALL", collect_accuracy=True)
        crisp = run_design(cfg, "CRISP", collect_accuracy=True)
        assert pc.prediction_accuracy > crisp.prediction_accuracy

    def test_work_is_conserved_across_designs(self, cfg):
        """Different DVFS policies run the same program: total committed
        instructions must be identical once the run completes."""
        totals = {
            d: run_design(cfg, d).total_committed
            for d in ("STATIC@1.3", "STATIC@2.2", "PCSTALL")
        }
        assert len(set(totals.values())) == 1, totals

    def test_memory_bound_app_prefers_low_frequency(self, cfg):
        r = run_design(cfg, "PCSTALL", wl="xsbench")
        low_share = sum(v for f, v in r.frequency_residency.items() if f <= 1.5)
        assert low_share > 0.7

    def test_dvfs_never_much_worse_than_reference(self, cfg):
        base = run_design(cfg, "STATIC@1.7")
        pc = run_design(cfg, "PCSTALL")
        assert pc.ed2p < base.ed2p * 1.15


class TestSnapshotIsolation:
    def test_oracle_designs_leave_no_trace(self, cfg):
        """An oracle-sampling design must execute the same work as its
        non-sampling twin - forks may not perturb the parent."""
        a = run_design(cfg, "STATIC@1.7")
        ctrl = make_controller("STATIC@1.7", cfg)
        b = DvfsSimulation(
            build_workload(workload("BwdBN"), scale=0.2), ctrl, cfg,
            max_epochs=300, collect_accuracy=False,
        ).run()
        assert a.total_committed == b.total_committed
        assert a.delay_ns == pytest.approx(b.delay_ns)


# ----------------------------------------------------------------------
# Property-based robustness: random programs never deadlock or crash.


@st.composite
def random_programs(draw):
    body = []
    n = draw(st.integers(3, 25))
    outstanding_possible = False
    for _ in range(n):
        kind = draw(st.sampled_from(["valu", "salu", "load", "store", "wait"]))
        if kind == "valu":
            body.append(valu(draw(st.integers(1, 6))))
        elif kind == "salu":
            body.append(salu())
        elif kind == "load":
            body.append(load(draw(st.floats(0, 1)), draw(st.floats(0, 1))))
            outstanding_possible = True
        elif kind == "store":
            from repro.gpu.isa import store

            body.append(store(draw(st.floats(0, 1)), draw(st.floats(0, 1))))
            outstanding_possible = True
        else:
            body.append(waitcnt(draw(st.integers(0, 2))))
    if outstanding_possible:
        body.append(waitcnt(0))
    trips = draw(st.integers(0, 6))
    if trips:
        body.append(branch(0, trips))
    body.append(endpgm())
    return Program(tuple(body), name="random")


class TestRandomPrograms:
    @given(program=random_programs())
    @settings(max_examples=25, deadline=None)
    def test_random_program_terminates(self, program):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        gpu = Gpu(cfg.gpu, 1.7)
        gpu.load_kernel(Kernel.homogeneous(program, WorkgroupGeometry(2, 2)))
        for _ in range(3000):
            if gpu.done:
                break
            gpu.run_epoch(1000.0)
        assert gpu.done

    @given(program=random_programs(), freq=st.sampled_from([1.3, 1.7, 2.2]))
    @settings(max_examples=15, deadline=None)
    def test_random_program_clone_replay(self, program, freq):
        cfg = small_config(n_cus=2, waves_per_cu=4)
        gpu = Gpu(cfg.gpu, freq)
        gpu.load_kernel(Kernel.homogeneous(program, WorkgroupGeometry(2, 2)))
        gpu.run_epoch(500.0)
        snap = gpu.clone()
        a = gpu.run_epoch(700.0)
        b = snap.run_epoch(700.0)
        assert a.committed_per_cu() == b.committed_per_cu()


class TestBarrierWorkloads:
    def test_barrier_program_under_dvfs(self, cfg):
        body = [valu(), valu(), load(0.5, 0.5), waitcnt(0), barrier()]
        program = Program(tuple(body) + (branch(0, 20), endpgm()))
        kernels = [Kernel.homogeneous(program, WorkgroupGeometry(4, 2))]
        ctrl = make_controller("PCSTALL", cfg, EDnPObjective(2))
        r = DvfsSimulation(kernels, ctrl, cfg, max_epochs=500).run()
        assert r.total_committed > 0
        assert r.epochs < 500  # finished, no deadlock
