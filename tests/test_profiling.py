"""Hot-path profiling: counters, collection, formatting, CLI surface."""

import json

import pytest

from repro.cli import main
from repro.gpu.gpu import Gpu
from repro.gpu.kernel import Kernel, WorkgroupGeometry
from repro.runtime import HotPathCounters, collect_hotpath, format_hotpath, maybe_cprofile
from repro.runtime.profiling import collect_gpu
from repro.runtime.progress import SOURCE_SERIAL, CellRecord, SweepInstrumentation

from helpers import make_loop_program


class TestHotPathCounters:
    def test_merge_adds_fieldwise(self):
        a = HotPathCounters(cycles=3, waves_scanned=10)
        a.merge({"cycles": 2, "clone_bytes": 7})
        assert a.cycles == 5
        assert a.waves_scanned == 10
        assert a.clone_bytes == 7

    def test_merge_accepts_counters_instance(self):
        a = HotPathCounters(snapshots=1)
        a.merge(HotPathCounters(snapshots=2, restores=4))
        assert a.snapshots == 3
        assert a.restores == 4

    def test_dict_round_trip(self):
        a = HotPathCounters(cycles=9, oracle_samples=2)
        assert HotPathCounters.from_dict(a.as_dict()) == a

    def test_from_dict_ignores_unknown_keys(self):
        c = HotPathCounters.from_dict({"cycles": 1, "not_a_counter": 99})
        assert c.cycles == 1


class TestCollection:
    def test_collect_gpu_counts_work(self, tiny_config):
        gpu = Gpu(tiny_config.gpu)
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=500), WorkgroupGeometry(4, 2))
        )
        gpu.run_epoch(1000.0)
        counters = collect_gpu(gpu)
        assert counters.cycles > 0
        assert counters.waves_scanned > 0
        assert counters.completions_delivered > 0

    def test_collect_hotpath_without_sampler(self, tiny_config):
        gpu = Gpu(tiny_config.gpu)
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=200), WorkgroupGeometry(4, 2))
        )
        gpu.run_epoch(1000.0)
        hp = collect_hotpath(gpu)
        assert hp["oracle_samples"] == 0
        assert hp["cycles"] == collect_gpu(gpu).cycles

    def test_clone_and_snapshot_byte_accounting(self, tiny_config):
        gpu = Gpu(tiny_config.gpu)
        gpu.load_kernel(
            Kernel.homogeneous(make_loop_program(trips=200), WorkgroupGeometry(4, 2))
        )
        gpu.run_epoch(1000.0)
        gpu.clone()
        snap = gpu.snapshot()
        assert gpu.ctr_clones == 1
        assert gpu.ctr_clone_bytes >= gpu.ctr_snapshot_bytes > 0
        assert snap.nbytes == gpu.ctr_snapshot_bytes


class TestFormatting:
    def test_format_hotpath_renders_counters(self):
        text = format_hotpath({"cycles": 1234567}, title="engine work")
        assert "engine work" in text
        assert "1,234,567" in text


class TestMaybeCprofile:
    def test_noop_without_path(self):
        with maybe_cprofile(None) as prof:
            assert prof is None
        with maybe_cprofile("") as prof:
            assert prof is None

    def test_writes_pstats_file(self, tmp_path):
        import pstats

        out = tmp_path / "prof.pstats"
        with maybe_cprofile(str(out)) as prof:
            assert prof is not None
            sum(range(1000))
        assert out.exists()
        pstats.Stats(str(out))  # parses as valid profile data


class TestSweepAggregation:
    def test_hotpath_totals_merge_across_cells(self):
        instr = SweepInstrumentation()
        instr.record_cell(
            CellRecord("a/X", "a", "X", 1.0, SOURCE_SERIAL, hotpath={"cycles": 5})
        )
        instr.record_cell(
            CellRecord("b/X", "b", "X", 1.0, SOURCE_SERIAL,
                       hotpath={"cycles": 7, "clones": 2})
        )
        totals = instr.hotpath_totals()
        assert totals["cycles"] == 12
        assert totals["clones"] == 2
        assert "hotpath: cycles" in instr.summary()
        assert instr.as_dict()["hotpath"]["cycles"] == 12

    def test_hotpath_totals_empty_without_counters(self):
        instr = SweepInstrumentation()
        instr.record_cell(CellRecord("a/X", "a", "X", 1.0, SOURCE_SERIAL))
        assert instr.hotpath_totals() == {}
        assert instr.as_dict()["hotpath"] == {}


class TestTraceIo:
    def test_run_json_carries_hotpath(self, tmp_path):
        from repro.analysis.trace_io import load_run_json, save_run_json
        from repro.config import small_config
        from repro.dvfs.designs import make_controller
        from repro.dvfs.simulation import DvfsSimulation

        cfg = small_config(n_cus=2, waves_per_cu=4)
        ks = [Kernel.homogeneous(make_loop_program(trips=500), WorkgroupGeometry(4, 2))]
        r = DvfsSimulation(
            ks, make_controller("STALL", cfg), cfg, max_epochs=30,
            oracle_sample_freqs=3,
        ).run()
        path = tmp_path / "run.json"
        save_run_json(r, path)
        data = load_run_json(path)
        assert data["hotpath"]["cycles"] > 0


class TestCli:
    def test_profile_hotpath_prints_counters(self, capsys):
        rc = main([
            "profile", "comd", "--hotpath", "--cus", "2", "--waves", "4",
            "--scale", "0.1", "--max-epochs", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hot-path counters" in out
        assert "waves_scanned" in out

    def test_profile_hotpath_json_and_cprofile(self, capsys, tmp_path):
        counters = tmp_path / "hot.json"
        stats = tmp_path / "prof.pstats"
        rc = main([
            "profile", "comd", "--hotpath", "--cus", "2", "--waves", "4",
            "--scale", "0.1", "--max-epochs", "10", "--engine", "reference",
            "--json", str(counters), "--cprofile", str(stats),
        ])
        assert rc == 0
        assert stats.exists()
        data = json.loads(counters.read_text())
        assert data["engine"] == "reference"
        assert data["hotpath"]["cycles"] > 0

    def test_engine_flag_switches_engines(self, capsys, tmp_path):
        scans = {}
        for engine in ("event", "reference"):
            path = tmp_path / f"{engine}.json"
            assert main([
                "profile", "comd", "--hotpath", "--cus", "2", "--waves", "4",
                "--scale", "0.1", "--max-epochs", "10", "--engine", engine,
                "--json", str(path),
            ]) == 0
            scans[engine] = json.loads(path.read_text())["hotpath"]["waves_scanned"]
        assert scans["reference"] > scans["event"]
