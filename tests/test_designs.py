"""TABLE III design registry."""

import pytest

from repro.config import small_config
from repro.core.objectives import EDnPObjective
from repro.core.pc_table import PCTableConfig
from repro.core.predictors import (
    AccuratePCPredictor,
    AccurateReactivePredictor,
    OraclePredictor,
    PCBasedPredictor,
    ReactivePredictor,
    StaticPredictor,
)
from repro.dvfs.designs import DESIGN_NAMES, make_controller, static_design_name


@pytest.fixture
def cfg():
    return small_config(n_cus=2, waves_per_cu=4)


class TestRegistry:
    def test_all_paper_designs_present(self):
        assert DESIGN_NAMES == (
            "STALL", "LEAD", "CRIT", "CRISP", "ACCREAC", "PCSTALL", "ACCPC", "ORACLE",
        )

    def test_every_design_constructs(self, cfg):
        for name in DESIGN_NAMES:
            ctrl = make_controller(name, cfg)
            assert ctrl.predictor is not None

    def test_predictor_types(self, cfg):
        assert isinstance(make_controller("STALL", cfg).predictor, ReactivePredictor)
        assert isinstance(make_controller("ACCREAC", cfg).predictor, AccurateReactivePredictor)
        assert isinstance(make_controller("PCSTALL", cfg).predictor, PCBasedPredictor)
        assert isinstance(make_controller("ACCPC", cfg).predictor, AccuratePCPredictor)
        assert isinstance(make_controller("ORACLE", cfg).predictor, OraclePredictor)

    def test_accpc_is_pc_based(self, cfg):
        assert isinstance(make_controller("ACCPC", cfg).predictor, PCBasedPredictor)

    def test_estimation_model_names(self, cfg):
        for name in ("STALL", "LEAD", "CRIT", "CRISP"):
            assert make_controller(name, cfg).predictor.name == name

    def test_static_design(self, cfg):
        ctrl = make_controller("STATIC@1.3", cfg)
        assert isinstance(ctrl.predictor, StaticPredictor)
        assert ctrl.decide() == [1.3, 1.3]

    def test_static_design_name_helper(self):
        assert static_design_name(1.3) == "STATIC@1.3"

    def test_unknown_design_rejected(self, cfg):
        with pytest.raises(ValueError):
            make_controller("MAGIC", cfg)

    def test_custom_objective_passed_through(self, cfg):
        obj = EDnPObjective(1)
        ctrl = make_controller("CRISP", cfg, objective=obj)
        assert ctrl.objective is obj

    def test_custom_table_config(self, cfg):
        tbl = PCTableConfig(n_entries=32)
        ctrl = make_controller("PCSTALL", cfg, table_config=tbl)
        assert ctrl.predictor.tables[0].config.n_entries == 32

    def test_table_sharing_granularity(self, cfg):
        ctrl = make_controller("PCSTALL", cfg, cus_per_table=2)
        assert len(ctrl.predictor.tables) == 1

    def test_truth_flags(self, cfg):
        assert not make_controller("PCSTALL", cfg).predictor.needs_elapsed_truth
        assert make_controller("ACCREAC", cfg).predictor.needs_elapsed_truth
        assert make_controller("ACCPC", cfg).predictor.needs_elapsed_truth
        assert make_controller("ORACLE", cfg).predictor.needs_future_truth
