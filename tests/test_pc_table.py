"""PC-indexed sensitivity table: indexing, update/lookup, statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pc_table import PCTable, PCTableConfig
from repro.core.sensitivity import LinearSensitivity


class TestConfig:
    def test_paper_geometry(self):
        cfg = PCTableConfig()
        assert cfg.n_entries == 128
        assert cfg.offset_bits == 4
        assert cfg.instructions_per_entry == 4
        assert cfg.covered_instructions == 512

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            PCTableConfig(n_entries=0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            PCTableConfig(update_weight=0.0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            PCTableConfig(offset_bits=-1)


class TestIndexing:
    def test_offset_bits_group_nearby_pcs(self):
        t = PCTable(PCTableConfig(offset_bits=4, instruction_bytes=4))
        # Instructions 0..3 share entry 0 (16 bytes / 4-byte instrs).
        assert t.index_of_instruction(0) == t.index_of_instruction(3)
        assert t.index_of_instruction(0) != t.index_of_instruction(4)

    def test_wraps_modulo_entries(self):
        t = PCTable(PCTableConfig(n_entries=16, offset_bits=0))
        assert t.index_of(16 * 4) == t.index_of(0)

    def test_zero_offset_separates_every_pc(self):
        t = PCTable(PCTableConfig(offset_bits=0, n_entries=128))
        assert t.index_of(0) != t.index_of(1)


class TestUpdateLookup:
    def test_miss_on_empty(self):
        t = PCTable()
        assert t.lookup(5) is None
        assert t.hit_ratio == 0.0

    def test_hit_after_update(self):
        t = PCTable()
        t.update(5, LinearSensitivity(10.0, 3.0))
        got = t.lookup(5)
        assert got is not None
        assert got.slope == pytest.approx(3.0)
        assert t.hit_ratio == 1.0

    def test_last_value_semantics(self):
        t = PCTable()
        t.update(5, LinearSensitivity(1.0, 1.0))
        t.update(5, LinearSensitivity(9.0, 9.0))
        assert t.lookup(5).slope == pytest.approx(9.0)

    def test_blended_update(self):
        t = PCTable(PCTableConfig(update_weight=0.5))
        t.update(5, LinearSensitivity(0.0, 0.0))
        t.update(5, LinearSensitivity(10.0, 10.0))
        assert t.lookup(5).slope == pytest.approx(5.0)

    def test_nearby_pcs_share_entry(self):
        t = PCTable()
        t.update(0, LinearSensitivity(1.0, 7.0))
        assert t.lookup(3).slope == pytest.approx(7.0)

    def test_collision_overwrites(self):
        t = PCTable(PCTableConfig(n_entries=4, offset_bits=0))
        t.update(0, LinearSensitivity(0.0, 1.0))
        t.update(4, LinearSensitivity(0.0, 2.0))  # collides with 0
        # Tagless hardware: the aliased value is returned...
        assert t.lookup(0).slope == pytest.approx(2.0)

    def test_aliased_lookup_is_not_a_hit(self):
        t = PCTable(PCTableConfig(n_entries=4, offset_bits=0))
        t.update(4, LinearSensitivity(0.0, 2.0))
        t.reset_counters()
        assert t.lookup(0) is not None  # aliased value used
        assert t.hits == 0  # ...but accounted as a miss
        assert t.lookup(4) is not None
        assert t.hits == 1

    def test_invalidate_flushes(self):
        t = PCTable()
        t.update(5, LinearSensitivity(1.0, 1.0))
        t.invalidate()
        assert t.lookup(5) is None

    def test_occupancy(self):
        t = PCTable(PCTableConfig(n_entries=8, offset_bits=0, instruction_bytes=1))
        assert t.occupancy == 0.0
        t.update(0, LinearSensitivity(1.0, 1.0))
        t.update(1, LinearSensitivity(1.0, 1.0))
        assert t.occupancy == pytest.approx(0.25)

    def test_counters_reset(self):
        t = PCTable()
        t.update(1, LinearSensitivity(1.0, 1.0))
        t.lookup(1)
        t.reset_counters()
        assert t.lookups == 0 and t.hits == 0 and t.updates == 0

    @given(st.integers(0, 10_000))
    def test_property_update_then_lookup_hits(self, pc_idx):
        t = PCTable()
        t.update(pc_idx, LinearSensitivity(2.0, 4.0))
        got = t.lookup(pc_idx)
        assert got is not None
        assert got.i0 == pytest.approx(2.0)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_property_index_in_range(self, pc, entries_seed):
        t = PCTable(PCTableConfig(n_entries=1 + entries_seed % 256))
        assert 0 <= t.index_of(pc) < t.config.n_entries
